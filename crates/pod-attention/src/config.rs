//! POD-Attention configuration: CTAs-per-SM modes, tile choices and options.

use crate::policy::SchedulingPolicy;
use attn_kernels::{AttentionConfig, DecodeKernel, PrefillKernel, SplitPolicy, TileShape};

/// How many fused CTAs run concurrently on each SM (§4.2.2).
///
/// Two CTAs per SM gives each CTA more shared memory, enabling the large
/// prefill tiles that long-context (prefill-dominant) batches want. Four CTAs
/// per SM uses smaller tiles but allows finer-grained interleaving of prefill
/// and decode (e.g. 3 decode CTAs alongside 1 prefill CTA), which
/// decode-dominant batches prefer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtasPerSm {
    /// Two fused CTAs per SM, prefill tile (128, 64).
    Two,
    /// Four fused CTAs per SM, prefill tile (64, 32).
    Four,
    /// Pick automatically per batch based on its prefill/decode balance
    /// (the behaviour the paper describes: "POD-Attention automatically picks
    /// the most suitable configuration at runtime").
    Auto,
}

impl CtasPerSm {
    /// The concrete per-SM CTA limit for a resolved (non-`Auto`) mode.
    ///
    /// # Panics
    ///
    /// Panics if called on [`CtasPerSm::Auto`]; resolve it first with
    /// [`PodOptions::resolve_ctas_per_sm`].
    pub fn limit(self) -> usize {
        match self {
            CtasPerSm::Two => 2,
            CtasPerSm::Four => 4,
            CtasPerSm::Auto => panic!("CtasPerSm::Auto must be resolved before use"),
        }
    }

    /// Prefill tile used in this mode.
    pub fn prefill_tile(self) -> TileShape {
        match self {
            CtasPerSm::Two | CtasPerSm::Auto => TileShape::pod_prefill_2cta(),
            CtasPerSm::Four => TileShape::pod_prefill_4cta(),
        }
    }

    /// Number of virtual decode CTAs packed into one fused CTA slot
    /// (§4.2.3): with large slots (2 CTAs/SM) four warp-sized virtual CTAs
    /// share the slot's shared memory; with small slots only two fit.
    pub fn virtual_decode_factor(self) -> usize {
        match self {
            CtasPerSm::Two | CtasPerSm::Auto => 4,
            CtasPerSm::Four => 2,
        }
    }
}

impl std::fmt::Display for CtasPerSm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtasPerSm::Two => f.write_str("2 CTAs/SM"),
            CtasPerSm::Four => f.write_str("4 CTAs/SM"),
            CtasPerSm::Auto => f.write_str("auto"),
        }
    }
}

/// Tunable options of the POD-Attention kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PodOptions {
    /// SM-local operation binding policy.
    pub policy: SchedulingPolicy,
    /// Concurrent CTAs per SM.
    pub ctas_per_sm: CtasPerSm,
    /// KV-split policy for the chunked prefill inside the fused kernel.
    pub prefill_splits: SplitPolicy,
}

impl PodOptions {
    /// The configuration the paper recommends: proportional scheduling,
    /// automatic CTAs-per-SM selection and prefill splits limited to two
    /// waves.
    pub fn recommended() -> Self {
        PodOptions {
            policy: SchedulingPolicy::Proportional,
            ctas_per_sm: CtasPerSm::Auto,
            prefill_splits: SplitPolicy::LimitedToTwoWaves,
        }
    }

    /// Use a specific scheduling policy.
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Use a specific CTAs-per-SM mode.
    pub fn with_ctas_per_sm(mut self, mode: CtasPerSm) -> Self {
        self.ctas_per_sm = mode;
        self
    }

    /// Use a specific prefill split policy (e.g. [`SplitPolicy::Vanilla`] for
    /// the Table 8 ablation).
    pub fn with_prefill_splits(mut self, splits: SplitPolicy) -> Self {
        self.prefill_splits = splits;
        self
    }

    /// Resolve [`CtasPerSm::Auto`] for a specific hybrid batch: prefill-heavy
    /// batches get 2 CTAs/SM (bigger tiles), decode-heavy batches get 4.
    ///
    /// The balance test compares the chunk's compute demand against the
    /// decode batch's memory demand, which is how the paper characterizes the
    /// crossover in Figure 13.
    pub fn resolve_ctas_per_sm(&self, prefill_ctas: usize, decode_ctas: usize) -> CtasPerSm {
        match self.ctas_per_sm {
            CtasPerSm::Two => CtasPerSm::Two,
            CtasPerSm::Four => CtasPerSm::Four,
            CtasPerSm::Auto => {
                if prefill_ctas >= decode_ctas {
                    CtasPerSm::Two
                } else {
                    CtasPerSm::Four
                }
            }
        }
    }

    /// The prefill kernel model used inside the fused kernel for a resolved
    /// CTAs-per-SM mode.
    pub fn prefill_kernel(&self, mode: CtasPerSm) -> PrefillKernel {
        PrefillKernel::flash_attention()
            .with_tile(mode.prefill_tile())
            .with_split_policy(self.prefill_splits)
    }

    /// The decode kernel model used inside the fused kernel (tile length 16,
    /// §4.2.1).
    pub fn decode_kernel(&self) -> DecodeKernel {
        DecodeKernel::pod()
    }

    /// Shared memory per fused CTA for a resolved mode: the prefill tile's
    /// requirement (decode virtual CTAs are sized to fit within it, §4.2.3).
    pub fn fused_shared_mem(&self, mode: CtasPerSm, cfg: &AttentionConfig) -> usize {
        mode.prefill_tile().shared_mem_bytes(cfg)
    }
}

impl Default for PodOptions {
    fn default() -> Self {
        PodOptions::recommended()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_match_modes() {
        assert_eq!(CtasPerSm::Two.limit(), 2);
        assert_eq!(CtasPerSm::Four.limit(), 4);
    }

    #[test]
    #[should_panic(expected = "resolved")]
    fn auto_limit_panics() {
        let _ = CtasPerSm::Auto.limit();
    }

    #[test]
    fn four_cta_mode_uses_smaller_tiles() {
        let cfg = AttentionConfig::llama3_8b();
        let two = CtasPerSm::Two.prefill_tile().shared_mem_bytes(&cfg);
        let four = CtasPerSm::Four.prefill_tile().shared_mem_bytes(&cfg);
        assert!(four < two);
        // The smaller tile actually allows 4 CTAs per SM on the A100.
        let gpu = gpu_sim::GpuConfig::a100_80gb();
        assert!(gpu.occupancy(four, 128) >= 4);
        assert_eq!(gpu.occupancy(two, 128), 2);
    }

    #[test]
    fn auto_resolution_tracks_batch_balance() {
        let opts = PodOptions::recommended();
        assert_eq!(opts.resolve_ctas_per_sm(300, 100), CtasPerSm::Two);
        assert_eq!(opts.resolve_ctas_per_sm(50, 400), CtasPerSm::Four);
        // Fixed modes are never overridden.
        let fixed = opts.with_ctas_per_sm(CtasPerSm::Four);
        assert_eq!(fixed.resolve_ctas_per_sm(300, 1), CtasPerSm::Four);
    }

    #[test]
    fn recommended_options_match_paper() {
        let o = PodOptions::recommended();
        assert_eq!(o.policy, SchedulingPolicy::Proportional);
        assert_eq!(o.ctas_per_sm, CtasPerSm::Auto);
        assert_eq!(o.prefill_splits, SplitPolicy::LimitedToTwoWaves);
    }

    #[test]
    fn display_labels() {
        assert_eq!(CtasPerSm::Two.to_string(), "2 CTAs/SM");
        assert_eq!(CtasPerSm::Auto.to_string(), "auto");
    }
}
