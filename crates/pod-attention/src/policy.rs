//! SM-local scheduling policies for runtime operation binding (§4.1, §5.4.2).

/// How consecutive CTAs landing on the same SM are bound to prefill or decode
/// work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulingPolicy {
    /// Alternate strictly between prefill and decode on each SM, regardless
    /// of how many CTAs each operation needs in total.
    FiftyFifty,
    /// Bind CTAs in proportion to the total number of prefill and decode CTAs
    /// in the fused launch (e.g. with 50 prefill and 100 decode CTAs, each SM
    /// runs one prefill CTA followed by two decode CTAs, repeating).
    Proportional,
}

impl SchedulingPolicy {
    /// Reduce the raw CTA counts to the small interleaving ratio
    /// `(prefill_ratio, decode_ratio)` used by the ticket test in Figure 9.
    ///
    /// The 50:50 policy always returns `(1, 1)`. The proportional policy
    /// reduces by the greatest common divisor and then approximates very
    /// lopsided ratios with a `1 : n` (or `n : 1`) pattern so the interleave
    /// period stays short and both operations appear on every SM early.
    pub fn ratios(self, prefill_ctas: usize, decode_ctas: usize) -> (usize, usize) {
        match self {
            SchedulingPolicy::FiftyFifty => (1, 1),
            SchedulingPolicy::Proportional => {
                if prefill_ctas == 0 || decode_ctas == 0 {
                    return (prefill_ctas.min(1), decode_ctas.min(1));
                }
                let g = gcd(prefill_ctas, decode_ctas);
                let (mut p, mut d) = (prefill_ctas / g, decode_ctas / g);
                const MAX_PERIOD: usize = 12;
                if p + d > MAX_PERIOD {
                    if p <= d {
                        d = ((d as f64 / p as f64).round() as usize).max(1);
                        p = 1;
                    } else {
                        p = ((p as f64 / d as f64).round() as usize).max(1);
                        d = 1;
                    }
                }
                (p, d)
            }
        }
    }

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SchedulingPolicy::FiftyFifty => "50:50",
            SchedulingPolicy::Proportional => "proportional",
        }
    }
}

impl std::fmt::Display for SchedulingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_fifty_is_always_one_to_one() {
        assert_eq!(SchedulingPolicy::FiftyFifty.ratios(7, 300), (1, 1));
        assert_eq!(SchedulingPolicy::FiftyFifty.ratios(1000, 3), (1, 1));
    }

    #[test]
    fn proportional_reduces_by_gcd() {
        assert_eq!(SchedulingPolicy::Proportional.ratios(50, 100), (1, 2));
        assert_eq!(SchedulingPolicy::Proportional.ratios(128, 64), (2, 1));
        assert_eq!(SchedulingPolicy::Proportional.ratios(3, 9), (1, 3));
    }

    #[test]
    fn proportional_caps_the_interleave_period() {
        let (p, d) = SchedulingPolicy::Proportional.ratios(128, 881);
        assert!(p + d <= 12, "period {p}+{d} too long");
        assert!(d >= 6 && p == 1, "expected roughly 1:7, got {p}:{d}");
    }

    #[test]
    fn proportional_handles_missing_operations() {
        assert_eq!(SchedulingPolicy::Proportional.ratios(0, 10), (0, 1));
        assert_eq!(SchedulingPolicy::Proportional.ratios(10, 0), (1, 0));
        assert_eq!(SchedulingPolicy::Proportional.ratios(0, 0), (0, 0));
    }

    #[test]
    fn labels() {
        assert_eq!(SchedulingPolicy::FiftyFifty.to_string(), "50:50");
        assert_eq!(SchedulingPolicy::Proportional.to_string(), "proportional");
    }

    #[test]
    fn gcd_works() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(5, 0), 5);
    }
}
