//! The fused POD-Attention kernel: building and executing it.

use crate::config::{CtasPerSm, PodOptions};
use crate::oracle::oracle_time;
use crate::scheduler::SmAwareScheduler;
use attn_kernels::{
    AttentionConfig, DecodeKernel, HybridBatch, PrefillKernel, KERNEL_LAUNCH_OVERHEAD,
};
use gpu_sim::{
    CtaWork, Engine, ExecutionReport, Footprint, GpuConfig, KernelLaunch, SimError, WorkUnit,
};

/// POD-Attention: computes the prefill and decode attention of a hybrid batch
/// in a single fused kernel whose CTAs bind to an operation at runtime, after
/// the hardware scheduler has placed them on an SM.
///
/// # Examples
///
/// ```
/// use attn_kernels::{AttentionConfig, HybridBatch};
/// use gpu_sim::GpuConfig;
/// use pod_attention::PodAttention;
///
/// let pod = PodAttention::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb());
/// let batch = HybridBatch::uniform(1024, 8 * 1024, 64, 8 * 1024);
/// let speedup = pod.speedup_over_serial(&batch)?;
/// assert!(speedup >= 1.0);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PodAttention {
    cfg: AttentionConfig,
    gpu: GpuConfig,
    options: PodOptions,
}

/// Everything known about one fused launch before it executes: CTA counts,
/// the resolved CTAs-per-SM mode and the interleave ratio. Useful for tests,
/// reports and the sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchPlan {
    /// Prefill CTAs in the fused grid.
    pub prefill_ctas: usize,
    /// Decode CTA *slots* in the fused grid (each slot packs
    /// [`CtasPerSm::virtual_decode_factor`] virtual decode CTAs).
    pub decode_slots: usize,
    /// Virtual decode CTAs (before packing into slots).
    pub virtual_decode_ctas: usize,
    /// Resolved CTAs-per-SM mode.
    pub ctas_per_sm: CtasPerSm,
    /// Interleave ratio used by the SM-aware scheduler.
    pub ratio: (usize, usize),
}

impl PodAttention {
    /// Create a POD-Attention instance with the paper's recommended options.
    pub fn new(cfg: AttentionConfig, gpu: GpuConfig) -> Self {
        PodAttention {
            cfg,
            gpu,
            options: PodOptions::recommended(),
        }
    }

    /// Create a POD-Attention instance with explicit options.
    pub fn with_options(cfg: AttentionConfig, gpu: GpuConfig, options: PodOptions) -> Self {
        PodAttention { cfg, gpu, options }
    }

    /// The options in effect.
    pub fn options(&self) -> PodOptions {
        self.options
    }

    /// The attention configuration.
    pub fn config(&self) -> &AttentionConfig {
        &self.cfg
    }

    /// The device configuration.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The prefill split policy actually used for `batch`.
    ///
    /// Limiting the chunked-prefill KV splits to two waves (§4.2.4) exists to
    /// protect co-running decodes from the extra Q/partial-output traffic.
    /// When the batch has (almost) no decode memory work to protect, the
    /// limit only removes useful prefill parallelism, so POD falls back to
    /// the vanilla split heuristic — part of picking "the most suitable
    /// configuration at runtime".
    fn effective_split_policy(&self, batch: &HybridBatch) -> attn_kernels::SplitPolicy {
        use attn_kernels::SplitPolicy;
        if self.options.prefill_splits != SplitPolicy::LimitedToTwoWaves {
            return self.options.prefill_splits;
        }
        let Some(chunk) = &batch.prefill else {
            return SplitPolicy::Vanilla;
        };
        let prefill_compute = PrefillKernel::flash_attention()
            .total_flops(chunk, &self.cfg, &self.gpu)
            / self.gpu.tensor_flops;
        let decode_memory =
            self.options
                .decode_kernel()
                .total_bytes(&batch.decodes, &self.cfg, &self.gpu)
                / self.gpu.hbm_bandwidth;
        if decode_memory < 0.2 * prefill_compute {
            SplitPolicy::Vanilla
        } else {
            SplitPolicy::LimitedToTwoWaves
        }
    }

    /// The prefill kernel model used for `batch` under the resolved
    /// CTAs-per-SM mode.
    fn prefill_kernel_for(&self, batch: &HybridBatch, mode: CtasPerSm) -> PrefillKernel {
        self.options
            .prefill_kernel(mode)
            .with_split_policy(self.effective_split_policy(batch))
    }

    /// Compute the launch plan (CTA counts, resolved mode, ratio) for a batch.
    pub fn plan(&self, batch: &HybridBatch) -> LaunchPlan {
        // Resolve the CTAs-per-SM mode from the balance of the batch, using
        // the 2-CTA tile as the reference for counting prefill CTAs.
        let probe_prefill = self
            .prefill_kernel_for(batch, CtasPerSm::Two)
            .map_ctas(batch, &self.cfg, &self.gpu);
        let decode_kernel = self.options.decode_kernel();
        let virtual_decode = batch.decodes.len() * self.cfg.kv_heads_per_gpu();
        let mode = self
            .options
            .resolve_ctas_per_sm(probe_prefill, virtual_decode);

        let prefill_ctas = if mode == CtasPerSm::Two {
            probe_prefill
        } else {
            self.prefill_kernel_for(batch, mode)
                .map_ctas(batch, &self.cfg, &self.gpu)
        };
        let virtual_decode_ctas = decode_kernel_units(&decode_kernel, batch, &self.cfg, &self.gpu);
        let decode_slots = virtual_decode_ctas.div_ceil(mode.virtual_decode_factor().max(1));
        let ratio = self.options.policy.ratios(prefill_ctas, decode_slots);
        LaunchPlan {
            prefill_ctas,
            decode_slots,
            virtual_decode_ctas,
            ctas_per_sm: mode,
            ratio,
        }
    }

    /// Build the fused kernel launch for a hybrid batch.
    ///
    /// For degenerate batches (prefill-only or decode-only) the launch simply
    /// contains the corresponding specialized kernel's CTAs — fusing is a
    /// no-op but the API stays uniform.
    pub fn build_launch(&self, batch: &HybridBatch) -> KernelLaunch {
        let plan = self.plan(batch);
        let mode = plan.ctas_per_sm;
        let prefill_kernel = self.prefill_kernel_for(batch, mode);
        let decode_kernel = self.options.decode_kernel();

        let prefill_ctas: Vec<CtaWork> = match &batch.prefill {
            Some(chunk) => prefill_kernel
                .build_units(chunk, &self.cfg, &self.gpu)
                .into_iter()
                .map(|u| CtaWork { units: vec![u] })
                .collect(),
            None => Vec::new(),
        };
        let decode_units: Vec<WorkUnit> =
            decode_kernel.build_units(&batch.decodes, &self.cfg, &self.gpu);
        let decode_ctas: Vec<CtaWork> = decode_units
            .chunks(mode.virtual_decode_factor().max(1))
            .map(|group| CtaWork::fused(group.to_vec()))
            .collect();

        let footprint = Footprint::new(128, self.options.fused_shared_mem(mode, &self.cfg));
        let scheduler = SmAwareScheduler::new(
            prefill_ctas,
            decode_ctas,
            self.gpu.num_sms,
            plan.ratio.0,
            plan.ratio.1,
        );
        KernelLaunch::with_dispatcher("pod_attention", footprint, Box::new(scheduler))
            .limit_ctas_per_sm(mode.limit())
    }

    /// Execute the fused kernel on the simulated GPU and return the report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the launch cannot be scheduled (which would
    /// indicate an invalid tile/occupancy configuration).
    pub fn execute(&self, batch: &HybridBatch) -> Result<ExecutionReport, SimError> {
        Engine::new(self.gpu.clone()).run_kernel(self.build_launch(batch))
    }

    /// Execute the FlashAttention serial baseline (prefill kernel followed by
    /// decode kernel) for the same batch.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if either kernel cannot be scheduled.
    pub fn serial_baseline(&self, batch: &HybridBatch) -> Result<ExecutionReport, SimError> {
        let engine = Engine::new(self.gpu.clone());
        let mut kernels = Vec::new();
        if let Some(chunk) = &batch.prefill {
            kernels.push(PrefillKernel::flash_attention().launch(
                "fa2_prefill",
                chunk,
                &self.cfg,
                &self.gpu,
            ));
        }
        if !batch.decodes.is_empty() {
            kernels.push(DecodeKernel::flash_attention().launch(
                "fa_decode",
                &batch.decodes,
                &self.cfg,
                &self.gpu,
            ));
        }
        engine.run_serial(kernels)
    }

    /// Attention runtime of the fused kernel (seconds), including the launch
    /// overhead of the single fused kernel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the launch cannot be scheduled.
    pub fn attention_time(&self, batch: &HybridBatch) -> Result<f64, SimError> {
        Ok(self.execute(batch)?.makespan + KERNEL_LAUNCH_OVERHEAD)
    }

    /// Serial-baseline attention runtime (seconds), including one launch
    /// overhead per kernel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if either kernel cannot be scheduled.
    pub fn serial_time(&self, batch: &HybridBatch) -> Result<f64, SimError> {
        let kernels = batch.has_prefill() as usize + batch.has_decode() as usize;
        Ok(self.serial_baseline(batch)?.makespan + kernels as f64 * KERNEL_LAUNCH_OVERHEAD)
    }

    /// Speedup of POD-Attention over the FlashAttention serial baseline
    /// (`serial_time / pod_time`; 1.0 means no gain).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if either execution cannot be scheduled.
    pub fn speedup_over_serial(&self, batch: &HybridBatch) -> Result<f64, SimError> {
        let serial = self.serial_time(batch)?;
        let pod = self.attention_time(batch)?;
        if pod <= 0.0 {
            return Ok(1.0);
        }
        Ok(serial / pod)
    }

    /// Perfect-overlap lower bound on this batch's attention time (seconds).
    pub fn oracle_time(&self, batch: &HybridBatch) -> f64 {
        oracle_time(batch, &self.cfg, &self.gpu)
    }
}

/// Count the virtual decode CTAs a decode kernel produces for a batch without
/// materializing the work units twice.
fn decode_kernel_units(
    kernel: &DecodeKernel,
    batch: &HybridBatch,
    cfg: &AttentionConfig,
    gpu: &GpuConfig,
) -> usize {
    if batch.decodes.is_empty() {
        return 0;
    }
    let max_ctx = batch
        .decodes
        .iter()
        .map(|d| d.context_len)
        .max()
        .unwrap_or(1);
    let splits = kernel.num_splits(batch.decodes.len(), max_ctx, cfg, gpu);
    batch.decodes.len() * cfg.kv_heads_per_gpu() * splits
}

/// Extension used by [`PodAttention::plan`] to count prefill CTAs without
/// building the work units.
trait PrefillCtaCount {
    fn map_ctas(&self, batch: &HybridBatch, cfg: &AttentionConfig, gpu: &GpuConfig) -> usize;
}

impl PrefillCtaCount for PrefillKernel {
    fn map_ctas(&self, batch: &HybridBatch, cfg: &AttentionConfig, gpu: &GpuConfig) -> usize {
        match &batch.prefill {
            Some(chunk) => self.base_ctas(chunk, cfg) * self.num_splits(chunk, cfg, gpu),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SchedulingPolicy;
    use attn_kernels::SplitPolicy;

    fn pod() -> PodAttention {
        PodAttention::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb())
    }

    #[test]
    fn pod_beats_serial_on_table1_configs() {
        let pod = pod();
        for (name, batch) in [
            ("C0", HybridBatch::config_c0()),
            ("C1", HybridBatch::config_c1()),
            ("C2", HybridBatch::config_c2()),
        ] {
            let speedup = pod.speedup_over_serial(&batch).unwrap();
            assert!(
                speedup > 1.1,
                "{name}: expected a clear win, got speedup {speedup:.3}"
            );
            assert!(
                speedup < 2.5,
                "{name}: speedup {speedup:.3} is implausibly large"
            );
        }
    }

    #[test]
    fn pod_never_loses_to_serial() {
        let pod = pod();
        let batches = [
            HybridBatch::uniform(512, 4096, 16, 4096),
            HybridBatch::uniform(2048, 16 * 1024, 8, 2048),
            HybridBatch::uniform(1024, 20 * 1024, 200, 16 * 1024),
            HybridBatch::uniform(256, 1024, 4, 1024),
        ];
        for (i, batch) in batches.iter().enumerate() {
            let speedup = pod.speedup_over_serial(batch).unwrap();
            assert!(
                speedup > 0.97,
                "batch {i}: POD slower than serial (speedup {speedup:.3})"
            );
        }
    }

    #[test]
    fn pod_utilizes_both_resources_on_balanced_batches() {
        let pod = pod();
        let report = pod.execute(&HybridBatch::config_c1()).unwrap();
        assert!(
            report.compute_utilization() > 0.4,
            "compute util {}",
            report.compute_utilization()
        );
        assert!(
            report.memory_utilization() > 0.4,
            "memory util {}",
            report.memory_utilization()
        );
    }

    #[test]
    fn pod_time_is_bounded_below_by_the_oracle() {
        let pod = pod();
        for batch in [
            HybridBatch::config_c0(),
            HybridBatch::uniform(1024, 8 * 1024, 64, 8 * 1024),
        ] {
            let t = pod.attention_time(&batch).unwrap();
            let oracle = pod.oracle_time(&batch);
            assert!(t >= oracle * 0.98, "pod {t} below oracle {oracle}");
        }
    }

    #[test]
    fn plan_reports_consistent_counts() {
        let pod = pod();
        let batch = HybridBatch::uniform(1024, 8 * 1024, 64, 8 * 1024);
        let plan = pod.plan(&batch);
        assert!(plan.prefill_ctas > 0);
        assert!(plan.decode_slots > 0);
        assert_eq!(
            plan.decode_slots,
            plan.virtual_decode_ctas
                .div_ceil(plan.ctas_per_sm.virtual_decode_factor())
        );
        assert!(plan.ratio.0 > 0 && plan.ratio.1 > 0);
    }

    #[test]
    fn degenerate_batches_execute() {
        let pod = pod();
        let prefill_only = HybridBatch::prefill_only(2048, 2048);
        let decode_only = HybridBatch::decode_only(32, 4096);
        assert!(pod.execute(&prefill_only).unwrap().makespan > 0.0);
        assert!(pod.execute(&decode_only).unwrap().makespan > 0.0);
        // Degenerate batches gain nothing but must not lose much either
        // (only the second launch overhead is saved).
        let s = pod.speedup_over_serial(&prefill_only).unwrap();
        assert!(s > 0.9 && s < 1.3, "speedup {s}");
    }

    #[test]
    fn empty_batch_executes_instantly() {
        let pod = pod();
        let report = pod.execute(&HybridBatch::new()).unwrap();
        assert_eq!(report.total_ctas, 0);
    }

    #[test]
    fn fixed_cta_modes_are_honored() {
        let cfg = AttentionConfig::llama3_8b();
        let gpu = GpuConfig::a100_80gb();
        let batch = HybridBatch::uniform(1024, 8 * 1024, 64, 8 * 1024);
        for (mode, limit) in [(CtasPerSm::Two, 2), (CtasPerSm::Four, 4)] {
            let pod = PodAttention::with_options(
                cfg,
                gpu.clone(),
                PodOptions::recommended().with_ctas_per_sm(mode),
            );
            let plan = pod.plan(&batch);
            assert_eq!(plan.ctas_per_sm, mode);
            let launch = pod.build_launch(&batch);
            assert_eq!(launch.max_ctas_per_sm, Some(limit));
        }
    }

    #[test]
    fn policies_produce_similar_but_not_identical_times() {
        let cfg = AttentionConfig::yi_6b();
        let gpu = GpuConfig::a100_80gb();
        let batch = HybridBatch::uniform(2048, 8 * 1024, 128, 8 * 1024);
        let fifty = PodAttention::with_options(
            cfg,
            gpu.clone(),
            PodOptions::recommended().with_policy(SchedulingPolicy::FiftyFifty),
        )
        .attention_time(&batch)
        .unwrap();
        let prop = PodAttention::with_options(
            cfg,
            gpu.clone(),
            PodOptions::recommended().with_policy(SchedulingPolicy::Proportional),
        )
        .attention_time(&batch)
        .unwrap();
        let ratio = fifty / prop;
        assert!(
            (0.7..1.4).contains(&ratio),
            "50:50 {fifty} vs proportional {prop}"
        );
    }

    #[test]
    fn limited_splits_beat_vanilla_splits_for_small_chunks() {
        let cfg = AttentionConfig::llama3_8b();
        let gpu = GpuConfig::a100_80gb();
        // Last chunk of a 16K prompt with 64 decodes (the Table 8 setup).
        let batch = HybridBatch::uniform(512, 16 * 1024, 64, 16 * 1024);
        let limited = PodAttention::with_options(
            cfg,
            gpu.clone(),
            PodOptions::recommended().with_prefill_splits(SplitPolicy::LimitedToTwoWaves),
        )
        .attention_time(&batch)
        .unwrap();
        let vanilla = PodAttention::with_options(
            cfg,
            gpu.clone(),
            PodOptions::recommended().with_prefill_splits(SplitPolicy::Vanilla),
        )
        .attention_time(&batch)
        .unwrap();
        assert!(
            limited <= vanilla * 1.02,
            "limited splits {limited} should not be slower than vanilla {vanilla}"
        );
    }
}
