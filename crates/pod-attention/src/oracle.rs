//! Theoretical best-case (perfect overlap) runtime of a hybrid batch.
//!
//! §5.1 of the paper reports that in 25 % of cases POD-Attention reaches
//! within 10 % of the "theoretical peak speedup". The oracle here is that
//! reference: the attention of a hybrid batch can never finish faster than
//! the larger of (a) all its tensor work executed at the device's achievable
//! compute rate and (b) all its HBM traffic moved at the achievable
//! bandwidth.

use attn_kernels::{AttentionConfig, DecodeKernel, HybridBatch, PrefillKernel, SplitPolicy};
use gpu_sim::{EngineOptions, GpuConfig};

/// Perfect-overlap lower bound on the attention runtime of `batch` (seconds).
///
/// Uses the same FlashAttention work-models as the serial baseline (so the
/// comparison isolates *overlap*, not tiling differences) and the same
/// per-CTA throughput caps as the contention engine.
pub fn oracle_time(batch: &HybridBatch, cfg: &AttentionConfig, gpu: &GpuConfig) -> f64 {
    let opts = EngineOptions::default();
    let mut flops = 0.0;
    let mut bytes = 0.0;
    let mut ctas = 0usize;
    if let Some(chunk) = &batch.prefill {
        let k = PrefillKernel::flash_attention().with_split_policy(SplitPolicy::LimitedToTwoWaves);
        let units = k.build_units(chunk, cfg, gpu);
        flops += units.iter().map(|u| u.flops).sum::<f64>();
        bytes += units.iter().map(|u| u.bytes).sum::<f64>();
        ctas += units.len();
    }
    if !batch.decodes.is_empty() {
        let k = DecodeKernel::pod();
        let units = k.build_units(&batch.decodes, cfg, gpu);
        flops += units.iter().map(|u| u.flops).sum::<f64>();
        bytes += units.iter().map(|u| u.bytes).sum::<f64>();
        ctas += units.len();
    }
    if ctas == 0 {
        return 0.0;
    }
    let compute_rate = (ctas as f64 * opts.max_cta_compute_fraction * gpu.sm_compute_flops())
        .min(gpu.tensor_flops);
    let mem_rate =
        (ctas as f64 * opts.max_cta_bandwidth_fraction * gpu.hbm_bandwidth).min(gpu.hbm_bandwidth);
    (flops / compute_rate).max(bytes / mem_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_zero_for_empty_batch() {
        let cfg = AttentionConfig::llama3_8b();
        let gpu = GpuConfig::a100_80gb();
        assert_eq!(oracle_time(&HybridBatch::new(), &cfg, &gpu), 0.0);
    }

    #[test]
    fn oracle_scales_with_work() {
        let cfg = AttentionConfig::llama3_8b();
        let gpu = GpuConfig::a100_80gb();
        let small = oracle_time(&HybridBatch::uniform(512, 4096, 32, 4096), &cfg, &gpu);
        let large = oracle_time(&HybridBatch::uniform(512, 4096, 128, 16 * 1024), &cfg, &gpu);
        assert!(large > small);
        assert!(small > 0.0);
    }

    #[test]
    fn oracle_is_at_most_sum_of_sides() {
        let cfg = AttentionConfig::llama3_8b();
        let gpu = GpuConfig::a100_80gb();
        let batch = HybridBatch::config_c1();
        let both = oracle_time(&batch, &cfg, &gpu);
        let prefill_only = oracle_time(
            &HybridBatch {
                prefill: batch.prefill,
                decodes: vec![],
                kv_dedup_tokens: 0,
                spec_verify_tokens: 0,
            },
            &cfg,
            &gpu,
        );
        let decode_only = oracle_time(
            &HybridBatch {
                prefill: None,
                decodes: batch.decodes.clone(),
                kv_dedup_tokens: 0,
                spec_verify_tokens: 0,
            },
            &cfg,
            &gpu,
        );
        assert!(both <= prefill_only + decode_only + 1e-12);
        assert!(both >= prefill_only.max(decode_only) * 0.99);
    }
}
