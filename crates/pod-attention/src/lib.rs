//! # pod-attention: fused prefill-decode attention with SM-aware CTA scheduling
//!
//! This crate reproduces the core contribution of *POD-Attention: Unlocking
//! Full Prefill-Decode Overlap for Faster LLM Inference* (ASPLOS 2025): a
//! single fused kernel that computes the prefill attention and the decode
//! attention of a hybrid batch concurrently, so the GPU's tensor cores (which
//! prefill saturates) and its HBM bandwidth (which decode saturates) are busy
//! at the same time instead of alternating.
//!
//! The ingredients, each mapped from the paper:
//!
//! * **SM-aware CTA scheduling** ([`SmAwareScheduler`], §4.1 / Figure 9):
//!   every CTA decides whether to run prefill or decode *after* it knows
//!   which SM it landed on, using per-SM ticket counters, which guarantees
//!   both operations co-exist on every SM.
//! * **Scheduling policies** ([`SchedulingPolicy`], §5.4.2): 50:50
//!   alternation or allocation proportional to the two operations' CTA
//!   counts.
//! * **Tile-size selection** (§4.2.1): decode uses the minimum 16-row query
//!   tile inside the fused kernel so its padding does not steal tensor cores
//!   from co-located prefill.
//! * **Virtual decode CTAs** (§4.2.3): several warp-sized decode work items
//!   share one fused CTA slot so decode does not over-allocate shared memory.
//! * **2 vs 4 CTAs per SM** ([`CtasPerSm`], §4.2.2) with automatic selection.
//! * **Limited prefill splits** (§4.2.4): chunked-prefill KV splits are capped
//!   at two waves so the extra traffic does not starve co-running decodes.
//!
//! # Quick start
//!
//! ```
//! use attn_kernels::{AttentionConfig, HybridBatch};
//! use gpu_sim::GpuConfig;
//! use pod_attention::PodAttention;
//!
//! let pod = PodAttention::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb());
//! // A hybrid batch: a 1K-token prefill chunk (12K context) + 80 decodes.
//! let batch = HybridBatch::config_c0();
//! let report = pod.execute(&batch)?;
//! let serial = pod.serial_baseline(&batch)?;
//! println!("POD {:.3} ms vs serial {:.3} ms",
//!          report.makespan * 1e3, serial.makespan * 1e3);
//! # Ok::<(), gpu_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod kernel;
mod oracle;
mod policy;
mod scheduler;

pub use config::{CtasPerSm, PodOptions};
pub use kernel::{LaunchPlan, PodAttention};
pub use oracle::oracle_time;
pub use policy::SchedulingPolicy;
pub use scheduler::{BoundOp, SmAwareScheduler};
