//! SM-aware CTA scheduling: runtime operation binding (Figure 9 of the paper).
//!
//! The fused kernel is launched with `prefill_ctas + decode_ctas` identical
//! CTA slots. Which operation a slot performs is decided only after the
//! hardware scheduler has placed it on an SM: a leader thread reads the SM id
//! (`%smid`), takes a ticket from that SM's counter, and the ticket — compared
//! against the configured prefill:decode ratio — selects the operation. If the
//! selected operation has already consumed all of its CTAs, the slot falls
//! through to the other operation. This guarantees that, as long as both
//! operations have work left, every SM runs a mix of prefill and decode CTAs,
//! which is what lets compute-bound prefill and memory-bound decode overlap.
//!
//! In the simulator the same algorithm runs inside a [`gpu_sim::CtaDispatcher`]:
//! the engine tells the dispatcher which SM the next CTA landed on, mirroring
//! the `%smid` read.

use gpu_sim::{CtaDispatcher, CtaWork};
use std::collections::VecDeque;

/// Which operation a CTA slot was bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundOp {
    /// The slot executed prefill work.
    Prefill,
    /// The slot executed decode work.
    Decode,
}

/// The SM-aware CTA scheduler of POD-Attention.
///
/// Implements [`CtaDispatcher`]: the simulated hardware scheduler calls
/// [`dispatch`](CtaDispatcher::dispatch) with an SM id every time it places
/// one of the fused kernel's CTAs, and receives the work that CTA should
/// perform.
#[derive(Debug, Clone)]
pub struct SmAwareScheduler {
    prefill_work: VecDeque<CtaWork>,
    decode_work: VecDeque<CtaWork>,
    /// Per-SM ticket counters (`sm_ctr` in Figure 9).
    sm_counters: Vec<usize>,
    /// Interleaving ratio from the scheduling policy.
    prefill_ratio: usize,
    decode_ratio: usize,
    /// Per-SM `(prefill, decode)` counts of *executed* operations. Always
    /// maintained — O(num_sms) memory regardless of grid size.
    bound_counts: Vec<(usize, usize)>,
    /// Count of dispatches where the ticket-selected operation was exhausted
    /// and the slot fell through to the other operation.
    fallthroughs: usize,
    /// Full per-SM op log, kept only when [`with_binding_log`] enabled it.
    /// Unbounded in the grid size, so it is off on the hot path.
    ///
    /// [`with_binding_log`]: SmAwareScheduler::with_binding_log
    binding_log: Option<Vec<Vec<BoundOp>>>,
}

impl SmAwareScheduler {
    /// Create a scheduler over the prefill and decode CTA work lists with the
    /// interleave ratio `(prefill_ratio, decode_ratio)` (see
    /// [`crate::SchedulingPolicy::ratios`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_sms` is zero or both ratios are zero while both work
    /// lists are non-empty.
    pub fn new(
        prefill_work: Vec<CtaWork>,
        decode_work: Vec<CtaWork>,
        num_sms: usize,
        prefill_ratio: usize,
        decode_ratio: usize,
    ) -> Self {
        assert!(num_sms > 0, "scheduler needs at least one SM");
        if !prefill_work.is_empty() && !decode_work.is_empty() {
            assert!(
                prefill_ratio + decode_ratio > 0,
                "at least one of the scheduling ratios must be non-zero"
            );
        }
        SmAwareScheduler {
            prefill_work: prefill_work.into(),
            decode_work: decode_work.into(),
            sm_counters: vec![0; num_sms],
            prefill_ratio,
            decode_ratio,
            bound_counts: vec![(0, 0); num_sms],
            fallthroughs: 0,
            binding_log: None,
        }
    }

    /// Enable the full per-SM op log (used by tests and co-location
    /// analyses). The log grows with the grid, so it is opt-in; the cheap
    /// [`bound_counts`](SmAwareScheduler::bound_counts) are always available.
    pub fn with_binding_log(mut self) -> Self {
        self.binding_log = Some(vec![Vec::new(); self.sm_counters.len()]);
        self
    }

    /// Operations bound on each SM so far, in dispatch order. Empty unless
    /// the scheduler was built with
    /// [`with_binding_log`](SmAwareScheduler::with_binding_log).
    pub fn bindings(&self) -> &[Vec<BoundOp>] {
        self.binding_log.as_deref().unwrap_or(&[])
    }

    /// Per-SM `(prefill, decode)` counts of executed operations.
    pub fn bound_counts(&self) -> &[(usize, usize)] {
        &self.bound_counts
    }

    /// Dispatches whose ticket-selected operation was exhausted, so the slot
    /// fell through to the other operation (lines 10–18 of Figure 9).
    pub fn fallthroughs(&self) -> usize {
        self.fallthroughs
    }

    /// Number of prefill CTAs not yet dispatched.
    pub fn prefill_remaining(&self) -> usize {
        self.prefill_work.len()
    }

    /// Number of decode CTAs not yet dispatched.
    pub fn decode_remaining(&self) -> usize {
        self.decode_work.len()
    }

    /// The ticket test of Figure 9 (lines 5–8): which operation does this
    /// ticket select?
    ///
    /// The minority operation is scheduled first within each period (Figure 9
    /// places prefill first, and in hybrid serving batches the prefill chunk
    /// is the minority operation). Putting the minority operation at the
    /// front guarantees that the very first CTAs landing on an SM already mix
    /// both operations, so overlap starts from the first wave even when one
    /// operation needs many more CTAs than the other.
    fn op_for_ticket(&self, ticket: usize) -> BoundOp {
        let period = self.prefill_ratio + self.decode_ratio;
        if period == 0 {
            // Only one operation present; pick whichever has work.
            return if self.prefill_work.is_empty() {
                BoundOp::Decode
            } else {
                BoundOp::Prefill
            };
        }
        let slot = ticket % period;
        if self.prefill_ratio <= self.decode_ratio {
            if slot < self.prefill_ratio {
                BoundOp::Prefill
            } else {
                BoundOp::Decode
            }
        } else if slot < self.decode_ratio {
            BoundOp::Decode
        } else {
            BoundOp::Prefill
        }
    }
}

impl CtaDispatcher for SmAwareScheduler {
    fn remaining(&self) -> usize {
        self.prefill_work.len() + self.decode_work.len()
    }

    fn dispatch(&mut self, sm_id: usize) -> CtaWork {
        let sm = sm_id % self.sm_counters.len();
        // Lines 2–6 of Figure 9: read %smid, take a ticket.
        let ticket = self.sm_counters[sm];
        self.sm_counters[sm] += 1;
        let chosen = self.op_for_ticket(ticket);
        // Lines 10–18: if the chosen operation is exhausted, switch. All
        // bookkeeping below records the *executed* operation, so counts, log
        // and the returned work always agree.
        let op = match chosen {
            BoundOp::Prefill if self.prefill_work.is_empty() => BoundOp::Decode,
            BoundOp::Decode if self.decode_work.is_empty() => BoundOp::Prefill,
            other => other,
        };
        if op != chosen {
            self.fallthroughs += 1;
        }
        let work = match op {
            BoundOp::Prefill => {
                self.bound_counts[sm].0 += 1;
                self.prefill_work.pop_front()
            }
            BoundOp::Decode => {
                self.bound_counts[sm].1 += 1;
                self.decode_work.pop_front()
            }
        };
        let work = work.expect("dispatch called with no remaining work");
        if let Some(log) = &mut self.binding_log {
            log[sm].push(op);
        }
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::OpClass;

    fn prefill_cta() -> CtaWork {
        CtaWork::single(OpClass::Prefill, 1e6, 1e3)
    }

    fn decode_cta() -> CtaWork {
        CtaWork::single(OpClass::Decode, 1e3, 1e6)
    }

    #[test]
    fn fifty_fifty_alternates_per_sm() {
        let mut s = SmAwareScheduler::new(vec![prefill_cta(); 4], vec![decode_cta(); 4], 2, 1, 1)
            .with_binding_log();
        // Four CTAs land on SM 0, four on SM 1.
        let ops: Vec<BoundOp> = (0..8)
            .map(|i| {
                let w = s.dispatch(i % 2);
                if w.dominant_op() == OpClass::Prefill {
                    BoundOp::Prefill
                } else {
                    BoundOp::Decode
                }
            })
            .collect();
        // Each SM alternates prefill, decode, prefill, decode.
        assert_eq!(
            s.bindings()[0],
            vec![
                BoundOp::Prefill,
                BoundOp::Decode,
                BoundOp::Prefill,
                BoundOp::Decode
            ]
        );
        assert_eq!(
            s.bindings()[1],
            vec![
                BoundOp::Prefill,
                BoundOp::Decode,
                BoundOp::Prefill,
                BoundOp::Decode
            ]
        );
        assert_eq!(ops.iter().filter(|o| **o == BoundOp::Prefill).count(), 4);
    }

    #[test]
    fn proportional_ratio_is_respected() {
        let mut s = SmAwareScheduler::new(vec![prefill_cta(); 2], vec![decode_cta(); 6], 1, 1, 3);
        let seq: Vec<BoundOp> = (0..8)
            .map(|_| {
                let w = s.dispatch(0);
                if w.dominant_op() == OpClass::Prefill {
                    BoundOp::Prefill
                } else {
                    BoundOp::Decode
                }
            })
            .collect();
        assert_eq!(
            seq,
            vec![
                BoundOp::Prefill,
                BoundOp::Decode,
                BoundOp::Decode,
                BoundOp::Decode,
                BoundOp::Prefill,
                BoundOp::Decode,
                BoundOp::Decode,
                BoundOp::Decode,
            ]
        );
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn exhausted_operation_falls_through_to_the_other() {
        let mut s = SmAwareScheduler::new(vec![prefill_cta(); 1], vec![decode_cta(); 5], 1, 1, 1);
        let mut prefill_seen = 0;
        let mut decode_seen = 0;
        for _ in 0..6 {
            match s.dispatch(0).dominant_op() {
                OpClass::Prefill => prefill_seen += 1,
                OpClass::Decode => decode_seen += 1,
                _ => unreachable!(),
            }
        }
        assert_eq!(prefill_seen, 1);
        assert_eq!(decode_seen, 5);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn every_sm_gets_both_operations() {
        let num_sms = 8;
        let mut s = SmAwareScheduler::new(
            vec![prefill_cta(); 16],
            vec![decode_cta(); 16],
            num_sms,
            1,
            1,
        )
        .with_binding_log();
        // Round-robin placement across SMs, 4 CTAs each.
        for i in 0..32 {
            let _ = s.dispatch(i % num_sms);
        }
        for sm in 0..num_sms {
            let ops = &s.bindings()[sm];
            assert!(ops.contains(&BoundOp::Prefill), "SM {sm} never ran prefill");
            assert!(ops.contains(&BoundOp::Decode), "SM {sm} never ran decode");
        }
    }

    #[test]
    fn decode_only_launch_never_asks_for_prefill() {
        let mut s = SmAwareScheduler::new(vec![], vec![decode_cta(); 3], 4, 0, 1);
        for i in 0..3 {
            assert_eq!(s.dispatch(i).dominant_op(), OpClass::Decode);
        }
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "no remaining work")]
    fn dispatch_past_the_end_panics() {
        let mut s = SmAwareScheduler::new(vec![prefill_cta()], vec![], 1, 1, 0);
        let _ = s.dispatch(0);
        let _ = s.dispatch(0);
    }

    #[test]
    fn out_of_range_sm_ids_wrap() {
        let mut s = SmAwareScheduler::new(vec![prefill_cta(); 2], vec![decode_cta(); 2], 2, 1, 1)
            .with_binding_log();
        // SM id 5 wraps to SM 1.
        let _ = s.dispatch(5);
        assert_eq!(s.bindings()[1].len(), 1);
        assert_eq!(s.bound_counts()[1].0 + s.bound_counts()[1].1, 1);
    }

    /// Without the opt-in log the scheduler keeps only O(num_sms) counts, and
    /// the counts always reflect the operation that actually executed — also
    /// across fall-throughs.
    #[test]
    fn counts_track_executed_ops_across_fallthroughs() {
        let mut s = SmAwareScheduler::new(vec![prefill_cta(); 2], vec![decode_cta(); 6], 1, 1, 1);
        for _ in 0..8 {
            let _ = s.dispatch(0);
        }
        assert!(s.bindings().is_empty(), "log must be off by default");
        assert_eq!(s.bound_counts()[0], (2, 6));
        // 50:50 tickets would have selected prefill 4 times, but only 2
        // prefill CTAs exist: two dispatches fell through to decode.
        assert_eq!(s.fallthroughs(), 2);
        assert_eq!(s.remaining(), 0);
    }
}
