//! CUDA-stream model.
//!
//! Kernels submitted to the same [`Stream`] execute in submission order;
//! kernels in different streams may execute concurrently if the hardware CTA
//! scheduler finds free SM resources — but, exactly as the paper observes
//! (§3.1, "Streams alone guarantees neither concurrency nor SM-level
//! co-location"), nothing forces their CTAs to share SMs.

use crate::kernel::KernelLaunch;

/// An in-order queue of kernel launches.
///
/// # Examples
///
/// ```
/// use gpu_sim::{CtaWork, Footprint, KernelLaunch, OpClass, Stream};
///
/// let mut stream = Stream::new("prefill");
/// stream.push(KernelLaunch::from_ctas(
///     "fa2_prefill",
///     Footprint::new(128, 64 * 1024),
///     vec![CtaWork::single(OpClass::Prefill, 1e9, 1e6); 216],
/// ));
/// assert_eq!(stream.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Stream {
    /// Name used in reports.
    pub name: String,
    kernels: std::collections::VecDeque<KernelLaunch>,
}

impl Stream {
    /// Create an empty stream.
    pub fn new(name: &str) -> Self {
        Stream {
            name: name.to_string(),
            kernels: Default::default(),
        }
    }

    /// Create a stream containing a single kernel launch.
    pub fn with_kernel(name: &str, kernel: KernelLaunch) -> Self {
        let mut s = Stream::new(name);
        s.push(kernel);
        s
    }

    /// Append a kernel launch to the stream.
    pub fn push(&mut self, kernel: KernelLaunch) {
        self.kernels.push_back(kernel);
    }

    /// Number of kernels not yet started or still executing in this stream.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True if no kernels remain.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// The kernel currently at the head of the stream, if any.
    pub fn head(&self) -> Option<&KernelLaunch> {
        self.kernels.front()
    }

    /// Mutable access to the head kernel.
    pub(crate) fn head_mut(&mut self) -> Option<&mut KernelLaunch> {
        self.kernels.front_mut()
    }

    /// Remove the head kernel (called by the engine when it has dispatched all
    /// of its CTAs).
    pub(crate) fn pop_head(&mut self) -> Option<KernelLaunch> {
        self.kernels.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{CtaWork, Footprint, OpClass};

    fn kernel(n: usize) -> KernelLaunch {
        KernelLaunch::from_ctas(
            "k",
            Footprint::new(128, 1024),
            vec![CtaWork::single(OpClass::Other, 1.0, 1.0); n],
        )
    }

    #[test]
    fn push_and_pop_preserve_fifo_order() {
        let mut s = Stream::new("s");
        s.push(kernel(1));
        s.push(kernel(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop_head().unwrap().remaining(), 1);
        assert_eq!(s.pop_head().unwrap().remaining(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn head_peeks_without_removing() {
        let mut s = Stream::with_kernel("s", kernel(3));
        assert_eq!(s.head().unwrap().remaining(), 3);
        assert_eq!(s.len(), 1);
        assert!(s.head_mut().is_some());
    }

    #[test]
    fn empty_stream_has_no_head() {
        let mut s = Stream::new("empty");
        assert!(s.head().is_none());
        assert!(s.pop_head().is_none());
        assert!(s.is_empty());
    }
}
