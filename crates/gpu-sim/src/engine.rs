//! The discrete-event contention engine.
//!
//! The engine advances simulated time in variable-length intervals. During
//! each interval the resource shares of every resident CTA are constant:
//!
//! * each SM's tensor-core throughput is divided equally among the resident
//!   work units on that SM that still have compute work (capped by
//!   [`EngineOptions::max_cta_compute_fraction`], modelling the fact that a
//!   single CTA cannot fully saturate an SM's tensor pipes);
//! * device HBM bandwidth is divided equally among all resident work units
//!   that still have memory work (capped by
//!   [`EngineOptions::max_cta_bandwidth_fraction`], modelling per-SM
//!   load/store throughput limits).
//!
//! An interval ends when some unit drains one of its resource streams (which
//! changes everyone's shares) or a CTA completes and frees SM resources so
//! the hardware CTA scheduler can place queued CTAs. Wave quantization,
//! stragglers and the benefit of SM-level co-location all emerge from these
//! mechanics rather than being hard-coded.
//!
//! # The incremental active-set design
//!
//! Because every memory-hungry unit receives the *same* global bandwidth
//! share and every compute-hungry unit on one SM receives the *same* share of
//! that SM's tensor throughput, the drain order within a resource pool never
//! changes while the pool's membership is fixed. The engine exploits this:
//! each pool keeps a running "work drained per member" accumulator, and every
//! active stream is entered into a min-heap keyed by
//! `accumulator-at-entry + remaining-work`. The stream with the smallest key
//! is always the next to drain, so finding the end of an interval is a peek
//! into one global memory heap, one heap per SM with compute demand, and a
//! heap of pending barrier tails — instead of the full rescan of every
//! resident unit that a naive implementation performs four times per
//! interval. Per-unit work is attributed to kernels and op-classes once, at
//! drain time, which is exact because shares are piecewise constant.

use crate::config::GpuConfig;
use crate::error::SimError;
use crate::kernel::KernelLaunch;
use crate::metrics::{EnergyModel, ExecutionReport, KernelReport, OpClassReport};
use crate::sm::SmState;
use crate::stream::Stream;
use crate::work::{CtaWork, Footprint, OpClass};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

/// Work threshold below which remaining FLOPs/bytes are treated as drained.
const WORK_EPS: f64 = 1e-6;
/// Time threshold below which a tail delay is treated as elapsed.
const TIME_EPS: f64 = 1e-15;
/// Relative slack added to [`WORK_EPS`] when comparing against the running
/// drained-work accumulators, absorbing the rounding error the accumulators
/// pick up over many intervals. At the largest per-unit work the kernels
/// produce (~1e11) this is a tenth of a byte / FLOP — physically negligible.
const ACC_REL_EPS: f64 = 1e-12;

/// Tunable fidelity parameters of the contention engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOptions {
    /// Maximum fraction of one SM's peak tensor throughput a single work unit
    /// can consume. Models the issue-rate limit of one CTA.
    pub max_cta_compute_fraction: f64,
    /// Maximum fraction of device HBM bandwidth a single work unit can
    /// consume. Models per-SM load/store and memory-level-parallelism limits.
    pub max_cta_bandwidth_fraction: f64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            max_cta_compute_fraction: 0.9,
            max_cta_bandwidth_fraction: 0.02,
        }
    }
}

/// Min-heap key: an `(f64, unit-id)` pair with a total order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64, usize);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// One work unit resident on the device.
#[derive(Debug, Clone)]
struct UnitRec {
    cta: usize,
    op: OpClass,
    flops: f64,
    bytes: f64,
    serial_fraction: f64,
    start: f64,
    busy_compute: f64,
    busy_memory: f64,
    compute_pending: bool,
    mem_pending: bool,
    tail_scheduled: bool,
    done: bool,
}

/// One CTA resident on (or retired from) the device.
#[derive(Debug, Clone)]
struct CtaRec {
    kernel_id: usize,
    sm: usize,
    footprint: Footprint,
    dominant_op: OpClass,
    live_units: usize,
    retired: bool,
}

/// Incrementally-maintained state of everything currently executing: unit and
/// CTA slabs, per-pool drained-work accumulators and the drain-event heaps.
#[derive(Debug)]
struct ActiveSet {
    units: Vec<UnitRec>,
    ctas: Vec<CtaRec>,
    /// Bytes drained per memory-active unit since the start of the run.
    mem_drained: f64,
    /// FLOPs drained per compute-active unit on each SM.
    sm_flops_drained: Vec<f64>,
    /// Pending compute drains per SM; `compute_heaps[sm].len()` *is* that
    /// SM's compute demand.
    compute_heaps: Vec<BinaryHeap<Reverse<Key>>>,
    /// Pending memory drains; `mem_heap.len()` is the device memory demand.
    mem_heap: BinaryHeap<Reverse<Key>>,
    /// Pending barrier-tail expiries, keyed by absolute time.
    tail_heap: BinaryHeap<Reverse<Key>>,
    /// CTAs whose last unit finished, awaiting resource release.
    retire_queue: Vec<usize>,
    /// Dispatched but not yet retired CTAs.
    live_ctas: usize,
}

impl ActiveSet {
    fn new(num_sms: usize) -> Self {
        ActiveSet {
            units: Vec::new(),
            ctas: Vec::new(),
            mem_drained: 0.0,
            sm_flops_drained: vec![0.0; num_sms],
            compute_heaps: (0..num_sms).map(|_| BinaryHeap::new()).collect(),
            mem_heap: BinaryHeap::new(),
            tail_heap: BinaryHeap::new(),
            retire_queue: Vec::new(),
            live_ctas: 0,
        }
    }

    /// Enter a freshly-dispatched CTA into the active set.
    fn add_cta(
        &mut self,
        work: &CtaWork,
        kernel_id: usize,
        sm: usize,
        footprint: Footprint,
        dominant_op: OpClass,
        now: f64,
    ) {
        let cta_id = self.ctas.len();
        self.ctas.push(CtaRec {
            kernel_id,
            sm,
            footprint,
            dominant_op,
            live_units: work.units.len(),
            retired: false,
        });
        self.live_ctas += 1;
        for u in &work.units {
            let uid = self.units.len();
            let mut rec = UnitRec {
                cta: cta_id,
                op: u.op,
                flops: u.flops,
                bytes: u.bytes,
                serial_fraction: u.serial_fraction,
                start: now,
                busy_compute: 0.0,
                busy_memory: 0.0,
                compute_pending: false,
                mem_pending: false,
                tail_scheduled: false,
                done: false,
            };
            if u.flops > WORK_EPS {
                rec.compute_pending = true;
                self.compute_heaps[sm].push(Reverse(Key(self.sm_flops_drained[sm] + u.flops, uid)));
            }
            if u.bytes > WORK_EPS {
                rec.mem_pending = true;
                self.mem_heap
                    .push(Reverse(Key(self.mem_drained + u.bytes, uid)));
            }
            self.units.push(rec);
            self.maybe_finish_unit(uid, now);
        }
    }

    /// If both resource streams of `uid` have drained, charge the
    /// barrier-induced serial tail; once it elapses the unit is done.
    fn maybe_finish_unit(&mut self, uid: usize, now: f64) {
        let u = &mut self.units[uid];
        if u.done || u.compute_pending || u.mem_pending || u.tail_scheduled {
            return;
        }
        let tail = u.serial_fraction * u.busy_compute.min(u.busy_memory);
        if tail <= TIME_EPS {
            u.done = true;
            let cta = u.cta;
            let c = &mut self.ctas[cta];
            c.live_units -= 1;
            if c.live_units == 0 {
                self.retire_queue.push(cta);
            }
        } else {
            u.tail_scheduled = true;
            self.tail_heap.push(Reverse(Key(now + tail, uid)));
        }
    }

    /// Time until the next drain/expiry event given the current shares, or
    /// `0.0` if nothing is pending (only instantly-complete CTAs remain).
    fn next_event_dt(&self, now: f64, shares: &Shares) -> f64 {
        let mut dt = f64::INFINITY;
        if let Some(&Reverse(Key(tok, _))) = self.mem_heap.peek() {
            let share = shares.mem_share(self.mem_heap.len());
            dt = dt.min((tok - self.mem_drained).max(0.0) / share);
        }
        for (sm, heap) in self.compute_heaps.iter().enumerate() {
            if let Some(&Reverse(Key(tok, _))) = heap.peek() {
                let share = shares.compute_share(heap.len());
                dt = dt.min((tok - self.sm_flops_drained[sm]).max(0.0) / share);
            }
        }
        if let Some(&Reverse(Key(t, _))) = self.tail_heap.peek() {
            dt = dt.min((t - now).max(0.0));
        }
        if dt.is_finite() {
            dt
        } else {
            0.0
        }
    }

    /// Advance all drained-work accumulators by `dt` and return the
    /// `(flops, bytes)` moved during the interval.
    fn advance(&mut self, dt: f64, shares: &Shares) -> (f64, f64) {
        let mut flops = 0.0;
        let mut bytes = 0.0;
        let m = self.mem_heap.len();
        if m > 0 {
            let share = shares.mem_share(m);
            self.mem_drained += share * dt;
            bytes = m as f64 * share * dt;
        }
        for (sm, heap) in self.compute_heaps.iter().enumerate() {
            let d = heap.len();
            if d > 0 {
                let share = shares.compute_share(d);
                self.sm_flops_drained[sm] += share * dt;
                flops += d as f64 * share * dt;
            }
        }
        (flops, bytes)
    }

    /// Pop every stream/tail that drained by `now`, attributing the finished
    /// work to its kernel and op-class.
    fn process_events(
        &mut self,
        now: f64,
        kernels: &mut [KernelState],
        op_classes: &mut BTreeMap<OpClass, OpClassReport>,
    ) {
        let mem_eps = WORK_EPS + self.mem_drained.abs() * ACC_REL_EPS;
        while let Some(&Reverse(Key(tok, uid))) = self.mem_heap.peek() {
            if tok - self.mem_drained > mem_eps {
                break;
            }
            self.mem_heap.pop();
            let u = &mut self.units[uid];
            u.mem_pending = false;
            u.busy_memory = now - u.start;
            kernels[self.ctas[u.cta].kernel_id].bytes += u.bytes;
            op_classes.entry(u.op).or_default().bytes += u.bytes;
            self.maybe_finish_unit(uid, now);
        }
        for sm in 0..self.compute_heaps.len() {
            let eps = WORK_EPS + self.sm_flops_drained[sm].abs() * ACC_REL_EPS;
            while let Some(&Reverse(Key(tok, uid))) = self.compute_heaps[sm].peek() {
                if tok - self.sm_flops_drained[sm] > eps {
                    break;
                }
                self.compute_heaps[sm].pop();
                let u = &mut self.units[uid];
                u.compute_pending = false;
                u.busy_compute = now - u.start;
                kernels[self.ctas[u.cta].kernel_id].flops += u.flops;
                op_classes.entry(u.op).or_default().flops += u.flops;
                self.maybe_finish_unit(uid, now);
            }
        }
        while let Some(&Reverse(Key(t, uid))) = self.tail_heap.peek() {
            if t - now > TIME_EPS {
                break;
            }
            self.tail_heap.pop();
            let u = &mut self.units[uid];
            u.tail_scheduled = false;
            debug_assert!(!u.compute_pending && !u.mem_pending);
            u.done = true;
            let cta = u.cta;
            let c = &mut self.ctas[cta];
            c.live_units -= 1;
            if c.live_units == 0 {
                self.retire_queue.push(cta);
            }
        }
    }

    /// Release the resources of every CTA whose last unit finished.
    fn retire_complete(
        &mut self,
        now: f64,
        sms: &mut [SmState],
        kernels: &mut [KernelState],
        op_classes: &mut BTreeMap<OpClass, OpClassReport>,
    ) {
        while let Some(cid) = self.retire_queue.pop() {
            let c = &mut self.ctas[cid];
            if c.retired {
                continue;
            }
            c.retired = true;
            sms[c.sm].release(&c.footprint, c.kernel_id);
            let ks = &mut kernels[c.kernel_id];
            ks.completed += 1;
            ks.end = now;
            let entry = op_classes.entry(c.dominant_op).or_default();
            entry.finish_time = entry.finish_time.max(now);
            self.live_ctas -= 1;
        }
    }
}

/// Resource shares in effect for one interval, derived from the device peaks
/// and the per-unit caps.
#[derive(Debug, Clone, Copy)]
struct Shares {
    sm_peak: f64,
    compute_cap: f64,
    hbm: f64,
    mem_cap: f64,
}

impl Shares {
    fn compute_share(&self, demand: usize) -> f64 {
        (self.sm_peak / demand as f64).min(self.compute_cap)
    }

    fn mem_share(&self, demand: usize) -> f64 {
        (self.hbm / demand as f64).min(self.mem_cap)
    }
}

#[derive(Debug)]
struct KernelState {
    /// Interned kernel id; cloned cheaply wherever the engine needs the name.
    name: Arc<str>,
    footprint: Footprint,
    cap: Option<usize>,
    dispatched: usize,
    completed: usize,
    fully_dispatched: bool,
    start: Option<f64>,
    end: f64,
    flops: f64,
    bytes: f64,
}

/// The GPU simulator.
///
/// # Examples
///
/// ```
/// use gpu_sim::{CtaWork, Engine, Footprint, GpuConfig, KernelLaunch, OpClass};
///
/// let gpu = GpuConfig::a100_80gb();
/// // A compute-heavy kernel: one wave of CTAs, 1 GFLOP each.
/// let kernel = KernelLaunch::from_ctas(
///     "compute",
///     Footprint::new(128, 64 * 1024),
///     vec![CtaWork::single(OpClass::ComputeBound, 1e9, 1e3); 216],
/// );
/// let report = Engine::new(gpu).run_kernel(kernel)?;
/// assert!(report.compute_utilization() > 0.5);
/// assert!(report.memory_utilization() < 0.05);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    gpu: GpuConfig,
    opts: EngineOptions,
}

impl Engine {
    /// Create an engine for the given device with default fidelity options.
    pub fn new(gpu: GpuConfig) -> Self {
        Engine {
            gpu,
            opts: EngineOptions::default(),
        }
    }

    /// Create an engine with explicit [`EngineOptions`].
    pub fn with_options(gpu: GpuConfig, opts: EngineOptions) -> Self {
        Engine { gpu, opts }
    }

    /// The device this engine simulates.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The fidelity options in effect.
    pub fn options(&self) -> EngineOptions {
        self.opts
    }

    /// Convenience: run a single kernel on its own stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the kernel cannot be scheduled (see
    /// [`Engine::run`]).
    pub fn run_kernel(&self, kernel: KernelLaunch) -> Result<ExecutionReport, SimError> {
        self.run(vec![Stream::with_kernel("stream0", kernel)])
    }

    /// Convenience: run kernels back-to-back on one stream (serial execution).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any kernel cannot be scheduled.
    pub fn run_serial(&self, kernels: Vec<KernelLaunch>) -> Result<ExecutionReport, SimError> {
        let mut s = Stream::new("serial");
        for k in kernels {
            s.push(k);
        }
        self.run(vec![s])
    }

    /// Convenience: run each kernel on its own stream (kernel-parallel
    /// execution via CUDA streams).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any kernel cannot be scheduled.
    pub fn run_concurrent(&self, kernels: Vec<KernelLaunch>) -> Result<ExecutionReport, SimError> {
        let streams = kernels
            .into_iter()
            .enumerate()
            .map(|(i, k)| Stream::with_kernel(&format!("stream{i}"), k))
            .collect();
        self.run(streams)
    }

    /// Simulate the execution of the given streams to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CtaTooLarge`] if a kernel's per-CTA footprint
    /// exceeds one SM, or [`SimError::Stalled`] if a launch configuration
    /// (e.g. a per-SM CTA cap of zero) prevents any progress.
    pub fn run(&self, streams: Vec<Stream>) -> Result<ExecutionReport, SimError> {
        let mut streams = streams;
        let num_sms = self.gpu.num_sms;
        let mut sms: Vec<SmState> = vec![SmState::default(); num_sms];
        let mut kernels: Vec<KernelState> = Vec::new();
        let mut head_kernel: Vec<Option<usize>> = vec![None; streams.len()];
        let mut time = 0.0_f64;
        let mut cursor = 0usize;

        let energy_model = EnergyModel::new(&self.gpu);
        let mut energy = 0.0_f64;
        let mut total_flops = 0.0_f64;
        let mut total_bytes = 0.0_f64;
        let mut total_ctas = 0usize;
        let mut intervals = 0usize;
        let mut op_classes: BTreeMap<OpClass, OpClassReport> = BTreeMap::new();

        let shares = Shares {
            sm_peak: self.gpu.sm_compute_flops(),
            compute_cap: self.opts.max_cta_compute_fraction * self.gpu.sm_compute_flops(),
            hbm: self.gpu.hbm_bandwidth,
            mem_cap: self.opts.max_cta_bandwidth_fraction * self.gpu.hbm_bandwidth,
        };
        let mut active = ActiveSet::new(num_sms);

        loop {
            self.fill(
                &mut streams,
                &mut head_kernel,
                &mut kernels,
                &mut sms,
                &mut active,
                &mut op_classes,
                &mut total_ctas,
                time,
                &mut cursor,
            )?;

            // Kernels with zero CTAs (or whose CTAs were all instantly
            // complete) finish without ever executing; pop them so the next
            // kernel in their stream can start.
            if Self::pop_finished(&mut streams, &mut head_kernel, &kernels) {
                continue;
            }

            if active.live_ctas == 0 {
                if streams.iter().all(Stream::is_empty) {
                    break;
                }
                // Work remains but nothing could be placed and nothing is
                // running: the configuration can never make progress.
                let name = streams
                    .iter()
                    .find_map(|s| s.head().map(|k| k.name.clone()))
                    .unwrap_or_else(|| "<unknown>".to_string());
                return Err(SimError::Stalled { kernel: name });
            }

            // --- advance to the next drain/expiry event ---
            let dt = active.next_event_dt(time, &shares);
            let (interval_flops, interval_bytes) = active.advance(dt, &shares);
            time += dt;
            intervals += 1;
            energy += energy_model.interval_energy(dt, interval_flops, interval_bytes);
            total_flops += interval_flops;
            total_bytes += interval_bytes;

            // --- settle drained streams, expired tails, completed CTAs ---
            active.process_events(time, &mut kernels, &mut op_classes);
            active.retire_complete(time, &mut sms, &mut kernels, &mut op_classes);

            // --- pop finished kernels off their streams ---
            Self::pop_finished(&mut streams, &mut head_kernel, &kernels);
        }

        let kernel_reports = kernels
            .into_iter()
            .map(|k| KernelReport {
                name: k.name.as_ref().to_owned(),
                start: k.start.unwrap_or(0.0),
                end: k.end,
                ctas: k.dispatched,
                flops: k.flops,
                bytes: k.bytes,
            })
            .collect();

        Ok(ExecutionReport {
            makespan: time,
            total_flops,
            total_bytes,
            energy_joules: energy,
            kernels: kernel_reports,
            op_classes,
            peak_flops: self.gpu.tensor_flops,
            peak_bandwidth: self.gpu.hbm_bandwidth,
            total_ctas,
            intervals,
        })
    }

    /// Pop every stream whose head kernel has fully dispatched and completed
    /// all of its CTAs. Returns true if any kernel was popped.
    fn pop_finished(
        streams: &mut [Stream],
        head_kernel: &mut [Option<usize>],
        kernels: &[KernelState],
    ) -> bool {
        let mut popped = false;
        for (si, stream) in streams.iter_mut().enumerate() {
            if let Some(kid) = head_kernel[si] {
                let ks = &kernels[kid];
                if ks.fully_dispatched && ks.completed == ks.dispatched {
                    stream.pop_head();
                    head_kernel[si] = None;
                    popped = true;
                }
            }
        }
        popped
    }

    /// Activate stream heads and place as many pending CTAs as fit, in
    /// submission-priority order, breadth-first across SMs.
    #[allow(clippy::too_many_arguments)]
    fn fill(
        &self,
        streams: &mut [Stream],
        head_kernel: &mut [Option<usize>],
        kernels: &mut Vec<KernelState>,
        sms: &mut [SmState],
        active: &mut ActiveSet,
        op_classes: &mut BTreeMap<OpClass, OpClassReport>,
        total_ctas: &mut usize,
        time: f64,
        cursor: &mut usize,
    ) -> Result<(), SimError> {
        let num_sms = self.gpu.num_sms;

        // Activate the head kernel of every stream that does not have one.
        for si in 0..streams.len() {
            if head_kernel[si].is_some() {
                continue;
            }
            if let Some(head) = streams[si].head() {
                if self
                    .gpu
                    .occupancy(head.footprint.shared_mem, head.footprint.threads)
                    == 0
                {
                    return Err(SimError::CtaTooLarge {
                        kernel: head.name.clone(),
                        shared_mem: head.footprint.shared_mem,
                        threads: head.footprint.threads,
                    });
                }
                if head.max_ctas_per_sm == Some(0) && head.remaining() > 0 {
                    return Err(SimError::Stalled {
                        kernel: head.name.clone(),
                    });
                }
                kernels.push(KernelState {
                    name: Arc::from(head.name.as_str()),
                    footprint: head.footprint,
                    cap: head.max_ctas_per_sm,
                    dispatched: 0,
                    completed: 0,
                    fully_dispatched: head.remaining() == 0,
                    start: None,
                    end: time,
                    flops: 0.0,
                    bytes: 0.0,
                });
                head_kernel[si] = Some(kernels.len() - 1);
            }
        }

        // Placement: streams are visited in submission order and each head
        // kernel places as many CTAs as currently fit — breadth-first across
        // SMs, one per SM per pass — before the next stream gets a chance.
        // This mirrors the hardware CTA scheduler's launch-order priority:
        // a later kernel only receives SMs the earlier kernels left idle,
        // which is why CUDA streams alone do not guarantee SM-level
        // co-location (§3.1 of the paper).
        for si in 0..streams.len() {
            let Some(kid) = head_kernel[si] else { continue };
            if kernels[kid].fully_dispatched {
                continue;
            }
            let footprint = kernels[kid].footprint;
            let cap = kernels[kid].cap;
            let head = streams[si]
                .head_mut()
                .expect("active head kernel missing from stream");
            loop {
                let mut placed_any = false;
                for off in 0..num_sms {
                    if head.remaining() == 0 {
                        break;
                    }
                    let sm_id = (*cursor + off) % num_sms;
                    if sms[sm_id].can_fit(&self.gpu, &footprint, kid, cap) {
                        let work: CtaWork = head.dispatcher.dispatch(sm_id);
                        sms[sm_id].allocate(&footprint, kid);
                        let dominant = work.dominant_op();
                        op_classes.entry(dominant).or_default().ctas += 1;
                        active.add_cta(&work, kid, sm_id, footprint, dominant, time);
                        let ks = &mut kernels[kid];
                        ks.dispatched += 1;
                        *total_ctas += 1;
                        if ks.start.is_none() {
                            ks.start = Some(time);
                        }
                        placed_any = true;
                    }
                }
                *cursor = (*cursor + 1) % num_sms;
                if head.remaining() == 0 {
                    kernels[kid].fully_dispatched = true;
                    break;
                }
                if !placed_any {
                    break;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::WorkUnit;

    fn gpu() -> GpuConfig {
        GpuConfig::a100_80gb()
    }

    /// One wave of purely compute-bound CTAs should run at high compute
    /// utilization and take roughly total_flops / peak.
    #[test]
    fn compute_bound_kernel_saturates_compute() {
        let g = gpu();
        let per_cta = 1e9;
        let n = 216; // two CTAs per SM
        let kernel = KernelLaunch::from_ctas(
            "compute",
            Footprint::new(128, 64 * 1024),
            vec![CtaWork::single(OpClass::ComputeBound, per_cta, 1e3); n],
        );
        let report = Engine::new(g.clone()).run_kernel(kernel).unwrap();
        let ideal = n as f64 * per_cta / g.tensor_flops;
        assert!(report.makespan >= ideal);
        assert!(
            report.makespan < ideal * 1.3,
            "makespan {} vs ideal {}",
            report.makespan,
            ideal
        );
        assert!(report.compute_utilization() > 0.75);
        assert!(report.memory_utilization() < 0.05);
    }

    /// A memory-bound kernel with plenty of CTAs should saturate bandwidth.
    #[test]
    fn memory_bound_kernel_saturates_bandwidth() {
        let g = gpu();
        let per_cta_bytes = 20e6;
        let n = 216;
        let kernel = KernelLaunch::from_ctas(
            "memory",
            Footprint::new(128, 64 * 1024),
            vec![CtaWork::single(OpClass::MemoryBound, 1e3, per_cta_bytes); n],
        );
        let report = Engine::new(g.clone()).run_kernel(kernel).unwrap();
        let ideal = n as f64 * per_cta_bytes / g.hbm_bandwidth;
        assert!(report.makespan >= ideal);
        assert!(report.makespan < ideal * 1.3);
        assert!(report.memory_utilization() > 0.75);
        assert!(report.compute_utilization() < 0.05);
    }

    /// Serial execution of a compute-bound and a memory-bound kernel takes
    /// roughly the sum; running them fused with SM co-location approaches the
    /// max. This is the core premise of the paper.
    #[test]
    fn colocated_fusion_beats_serial() {
        let g = gpu();
        let compute_ctas = vec![CtaWork::single(OpClass::ComputeBound, 2e9, 1e3); 108];
        let memory_ctas = vec![CtaWork::single(OpClass::MemoryBound, 1e3, 40e6); 108];
        let fp = Footprint::new(128, 64 * 1024);

        let engine = Engine::new(g);
        let serial = engine
            .run_serial(vec![
                KernelLaunch::from_ctas("c", fp, compute_ctas.clone()),
                KernelLaunch::from_ctas("m", fp, memory_ctas.clone()),
            ])
            .unwrap();

        // Fused: all compute CTAs followed by all memory CTAs in one kernel.
        // Breadth-first placement then gives every SM one CTA of each kind,
        // i.e. guaranteed SM-level co-location.
        let mut fused = Vec::new();
        fused.extend(compute_ctas.iter().cloned());
        fused.extend(memory_ctas.iter().cloned());
        let fused_report = engine
            .run_kernel(KernelLaunch::from_ctas("fused", fp, fused))
            .unwrap();

        assert!(
            fused_report.makespan < serial.makespan * 0.8,
            "fused {} vs serial {}",
            fused_report.makespan,
            serial.makespan
        );
    }

    /// Wave quantization: 217 CTAs at 2 CTAs/SM occupancy on 108 SMs needs a
    /// third wave for the single leftover CTA, so it takes measurably longer
    /// than 216 CTAs even though the extra work is negligible.
    #[test]
    fn wave_quantization_emerges() {
        let g = gpu();
        let fp = Footprint::new(128, 80 * 1024); // occupancy 2
        let make = |n: usize| {
            KernelLaunch::from_ctas(
                "k",
                fp,
                vec![CtaWork::single(OpClass::ComputeBound, 1e9, 1e3); n],
            )
        };
        let engine = Engine::new(g);
        let t216 = engine.run_kernel(make(216)).unwrap().makespan;
        let t217 = engine.run_kernel(make(217)).unwrap().makespan;
        assert!(
            t217 > t216 * 1.3,
            "expected wave quantization penalty: {t216} vs {t217}"
        );
    }

    /// Streams only overlap kernels when the first leaves SMs idle.
    #[test]
    fn streams_overlap_at_the_tail() {
        let g = gpu();
        let fp = Footprint::new(128, 80 * 1024);
        let a = vec![CtaWork::single(OpClass::ComputeBound, 1e9, 1e3); 220];
        let b = vec![CtaWork::single(OpClass::MemoryBound, 1e3, 30e6); 220];
        let engine = Engine::new(g);
        let serial = engine
            .run_serial(vec![
                KernelLaunch::from_ctas("a", fp, a.clone()),
                KernelLaunch::from_ctas("b", fp, b.clone()),
            ])
            .unwrap()
            .makespan;
        let streams = engine
            .run_concurrent(vec![
                KernelLaunch::from_ctas("a", fp, a),
                KernelLaunch::from_ctas("b", fp, b),
            ])
            .unwrap()
            .makespan;
        assert!(streams <= serial);
        // But the overlap is limited: far from the ideal max().
        assert!(streams > serial * 0.55);
    }

    /// A fused (multi-unit) CTA holds its resources until the slowest unit
    /// finishes — the straggler problem of warp-parallel fusion.
    #[test]
    fn fused_cta_straggler_holds_resources() {
        let g = gpu();
        let fp = Footprint::new(256, 100 * 1024); // occupancy 1
                                                  // 108 fused CTAs: a fast memory unit + a slow compute unit.
        let fused: Vec<CtaWork> = (0..108)
            .map(|_| {
                CtaWork::fused(vec![
                    WorkUnit::new(OpClass::Prefill, 5e9, 1e3),
                    WorkUnit::new(OpClass::Decode, 1e3, 1e6),
                ])
            })
            .collect();
        // Followed by another compute kernel that must wait for stragglers.
        let tail = vec![CtaWork::single(OpClass::ComputeBound, 1e9, 1e3); 108];
        let engine = Engine::new(g.clone());
        let report = engine
            .run_serial(vec![
                KernelLaunch::from_ctas("fused", fp, fused),
                KernelLaunch::from_ctas("tail", fp, tail),
            ])
            .unwrap();
        // The fused kernel's duration is governed by the slow compute unit.
        let fused_k = report.kernel("fused").unwrap();
        let min_compute = 5e9 / (g.sm_compute_flops() * 0.9);
        assert!(fused_k.duration() >= min_compute * 0.99);
    }

    #[test]
    fn too_large_cta_is_an_error() {
        let g = gpu();
        let kernel = KernelLaunch::from_ctas(
            "huge",
            Footprint::new(128, 512 * 1024),
            vec![CtaWork::single(OpClass::Other, 1.0, 1.0)],
        );
        let err = Engine::new(g).run_kernel(kernel).unwrap_err();
        assert!(matches!(err, SimError::CtaTooLarge { .. }));
    }

    #[test]
    fn zero_cap_is_a_stall_error() {
        let g = gpu();
        let kernel = KernelLaunch::from_ctas(
            "capped",
            Footprint::new(128, 1024),
            vec![CtaWork::single(OpClass::Other, 1.0, 1.0)],
        )
        .limit_ctas_per_sm(0);
        let err = Engine::new(g).run_kernel(kernel).unwrap_err();
        assert!(matches!(err, SimError::Stalled { .. }));
    }

    #[test]
    fn empty_submission_finishes_instantly() {
        let g = gpu();
        let report = Engine::new(g).run(vec![Stream::new("empty")]).unwrap();
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.total_ctas, 0);
        assert_eq!(report.intervals, 0);
    }

    #[test]
    fn kernel_with_no_ctas_completes() {
        let g = gpu();
        let report = Engine::new(g)
            .run_kernel(KernelLaunch::from_ctas(
                "noop",
                Footprint::default(),
                vec![],
            ))
            .unwrap();
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.kernels.len(), 1);
    }

    #[test]
    fn work_is_conserved() {
        let g = gpu();
        let ctas = vec![CtaWork::single(OpClass::Prefill, 3e8, 4e5); 50];
        let expected_flops: f64 = ctas.iter().map(CtaWork::total_flops).sum();
        let expected_bytes: f64 = ctas.iter().map(CtaWork::total_bytes).sum();
        let report = Engine::new(g)
            .run_kernel(KernelLaunch::from_ctas("k", Footprint::default(), ctas))
            .unwrap();
        assert!((report.total_flops - expected_flops).abs() / expected_flops < 1e-6);
        assert!((report.total_bytes - expected_bytes).abs() / expected_bytes < 1e-6);
        assert_eq!(report.total_ctas, 50);
    }

    /// Per-kernel and per-op-class attributions also conserve work.
    #[test]
    fn attribution_is_conserved_per_kernel_and_class() {
        let g = gpu();
        let prefill = vec![CtaWork::single(OpClass::Prefill, 3e8, 4e5); 40];
        let decode = vec![CtaWork::single(OpClass::Decode, 1e5, 2e6); 60];
        let fp = Footprint::default();
        let report = Engine::new(g)
            .run_serial(vec![
                KernelLaunch::from_ctas("p", fp, prefill),
                KernelLaunch::from_ctas("d", fp, decode),
            ])
            .unwrap();
        let p = report.kernel("p").unwrap();
        let d = report.kernel("d").unwrap();
        assert!((p.flops - 40.0 * 3e8).abs() / (40.0 * 3e8) < 1e-9);
        assert!((d.bytes - 60.0 * 2e6).abs() / (60.0 * 2e6) < 1e-9);
        let pc = report.op_class(OpClass::Prefill).unwrap();
        assert!((pc.bytes - 40.0 * 4e5).abs() / (40.0 * 4e5) < 1e-9);
        assert_eq!(pc.ctas, 40);
        assert!(report.intervals > 0);
    }

    #[test]
    fn per_kernel_cap_reduces_concurrency() {
        let g = gpu();
        let fp = Footprint::new(128, 16 * 1024); // occupancy 10
        let ctas = vec![CtaWork::single(OpClass::ComputeBound, 1e9, 1e3); 216];
        let engine = Engine::new(g);
        let free = engine
            .run_kernel(KernelLaunch::from_ctas("free", fp, ctas.clone()))
            .unwrap()
            .makespan;
        let capped = engine
            .run_kernel(KernelLaunch::from_ctas("capped", fp, ctas).limit_ctas_per_sm(1))
            .unwrap()
            .makespan;
        // With a cap of 1 CTA/SM and a per-CTA compute cap below 100%, the
        // kernel cannot use the full SM, so it is slower.
        assert!(capped > free * 1.05);
    }

    #[test]
    fn serial_fraction_adds_tail_latency() {
        let g = gpu();
        let fp = Footprint::new(128, 64 * 1024);
        let pipelined = vec![CtaWork::single(OpClass::Other, 2e9, 20e6); 108];
        let serialized: Vec<CtaWork> = (0..108)
            .map(|_| CtaWork {
                units: vec![WorkUnit::new(OpClass::Other, 2e9, 20e6).with_serial_fraction(1.0)],
            })
            .collect();
        let engine = Engine::new(g);
        let t_pipe = engine
            .run_kernel(KernelLaunch::from_ctas("p", fp, pipelined))
            .unwrap()
            .makespan;
        let t_serial = engine
            .run_kernel(KernelLaunch::from_ctas("s", fp, serialized))
            .unwrap()
            .makespan;
        assert!(t_serial > t_pipe * 1.1, "{t_serial} vs {t_pipe}");
    }

    #[test]
    fn energy_increases_with_runtime() {
        let g = gpu();
        let fp = Footprint::default();
        let small = vec![CtaWork::single(OpClass::ComputeBound, 1e8, 1e3); 108];
        let large = vec![CtaWork::single(OpClass::ComputeBound, 1e10, 1e3); 108];
        let engine = Engine::new(g);
        let e_small = engine
            .run_kernel(KernelLaunch::from_ctas("s", fp, small))
            .unwrap()
            .energy_joules;
        let e_large = engine
            .run_kernel(KernelLaunch::from_ctas("l", fp, large))
            .unwrap()
            .energy_joules;
        assert!(e_large > e_small);
    }
}
