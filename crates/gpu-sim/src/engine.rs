//! The discrete-event contention engine.
//!
//! The engine advances simulated time in variable-length intervals. During
//! each interval the resource shares of every resident CTA are constant:
//!
//! * each SM's tensor-core throughput is divided equally among the resident
//!   work units on that SM that still have compute work (capped by
//!   [`EngineOptions::max_cta_compute_fraction`], modelling the fact that a
//!   single CTA cannot fully saturate an SM's tensor pipes);
//! * device HBM bandwidth is divided equally among all resident work units
//!   that still have memory work (capped by
//!   [`EngineOptions::max_cta_bandwidth_fraction`], modelling per-SM
//!   load/store throughput limits).
//!
//! An interval ends when some unit drains one of its resource streams (which
//! changes everyone's shares) or a CTA completes and frees SM resources so
//! the hardware CTA scheduler can place queued CTAs. Wave quantization,
//! stragglers and the benefit of SM-level co-location all emerge from these
//! mechanics rather than being hard-coded.

use crate::config::GpuConfig;
use crate::error::SimError;
use crate::kernel::KernelLaunch;
use crate::metrics::{EnergyModel, ExecutionReport, KernelReport, OpClassReport};
use crate::sm::SmState;
use crate::stream::Stream;
use crate::work::{CtaWork, Footprint, OpClass};
use std::collections::BTreeMap;

/// Work threshold below which remaining FLOPs/bytes are treated as drained.
const WORK_EPS: f64 = 1e-6;
/// Time threshold below which a tail delay is treated as elapsed.
const TIME_EPS: f64 = 1e-15;

/// Tunable fidelity parameters of the contention engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOptions {
    /// Maximum fraction of one SM's peak tensor throughput a single work unit
    /// can consume. Models the issue-rate limit of one CTA.
    pub max_cta_compute_fraction: f64,
    /// Maximum fraction of device HBM bandwidth a single work unit can
    /// consume. Models per-SM load/store and memory-level-parallelism limits.
    pub max_cta_bandwidth_fraction: f64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            max_cta_compute_fraction: 0.9,
            max_cta_bandwidth_fraction: 0.02,
        }
    }
}

#[derive(Debug, Clone)]
struct UnitState {
    rem_flops: f64,
    rem_bytes: f64,
    op: OpClass,
    serial_fraction: f64,
    busy_compute: f64,
    busy_memory: f64,
    /// Barrier-induced tail delay; `None` until both resource streams drain.
    tail: Option<f64>,
    done: bool,
    compute_rate: f64,
    mem_rate: f64,
}

impl UnitState {
    fn new(unit: &crate::work::WorkUnit) -> Self {
        let done = unit.flops <= WORK_EPS && unit.bytes <= WORK_EPS && unit.serial_fraction <= 0.0;
        UnitState {
            rem_flops: unit.flops,
            rem_bytes: unit.bytes,
            op: unit.op,
            serial_fraction: unit.serial_fraction,
            busy_compute: 0.0,
            busy_memory: 0.0,
            tail: if done { Some(0.0) } else { None },
            done,
            compute_rate: 0.0,
            mem_rate: 0.0,
        }
    }
}

#[derive(Debug)]
struct ExecCta {
    kernel_id: usize,
    sm: usize,
    footprint: Footprint,
    units: Vec<UnitState>,
    dominant_op: OpClass,
}

impl ExecCta {
    fn is_complete(&self) -> bool {
        self.units.iter().all(|u| u.done)
    }
}

#[derive(Debug)]
struct KernelState {
    name: String,
    footprint: Footprint,
    cap: Option<usize>,
    dispatched: usize,
    completed: usize,
    fully_dispatched: bool,
    start: Option<f64>,
    end: f64,
    flops: f64,
    bytes: f64,
}

/// The GPU simulator.
///
/// # Examples
///
/// ```
/// use gpu_sim::{CtaWork, Engine, Footprint, GpuConfig, KernelLaunch, OpClass};
///
/// let gpu = GpuConfig::a100_80gb();
/// // A compute-heavy kernel: one wave of CTAs, 1 GFLOP each.
/// let kernel = KernelLaunch::from_ctas(
///     "compute",
///     Footprint::new(128, 64 * 1024),
///     vec![CtaWork::single(OpClass::ComputeBound, 1e9, 1e3); 216],
/// );
/// let report = Engine::new(gpu).run_kernel(kernel)?;
/// assert!(report.compute_utilization() > 0.5);
/// assert!(report.memory_utilization() < 0.05);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    gpu: GpuConfig,
    opts: EngineOptions,
}

impl Engine {
    /// Create an engine for the given device with default fidelity options.
    pub fn new(gpu: GpuConfig) -> Self {
        Engine {
            gpu,
            opts: EngineOptions::default(),
        }
    }

    /// Create an engine with explicit [`EngineOptions`].
    pub fn with_options(gpu: GpuConfig, opts: EngineOptions) -> Self {
        Engine { gpu, opts }
    }

    /// The device this engine simulates.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The fidelity options in effect.
    pub fn options(&self) -> EngineOptions {
        self.opts
    }

    /// Convenience: run a single kernel on its own stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the kernel cannot be scheduled (see
    /// [`Engine::run`]).
    pub fn run_kernel(&self, kernel: KernelLaunch) -> Result<ExecutionReport, SimError> {
        self.run(vec![Stream::with_kernel("stream0", kernel)])
    }

    /// Convenience: run kernels back-to-back on one stream (serial execution).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any kernel cannot be scheduled.
    pub fn run_serial(&self, kernels: Vec<KernelLaunch>) -> Result<ExecutionReport, SimError> {
        let mut s = Stream::new("serial");
        for k in kernels {
            s.push(k);
        }
        self.run(vec![s])
    }

    /// Convenience: run each kernel on its own stream (kernel-parallel
    /// execution via CUDA streams).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any kernel cannot be scheduled.
    pub fn run_concurrent(&self, kernels: Vec<KernelLaunch>) -> Result<ExecutionReport, SimError> {
        let streams = kernels
            .into_iter()
            .enumerate()
            .map(|(i, k)| Stream::with_kernel(&format!("stream{i}"), k))
            .collect();
        self.run(streams)
    }

    /// Simulate the execution of the given streams to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CtaTooLarge`] if a kernel's per-CTA footprint
    /// exceeds one SM, or [`SimError::Stalled`] if a launch configuration
    /// (e.g. a per-SM CTA cap of zero) prevents any progress.
    pub fn run(&self, streams: Vec<Stream>) -> Result<ExecutionReport, SimError> {
        let mut streams = streams;
        let num_sms = self.gpu.num_sms;
        let mut sms: Vec<SmState> = vec![SmState::default(); num_sms];
        let mut kernels: Vec<KernelState> = Vec::new();
        let mut head_kernel: Vec<Option<usize>> = vec![None; streams.len()];
        let mut executing: Vec<ExecCta> = Vec::new();
        let mut time = 0.0_f64;
        let mut cursor = 0usize;

        let energy_model = EnergyModel::new(&self.gpu);
        let mut energy = 0.0_f64;
        let mut total_flops = 0.0_f64;
        let mut total_bytes = 0.0_f64;
        let mut total_ctas = 0usize;
        let mut op_classes: BTreeMap<OpClass, OpClassReport> = BTreeMap::new();

        loop {
            self.fill(
                &mut streams,
                &mut head_kernel,
                &mut kernels,
                &mut sms,
                &mut executing,
                &mut op_classes,
                &mut total_ctas,
                time,
                &mut cursor,
            )?;

            // Kernels with zero CTAs (or whose CTAs were all instantly
            // complete) finish without ever executing; pop them so the next
            // kernel in their stream can start.
            if Self::pop_finished(&mut streams, &mut head_kernel, &kernels) {
                continue;
            }

            if executing.is_empty() {
                if streams.iter().all(Stream::is_empty) {
                    break;
                }
                // Work remains but nothing could be placed and nothing is
                // running: the configuration can never make progress.
                let name = streams
                    .iter()
                    .find_map(|s| s.head().map(|k| k.name.clone()))
                    .unwrap_or_else(|| "<unknown>".to_string());
                return Err(SimError::Stalled { kernel: name });
            }

            // --- compute the per-unit resource rates for this interval ---
            let sm_peak = self.gpu.sm_compute_flops();
            let compute_cap = self.opts.max_cta_compute_fraction * sm_peak;
            let mem_cap = self.opts.max_cta_bandwidth_fraction * self.gpu.hbm_bandwidth;

            let mut sm_compute_demand = vec![0usize; num_sms];
            let mut mem_demand = 0usize;
            for cta in &executing {
                for u in &cta.units {
                    if u.done {
                        continue;
                    }
                    if u.rem_flops > WORK_EPS {
                        sm_compute_demand[cta.sm] += 1;
                    }
                    if u.rem_bytes > WORK_EPS {
                        mem_demand += 1;
                    }
                }
            }
            for cta in &mut executing {
                let compute_share = if sm_compute_demand[cta.sm] > 0 {
                    (sm_peak / sm_compute_demand[cta.sm] as f64).min(compute_cap)
                } else {
                    0.0
                };
                let mem_share = if mem_demand > 0 {
                    (self.gpu.hbm_bandwidth / mem_demand as f64).min(mem_cap)
                } else {
                    0.0
                };
                for u in &mut cta.units {
                    u.compute_rate = if !u.done && u.rem_flops > WORK_EPS {
                        compute_share
                    } else {
                        0.0
                    };
                    u.mem_rate = if !u.done && u.rem_bytes > WORK_EPS {
                        mem_share
                    } else {
                        0.0
                    };
                }
            }

            // --- find the length of this interval ---
            let mut dt = f64::INFINITY;
            for cta in &executing {
                for u in &cta.units {
                    if u.done {
                        continue;
                    }
                    if u.rem_flops > WORK_EPS && u.compute_rate > 0.0 {
                        dt = dt.min(u.rem_flops / u.compute_rate);
                    }
                    if u.rem_bytes > WORK_EPS && u.mem_rate > 0.0 {
                        dt = dt.min(u.rem_bytes / u.mem_rate);
                    }
                    if let Some(tail) = u.tail {
                        if u.rem_flops <= WORK_EPS && u.rem_bytes <= WORK_EPS && tail > TIME_EPS {
                            dt = dt.min(tail);
                        }
                    }
                }
            }
            if !dt.is_finite() {
                // Only instantly-complete CTAs remain; retire them below.
                dt = 0.0;
            }

            // --- advance every unit by dt ---
            let mut interval_flops = 0.0;
            let mut interval_bytes = 0.0;
            for cta in &mut executing {
                for u in &mut cta.units {
                    if u.done {
                        continue;
                    }
                    let had_tail = u.tail.is_some();
                    if u.rem_flops > WORK_EPS {
                        let df = (u.compute_rate * dt).min(u.rem_flops);
                        u.rem_flops -= df;
                        u.busy_compute += dt;
                        interval_flops += df;
                        kernels[cta.kernel_id].flops += df;
                        op_classes.entry(u.op).or_default().flops += df;
                        if u.rem_flops <= WORK_EPS {
                            u.rem_flops = 0.0;
                        }
                    }
                    if u.rem_bytes > WORK_EPS {
                        let db = (u.mem_rate * dt).min(u.rem_bytes);
                        u.rem_bytes -= db;
                        u.busy_memory += dt;
                        interval_bytes += db;
                        kernels[cta.kernel_id].bytes += db;
                        op_classes.entry(u.op).or_default().bytes += db;
                        if u.rem_bytes <= WORK_EPS {
                            u.rem_bytes = 0.0;
                        }
                    }
                    if u.rem_flops <= WORK_EPS && u.rem_bytes <= WORK_EPS {
                        match u.tail {
                            None => {
                                // Both streams just drained: charge the
                                // barrier-induced serial tail.
                                u.tail = Some(
                                    u.serial_fraction * u.busy_compute.min(u.busy_memory),
                                );
                            }
                            Some(t) if had_tail => {
                                u.tail = Some((t - dt).max(0.0));
                            }
                            Some(_) => {}
                        }
                        if u.tail.unwrap_or(0.0) <= TIME_EPS {
                            u.done = true;
                        }
                    }
                }
            }
            time += dt;
            energy += energy_model.interval_energy(dt, interval_flops, interval_bytes);
            total_flops += interval_flops;
            total_bytes += interval_bytes;

            // --- record per-class finish times and retire completed CTAs ---
            let mut i = 0;
            while i < executing.len() {
                if executing[i].is_complete() {
                    let cta = executing.swap_remove(i);
                    sms[cta.sm].release(&cta.footprint, cta.kernel_id);
                    let ks = &mut kernels[cta.kernel_id];
                    ks.completed += 1;
                    ks.end = time;
                    let entry = op_classes.entry(cta.dominant_op).or_default();
                    entry.finish_time = entry.finish_time.max(time);
                } else {
                    i += 1;
                }
            }

            // --- pop finished kernels off their streams ---
            Self::pop_finished(&mut streams, &mut head_kernel, &kernels);
        }

        let kernel_reports = kernels
            .into_iter()
            .map(|k| KernelReport {
                name: k.name,
                start: k.start.unwrap_or(0.0),
                end: k.end,
                ctas: k.dispatched,
                flops: k.flops,
                bytes: k.bytes,
            })
            .collect();

        Ok(ExecutionReport {
            makespan: time,
            total_flops,
            total_bytes,
            energy_joules: energy,
            kernels: kernel_reports,
            op_classes,
            peak_flops: self.gpu.tensor_flops,
            peak_bandwidth: self.gpu.hbm_bandwidth,
            total_ctas,
        })
    }

    /// Pop every stream whose head kernel has fully dispatched and completed
    /// all of its CTAs. Returns true if any kernel was popped.
    fn pop_finished(
        streams: &mut [Stream],
        head_kernel: &mut [Option<usize>],
        kernels: &[KernelState],
    ) -> bool {
        let mut popped = false;
        for (si, stream) in streams.iter_mut().enumerate() {
            if let Some(kid) = head_kernel[si] {
                let ks = &kernels[kid];
                if ks.fully_dispatched && ks.completed == ks.dispatched {
                    stream.pop_head();
                    head_kernel[si] = None;
                    popped = true;
                }
            }
        }
        popped
    }

    /// Activate stream heads and place as many pending CTAs as fit, in
    /// submission-priority order, breadth-first across SMs.
    #[allow(clippy::too_many_arguments)]
    fn fill(
        &self,
        streams: &mut [Stream],
        head_kernel: &mut [Option<usize>],
        kernels: &mut Vec<KernelState>,
        sms: &mut [SmState],
        executing: &mut Vec<ExecCta>,
        op_classes: &mut BTreeMap<OpClass, OpClassReport>,
        total_ctas: &mut usize,
        time: f64,
        cursor: &mut usize,
    ) -> Result<(), SimError> {
        let num_sms = self.gpu.num_sms;

        // Activate the head kernel of every stream that does not have one.
        for si in 0..streams.len() {
            if head_kernel[si].is_some() {
                continue;
            }
            if let Some(head) = streams[si].head() {
                if self
                    .gpu
                    .occupancy(head.footprint.shared_mem, head.footprint.threads)
                    == 0
                {
                    return Err(SimError::CtaTooLarge {
                        kernel: head.name.clone(),
                        shared_mem: head.footprint.shared_mem,
                        threads: head.footprint.threads,
                    });
                }
                if head.max_ctas_per_sm == Some(0) && head.remaining() > 0 {
                    return Err(SimError::Stalled {
                        kernel: head.name.clone(),
                    });
                }
                kernels.push(KernelState {
                    name: head.name.clone(),
                    footprint: head.footprint,
                    cap: head.max_ctas_per_sm,
                    dispatched: 0,
                    completed: 0,
                    fully_dispatched: head.remaining() == 0,
                    start: None,
                    end: time,
                    flops: 0.0,
                    bytes: 0.0,
                });
                head_kernel[si] = Some(kernels.len() - 1);
            }
        }

        // Placement: streams are visited in submission order and each head
        // kernel places as many CTAs as currently fit — breadth-first across
        // SMs, one per SM per pass — before the next stream gets a chance.
        // This mirrors the hardware CTA scheduler's launch-order priority:
        // a later kernel only receives SMs the earlier kernels left idle,
        // which is why CUDA streams alone do not guarantee SM-level
        // co-location (§3.1 of the paper).
        for si in 0..streams.len() {
            let Some(kid) = head_kernel[si] else { continue };
            if kernels[kid].fully_dispatched {
                continue;
            }
            let footprint = kernels[kid].footprint;
            let cap = kernels[kid].cap;
            let head = streams[si]
                .head_mut()
                .expect("active head kernel missing from stream");
            loop {
                let mut placed_any = false;
                for off in 0..num_sms {
                    if head.remaining() == 0 {
                        break;
                    }
                    let sm_id = (*cursor + off) % num_sms;
                    if sms[sm_id].can_fit(&self.gpu, &footprint, kid, cap) {
                        let work: CtaWork = head.dispatcher.dispatch(sm_id);
                        sms[sm_id].allocate(&footprint, kid);
                        let dominant = work.dominant_op();
                        op_classes.entry(dominant).or_default().ctas += 1;
                        let units = work.units.iter().map(UnitState::new).collect();
                        executing.push(ExecCta {
                            kernel_id: kid,
                            sm: sm_id,
                            footprint,
                            units,
                            dominant_op: dominant,
                        });
                        let ks = &mut kernels[kid];
                        ks.dispatched += 1;
                        *total_ctas += 1;
                        if ks.start.is_none() {
                            ks.start = Some(time);
                        }
                        placed_any = true;
                    }
                }
                *cursor = (*cursor + 1) % num_sms;
                if head.remaining() == 0 {
                    kernels[kid].fully_dispatched = true;
                    break;
                }
                if !placed_any {
                    break;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::WorkUnit;

    fn gpu() -> GpuConfig {
        GpuConfig::a100_80gb()
    }

    /// One wave of purely compute-bound CTAs should run at high compute
    /// utilization and take roughly total_flops / peak.
    #[test]
    fn compute_bound_kernel_saturates_compute() {
        let g = gpu();
        let per_cta = 1e9;
        let n = 216; // two CTAs per SM
        let kernel = KernelLaunch::from_ctas(
            "compute",
            Footprint::new(128, 64 * 1024),
            vec![CtaWork::single(OpClass::ComputeBound, per_cta, 1e3); n],
        );
        let report = Engine::new(g.clone()).run_kernel(kernel).unwrap();
        let ideal = n as f64 * per_cta / g.tensor_flops;
        assert!(report.makespan >= ideal);
        assert!(report.makespan < ideal * 1.3, "makespan {} vs ideal {}", report.makespan, ideal);
        assert!(report.compute_utilization() > 0.75);
        assert!(report.memory_utilization() < 0.05);
    }

    /// A memory-bound kernel with plenty of CTAs should saturate bandwidth.
    #[test]
    fn memory_bound_kernel_saturates_bandwidth() {
        let g = gpu();
        let per_cta_bytes = 20e6;
        let n = 216;
        let kernel = KernelLaunch::from_ctas(
            "memory",
            Footprint::new(128, 64 * 1024),
            vec![CtaWork::single(OpClass::MemoryBound, 1e3, per_cta_bytes); n],
        );
        let report = Engine::new(g.clone()).run_kernel(kernel).unwrap();
        let ideal = n as f64 * per_cta_bytes / g.hbm_bandwidth;
        assert!(report.makespan >= ideal);
        assert!(report.makespan < ideal * 1.3);
        assert!(report.memory_utilization() > 0.75);
        assert!(report.compute_utilization() < 0.05);
    }

    /// Serial execution of a compute-bound and a memory-bound kernel takes
    /// roughly the sum; running them fused with SM co-location approaches the
    /// max. This is the core premise of the paper.
    #[test]
    fn colocated_fusion_beats_serial() {
        let g = gpu();
        let compute_ctas =
            vec![CtaWork::single(OpClass::ComputeBound, 2e9, 1e3); 108];
        let memory_ctas =
            vec![CtaWork::single(OpClass::MemoryBound, 1e3, 40e6); 108];
        let fp = Footprint::new(128, 64 * 1024);

        let engine = Engine::new(g);
        let serial = engine
            .run_serial(vec![
                KernelLaunch::from_ctas("c", fp, compute_ctas.clone()),
                KernelLaunch::from_ctas("m", fp, memory_ctas.clone()),
            ])
            .unwrap();

        // Fused: all compute CTAs followed by all memory CTAs in one kernel.
        // Breadth-first placement then gives every SM one CTA of each kind,
        // i.e. guaranteed SM-level co-location.
        let mut fused = Vec::new();
        fused.extend(compute_ctas.iter().cloned());
        fused.extend(memory_ctas.iter().cloned());
        let fused_report = engine
            .run_kernel(KernelLaunch::from_ctas("fused", fp, fused))
            .unwrap();

        assert!(
            fused_report.makespan < serial.makespan * 0.8,
            "fused {} vs serial {}",
            fused_report.makespan,
            serial.makespan
        );
    }

    /// Wave quantization: 217 CTAs at 2 CTAs/SM occupancy on 108 SMs needs a
    /// third wave for the single leftover CTA, so it takes measurably longer
    /// than 216 CTAs even though the extra work is negligible.
    #[test]
    fn wave_quantization_emerges() {
        let g = gpu();
        let fp = Footprint::new(128, 80 * 1024); // occupancy 2
        let make = |n: usize| {
            KernelLaunch::from_ctas(
                "k",
                fp,
                vec![CtaWork::single(OpClass::ComputeBound, 1e9, 1e3); n],
            )
        };
        let engine = Engine::new(g);
        let t216 = engine.run_kernel(make(216)).unwrap().makespan;
        let t217 = engine.run_kernel(make(217)).unwrap().makespan;
        assert!(
            t217 > t216 * 1.3,
            "expected wave quantization penalty: {t216} vs {t217}"
        );
    }

    /// Streams only overlap kernels when the first leaves SMs idle.
    #[test]
    fn streams_overlap_at_the_tail() {
        let g = gpu();
        let fp = Footprint::new(128, 80 * 1024);
        let a = vec![CtaWork::single(OpClass::ComputeBound, 1e9, 1e3); 220];
        let b = vec![CtaWork::single(OpClass::MemoryBound, 1e3, 30e6); 220];
        let engine = Engine::new(g);
        let serial = engine
            .run_serial(vec![
                KernelLaunch::from_ctas("a", fp, a.clone()),
                KernelLaunch::from_ctas("b", fp, b.clone()),
            ])
            .unwrap()
            .makespan;
        let streams = engine
            .run_concurrent(vec![
                KernelLaunch::from_ctas("a", fp, a),
                KernelLaunch::from_ctas("b", fp, b),
            ])
            .unwrap()
            .makespan;
        assert!(streams <= serial);
        // But the overlap is limited: far from the ideal max().
        assert!(streams > serial * 0.55);
    }

    /// A fused (multi-unit) CTA holds its resources until the slowest unit
    /// finishes — the straggler problem of warp-parallel fusion.
    #[test]
    fn fused_cta_straggler_holds_resources() {
        let g = gpu();
        let fp = Footprint::new(256, 100 * 1024); // occupancy 1
        // 108 fused CTAs: a fast memory unit + a slow compute unit.
        let fused: Vec<CtaWork> = (0..108)
            .map(|_| {
                CtaWork::fused(vec![
                    WorkUnit::new(OpClass::Prefill, 5e9, 1e3),
                    WorkUnit::new(OpClass::Decode, 1e3, 1e6),
                ])
            })
            .collect();
        // Followed by another compute kernel that must wait for stragglers.
        let tail = vec![CtaWork::single(OpClass::ComputeBound, 1e9, 1e3); 108];
        let engine = Engine::new(g.clone());
        let report = engine
            .run_serial(vec![
                KernelLaunch::from_ctas("fused", fp, fused),
                KernelLaunch::from_ctas("tail", fp, tail),
            ])
            .unwrap();
        // The fused kernel's duration is governed by the slow compute unit.
        let fused_k = report.kernel("fused").unwrap();
        let min_compute = 5e9 / (g.sm_compute_flops() * 0.9);
        assert!(fused_k.duration() >= min_compute * 0.99);
    }

    #[test]
    fn too_large_cta_is_an_error() {
        let g = gpu();
        let kernel = KernelLaunch::from_ctas(
            "huge",
            Footprint::new(128, 512 * 1024),
            vec![CtaWork::single(OpClass::Other, 1.0, 1.0)],
        );
        let err = Engine::new(g).run_kernel(kernel).unwrap_err();
        assert!(matches!(err, SimError::CtaTooLarge { .. }));
    }

    #[test]
    fn zero_cap_is_a_stall_error() {
        let g = gpu();
        let kernel = KernelLaunch::from_ctas(
            "capped",
            Footprint::new(128, 1024),
            vec![CtaWork::single(OpClass::Other, 1.0, 1.0)],
        )
        .limit_ctas_per_sm(0);
        let err = Engine::new(g).run_kernel(kernel).unwrap_err();
        assert!(matches!(err, SimError::Stalled { .. }));
    }

    #[test]
    fn empty_submission_finishes_instantly() {
        let g = gpu();
        let report = Engine::new(g).run(vec![Stream::new("empty")]).unwrap();
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.total_ctas, 0);
    }

    #[test]
    fn kernel_with_no_ctas_completes() {
        let g = gpu();
        let report = Engine::new(g)
            .run_kernel(KernelLaunch::from_ctas("noop", Footprint::default(), vec![]))
            .unwrap();
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.kernels.len(), 1);
    }

    #[test]
    fn work_is_conserved() {
        let g = gpu();
        let ctas = vec![CtaWork::single(OpClass::Prefill, 3e8, 4e5); 50];
        let expected_flops: f64 = ctas.iter().map(CtaWork::total_flops).sum();
        let expected_bytes: f64 = ctas.iter().map(CtaWork::total_bytes).sum();
        let report = Engine::new(g)
            .run_kernel(KernelLaunch::from_ctas("k", Footprint::default(), ctas))
            .unwrap();
        assert!((report.total_flops - expected_flops).abs() / expected_flops < 1e-6);
        assert!((report.total_bytes - expected_bytes).abs() / expected_bytes < 1e-6);
        assert_eq!(report.total_ctas, 50);
    }

    #[test]
    fn per_kernel_cap_reduces_concurrency() {
        let g = gpu();
        let fp = Footprint::new(128, 16 * 1024); // occupancy 10
        let ctas = vec![CtaWork::single(OpClass::ComputeBound, 1e9, 1e3); 216];
        let engine = Engine::new(g);
        let free = engine
            .run_kernel(KernelLaunch::from_ctas("free", fp, ctas.clone()))
            .unwrap()
            .makespan;
        let capped = engine
            .run_kernel(KernelLaunch::from_ctas("capped", fp, ctas).limit_ctas_per_sm(1))
            .unwrap()
            .makespan;
        // With a cap of 1 CTA/SM and a per-CTA compute cap below 100%, the
        // kernel cannot use the full SM, so it is slower.
        assert!(capped > free * 1.05);
    }

    #[test]
    fn serial_fraction_adds_tail_latency() {
        let g = gpu();
        let fp = Footprint::new(128, 64 * 1024);
        let pipelined = vec![CtaWork::single(OpClass::Other, 2e9, 20e6); 108];
        let serialized: Vec<CtaWork> = (0..108)
            .map(|_| CtaWork {
                units: vec![WorkUnit::new(OpClass::Other, 2e9, 20e6).with_serial_fraction(1.0)],
            })
            .collect();
        let engine = Engine::new(g);
        let t_pipe = engine
            .run_kernel(KernelLaunch::from_ctas("p", fp, pipelined))
            .unwrap()
            .makespan;
        let t_serial = engine
            .run_kernel(KernelLaunch::from_ctas("s", fp, serialized))
            .unwrap()
            .makespan;
        assert!(t_serial > t_pipe * 1.1, "{t_serial} vs {t_pipe}");
    }

    #[test]
    fn energy_increases_with_runtime() {
        let g = gpu();
        let fp = Footprint::default();
        let small = vec![CtaWork::single(OpClass::ComputeBound, 1e8, 1e3); 108];
        let large = vec![CtaWork::single(OpClass::ComputeBound, 1e10, 1e3); 108];
        let engine = Engine::new(g);
        let e_small = engine
            .run_kernel(KernelLaunch::from_ctas("s", fp, small))
            .unwrap()
            .energy_joules;
        let e_large = engine
            .run_kernel(KernelLaunch::from_ctas("l", fp, large))
            .unwrap()
            .energy_joules;
        assert!(e_large > e_small);
    }
}
