//! Work descriptors: the unit of execution the simulator schedules.
//!
//! A [`CtaWork`] describes everything the contention engine needs to know
//! about one Cooperative Thread Array: how many tensor-core FLOPs it issues,
//! how many bytes it moves to/from HBM, and which logical operation class it
//! belongs to (prefill attention, decode attention, a synthetic kernel, ...).
//!
//! A CTA may contain several [`WorkUnit`]s. All units of a CTA execute
//! concurrently (they model independent warps inside the CTA, as in
//! warp-parallel/HFuse fusion), and the CTA only releases its SM resources
//! when *every* unit has finished — which is exactly the straggler behaviour
//! the paper describes for warp-parallel fusion (§3.1).

/// Logical class of work a CTA (or work unit) performs.
///
/// The scheduler in POD-Attention and the utilization metrics both need to
/// distinguish prefill from decode work; the synthetic classes are used by
/// the §3.3 micro-benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Prefill (chunked prompt) attention.
    Prefill,
    /// Decode (auto-regressive) attention.
    Decode,
    /// Synthetic compute-bound kernel (Figure 7 micro-benchmark).
    ComputeBound,
    /// Synthetic memory-bound kernel (Figure 7 micro-benchmark).
    MemoryBound,
    /// Anything else (linear layers, reductions, ...).
    Other,
}

impl OpClass {
    /// Short human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Prefill => "prefill",
            OpClass::Decode => "decode",
            OpClass::ComputeBound => "compute",
            OpClass::MemoryBound => "memory",
            OpClass::Other => "other",
        }
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One independent stream of work inside a CTA.
///
/// Compute (`flops`) and memory (`bytes`) drain concurrently — the engine
/// models a well-pipelined kernel (double-buffered loads overlapping tensor
/// ops), so a unit finishes when *both* its compute and its memory work have
/// drained. `serial_fraction` models synchronization barriers that prevent
/// part of the shorter resource stream from being hidden behind the longer
/// one (used by the intra-thread fusion model of §3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkUnit {
    /// Tensor-core FLOPs this unit issues.
    pub flops: f64,
    /// Bytes this unit moves to or from HBM.
    pub bytes: f64,
    /// Operation class, for metrics and runtime operation binding.
    pub op: OpClass,
    /// Fraction (0.0..=1.0) of the *shorter* resource stream that cannot be
    /// overlapped with the longer one due to CTA-level barriers. 0.0 means a
    /// perfectly pipelined kernel; 1.0 means compute and memory strictly
    /// serialize.
    pub serial_fraction: f64,
}

impl WorkUnit {
    /// A new fully-pipelined work unit.
    ///
    /// # Panics
    ///
    /// Panics if `flops` or `bytes` is negative or not finite.
    pub fn new(op: OpClass, flops: f64, bytes: f64) -> Self {
        assert!(
            flops.is_finite() && flops >= 0.0,
            "flops must be non-negative"
        );
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "bytes must be non-negative"
        );
        WorkUnit {
            flops,
            bytes,
            op,
            serial_fraction: 0.0,
        }
    }

    /// Set the serial (non-overlappable) fraction, clamped to `[0, 1]`.
    pub fn with_serial_fraction(mut self, f: f64) -> Self {
        self.serial_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// True if this unit has no work at all.
    pub fn is_empty(&self) -> bool {
        self.flops <= 0.0 && self.bytes <= 0.0
    }
}

/// Resource footprint of a CTA: what the hardware CTA scheduler must reserve
/// on an SM before the CTA can begin executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Footprint {
    /// Threads per CTA.
    pub threads: usize,
    /// Shared memory (bytes) per CTA.
    pub shared_mem: usize,
    /// Registers per thread.
    pub registers_per_thread: usize,
}

impl Footprint {
    /// A new footprint with the given thread count and shared-memory size and
    /// a typical register usage of 64 registers per thread.
    pub fn new(threads: usize, shared_mem: usize) -> Self {
        Footprint {
            threads,
            shared_mem,
            registers_per_thread: 64,
        }
    }
}

impl Default for Footprint {
    fn default() -> Self {
        Footprint::new(128, 48 * 1024)
    }
}

/// The work performed by one CTA.
///
/// # Examples
///
/// ```
/// use gpu_sim::{CtaWork, OpClass, WorkUnit};
///
/// // A prefill attention CTA: 50 MFLOP of tensor work, 1 MiB of HBM traffic.
/// let cta = CtaWork::single(OpClass::Prefill, 50e6, 1.0 * 1024.0 * 1024.0);
/// assert_eq!(cta.total_flops(), 50e6);
/// assert_eq!(cta.dominant_op(), OpClass::Prefill);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CtaWork {
    /// Independent work units (warp groups) executing inside this CTA.
    pub units: Vec<WorkUnit>,
}

impl CtaWork {
    /// A CTA with a single work unit.
    pub fn single(op: OpClass, flops: f64, bytes: f64) -> Self {
        CtaWork {
            units: vec![WorkUnit::new(op, flops, bytes)],
        }
    }

    /// A CTA composed of several concurrently-executing units (e.g. an HFuse
    /// CTA with prefill warps and decode warps).
    ///
    /// # Panics
    ///
    /// Panics if `units` is empty.
    pub fn fused(units: Vec<WorkUnit>) -> Self {
        assert!(
            !units.is_empty(),
            "a CTA must contain at least one work unit"
        );
        CtaWork { units }
    }

    /// An empty CTA that finishes immediately (useful as a no-op filler).
    pub fn empty(op: OpClass) -> Self {
        CtaWork::single(op, 0.0, 0.0)
    }

    /// Sum of tensor FLOPs across all units.
    pub fn total_flops(&self) -> f64 {
        self.units.iter().map(|u| u.flops).sum()
    }

    /// Sum of HBM bytes across all units.
    pub fn total_bytes(&self) -> f64 {
        self.units.iter().map(|u| u.bytes).sum()
    }

    /// The operation class contributing the most combined work, used for
    /// per-class reporting. Ties resolve to the first unit's class.
    pub fn dominant_op(&self) -> OpClass {
        let mut best = self.units[0].op;
        let mut best_score = f64::MIN;
        for u in &self.units {
            let score = u.flops + u.bytes;
            if score > best_score {
                best_score = score;
                best = u.op;
            }
        }
        best
    }

    /// Lower bound on this CTA's execution time (seconds) if it had exclusive
    /// access to one SM's compute and an equal per-SM share of HBM bandwidth.
    pub fn isolated_time(&self, sm_flops: f64, sm_bandwidth: f64) -> f64 {
        self.units
            .iter()
            .map(|u| {
                let tc = u.flops / sm_flops;
                let tm = u.bytes / sm_bandwidth;
                tc.max(tm) + u.serial_fraction * tc.min(tm)
            })
            .fold(0.0_f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unit_totals() {
        let cta = CtaWork::single(OpClass::Decode, 1e6, 2e6);
        assert_eq!(cta.total_flops(), 1e6);
        assert_eq!(cta.total_bytes(), 2e6);
        assert_eq!(cta.dominant_op(), OpClass::Decode);
    }

    #[test]
    fn fused_totals_and_dominant_op() {
        let cta = CtaWork::fused(vec![
            WorkUnit::new(OpClass::Prefill, 10e6, 1e3),
            WorkUnit::new(OpClass::Decode, 1e3, 1e6),
        ]);
        assert!((cta.total_flops() - 10.001e6).abs() < 1.0);
        assert_eq!(cta.dominant_op(), OpClass::Prefill);
    }

    #[test]
    #[should_panic(expected = "at least one work unit")]
    fn fused_rejects_empty() {
        let _ = CtaWork::fused(vec![]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn unit_rejects_negative_flops() {
        let _ = WorkUnit::new(OpClass::Other, -1.0, 0.0);
    }

    #[test]
    fn serial_fraction_is_clamped() {
        let u = WorkUnit::new(OpClass::Other, 1.0, 1.0).with_serial_fraction(3.0);
        assert_eq!(u.serial_fraction, 1.0);
        let u = WorkUnit::new(OpClass::Other, 1.0, 1.0).with_serial_fraction(-1.0);
        assert_eq!(u.serial_fraction, 0.0);
    }

    #[test]
    fn isolated_time_is_roofline() {
        let cta = CtaWork::single(OpClass::Prefill, 100.0, 10.0);
        // compute-bound: 100 flops at 10 flop/s = 10 s vs 10 bytes at 10 B/s = 1 s.
        assert!((cta.isolated_time(10.0, 10.0) - 10.0).abs() < 1e-12);
        // serial fraction adds the hidden part back.
        let cta2 = CtaWork {
            units: vec![WorkUnit::new(OpClass::Prefill, 100.0, 10.0).with_serial_fraction(1.0)],
        };
        assert!((cta2.isolated_time(10.0, 10.0) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn op_class_labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = [
            OpClass::Prefill,
            OpClass::Decode,
            OpClass::ComputeBound,
            OpClass::MemoryBound,
            OpClass::Other,
        ]
        .iter()
        .map(|o| o.label())
        .collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn empty_cta_is_empty() {
        let cta = CtaWork::empty(OpClass::Other);
        assert_eq!(cta.total_flops(), 0.0);
        assert!(cta.units[0].is_empty());
    }
}
