//! Kernel launches and CTA dispatchers.
//!
//! A [`KernelLaunch`] is what a host program submits to a [`crate::Stream`]:
//! a uniform per-CTA resource [`Footprint`] plus a [`CtaDispatcher`] that
//! hands out the actual work each CTA performs *at the moment the hardware
//! scheduler places it on an SM*.
//!
//! Ordinary kernels ignore the SM they land on ([`ListDispatcher`]); the
//! POD-Attention kernel implements *SM-aware CTA scheduling* (runtime
//! operation binding, §4.1 of the paper) by inspecting the SM id and its own
//! software counters inside [`CtaDispatcher::dispatch`].

use crate::work::{CtaWork, Footprint};

/// Decides, at dispatch time, what work the next CTA of a kernel performs.
///
/// Implementations are driven by the simulated hardware CTA scheduler: every
/// time it places a CTA of this kernel onto an SM it calls
/// [`dispatch`](CtaDispatcher::dispatch) with the SM index, mirroring how a
/// real CTA can read the `%smid` special register after launch.
pub trait CtaDispatcher {
    /// Number of CTAs this kernel still has to launch.
    fn remaining(&self) -> usize;

    /// Produce the work for the next CTA, given the SM it was placed on.
    ///
    /// Called exactly `remaining()` times over the lifetime of the kernel.
    /// Implementations may use `sm_id` and internal counters to perform
    /// runtime operation binding.
    fn dispatch(&mut self, sm_id: usize) -> CtaWork;
}

/// A dispatcher that hands out a fixed list of CTAs in order, ignoring which
/// SM each CTA lands on. This models every ordinary CUDA kernel, where CTA
/// `i` always performs the work statically associated with `blockIdx == i`.
#[derive(Debug, Clone)]
pub struct ListDispatcher {
    ctas: std::collections::VecDeque<CtaWork>,
}

impl ListDispatcher {
    /// Create a dispatcher over a pre-built CTA work list.
    pub fn new(ctas: Vec<CtaWork>) -> Self {
        ListDispatcher { ctas: ctas.into() }
    }
}

impl CtaDispatcher for ListDispatcher {
    fn remaining(&self) -> usize {
        self.ctas.len()
    }

    fn dispatch(&mut self, _sm_id: usize) -> CtaWork {
        self.ctas
            .pop_front()
            .expect("dispatch called on an exhausted ListDispatcher")
    }
}

/// A single kernel launch: a grid of CTAs with a uniform resource footprint.
pub struct KernelLaunch {
    /// Name used in reports (e.g. `"fa2_prefill"`).
    pub name: String,
    /// Per-CTA resources reserved by the hardware scheduler.
    pub footprint: Footprint,
    /// Source of per-CTA work, consulted at placement time.
    pub dispatcher: Box<dyn CtaDispatcher>,
    /// Optional software cap on resident CTAs per SM (used by POD-Attention's
    /// 2-vs-4 CTAs-per-SM configurations and by persistent-thread kernels).
    /// `None` means only the hardware occupancy limits apply.
    pub max_ctas_per_sm: Option<usize>,
}

impl KernelLaunch {
    /// Launch a kernel over an explicit list of CTAs.
    pub fn from_ctas(name: &str, footprint: Footprint, ctas: Vec<CtaWork>) -> Self {
        KernelLaunch {
            name: name.to_string(),
            footprint,
            dispatcher: Box::new(ListDispatcher::new(ctas)),
            max_ctas_per_sm: None,
        }
    }

    /// Launch a kernel with a custom dispatcher (e.g. POD-Attention's
    /// SM-aware scheduler).
    pub fn with_dispatcher(
        name: &str,
        footprint: Footprint,
        dispatcher: Box<dyn CtaDispatcher>,
    ) -> Self {
        KernelLaunch {
            name: name.to_string(),
            footprint,
            dispatcher,
            max_ctas_per_sm: None,
        }
    }

    /// Cap the number of CTAs of this kernel resident on one SM.
    pub fn limit_ctas_per_sm(mut self, limit: usize) -> Self {
        self.max_ctas_per_sm = Some(limit);
        self
    }

    /// CTAs not yet dispatched.
    pub fn remaining(&self) -> usize {
        self.dispatcher.remaining()
    }
}

impl std::fmt::Debug for KernelLaunch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelLaunch")
            .field("name", &self.name)
            .field("footprint", &self.footprint)
            .field("remaining", &self.remaining())
            .field("max_ctas_per_sm", &self.max_ctas_per_sm)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::OpClass;

    #[test]
    fn list_dispatcher_preserves_order() {
        let ctas = vec![
            CtaWork::single(OpClass::Prefill, 1.0, 0.0),
            CtaWork::single(OpClass::Decode, 2.0, 0.0),
        ];
        let mut d = ListDispatcher::new(ctas);
        assert_eq!(d.remaining(), 2);
        assert_eq!(d.dispatch(5).total_flops(), 1.0);
        assert_eq!(d.dispatch(7).total_flops(), 2.0);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn list_dispatcher_panics_when_exhausted() {
        let mut d = ListDispatcher::new(vec![]);
        let _ = d.dispatch(0);
    }

    #[test]
    fn kernel_launch_reports_remaining() {
        let k = KernelLaunch::from_ctas(
            "k",
            Footprint::new(128, 1024),
            vec![CtaWork::single(OpClass::Other, 1.0, 1.0); 7],
        );
        assert_eq!(k.remaining(), 7);
        assert_eq!(k.name, "k");
        assert!(k.max_ctas_per_sm.is_none());
    }

    #[test]
    fn limit_ctas_per_sm_is_recorded() {
        let k =
            KernelLaunch::from_ctas("k", Footprint::new(128, 1024), vec![]).limit_ctas_per_sm(2);
        assert_eq!(k.max_ctas_per_sm, Some(2));
    }

    #[test]
    fn debug_output_is_nonempty() {
        let k = KernelLaunch::from_ctas("dbg", Footprint::default(), vec![]);
        let s = format!("{k:?}");
        assert!(s.contains("dbg"));
    }
}
