//! # gpu-sim: a discrete-event GPU execution simulator
//!
//! This crate is the hardware substrate for the POD-Attention reproduction.
//! The paper evaluates a CUDA kernel on NVIDIA A100 GPUs; this environment
//! has no GPU, so the evaluation runs against a simulator that reproduces
//! the execution mechanics the paper's argument rests on:
//!
//! * **SMs and occupancy** — CTAs reserve shared memory, threads and
//!   registers on a streaming multiprocessor; how many fit determines wave
//!   sizes and wave quantization.
//! * **The hardware CTA scheduler** — pending CTAs of the head kernel of each
//!   stream are placed breadth-first onto SMs whenever resources free up;
//!   kernels in different streams overlap only when the earlier kernel
//!   leaves resources idle (no SM-level co-location guarantee).
//! * **Roofline contention** — resident CTAs share their SM's tensor-core
//!   throughput and the device's HBM bandwidth; compute-bound and
//!   memory-bound CTAs co-located on an SM overlap their resource usage,
//!   which is precisely the effect POD-Attention exploits.
//! * **Runtime operation binding** — a kernel's [`CtaDispatcher`] decides
//!   what work each CTA performs *after* the scheduler has placed it on a
//!   specific SM, enabling the paper's SM-aware CTA scheduling (§4.1).
//!
//! # Quick example
//!
//! ```
//! use gpu_sim::{CtaWork, Engine, Footprint, GpuConfig, KernelLaunch, OpClass};
//!
//! let gpu = GpuConfig::a100_80gb();
//! let engine = Engine::new(gpu);
//!
//! // A toy kernel: 216 CTAs, each doing 1 GFLOP of tensor work.
//! let kernel = KernelLaunch::from_ctas(
//!     "toy",
//!     Footprint::new(128, 64 * 1024),
//!     vec![CtaWork::single(OpClass::ComputeBound, 1e9, 1e4); 216],
//! );
//!
//! let report = engine.run_kernel(kernel)?;
//! println!("runtime: {:.3} ms, compute util {:.0}%",
//!          report.makespan * 1e3, report.compute_utilization() * 100.0);
//! # Ok::<(), gpu_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;
mod error;
mod kernel;
mod metrics;
mod sm;
mod stream;
mod work;

pub use config::{GpuConfig, GpuConfigBuilder};
pub use engine::{Engine, EngineOptions};
pub use error::SimError;
pub use kernel::{CtaDispatcher, KernelLaunch, ListDispatcher};
pub use metrics::{EnergyModel, ExecutionReport, KernelReport, OpClassReport};
pub use stream::Stream;
pub use work::{CtaWork, Footprint, OpClass, WorkUnit};
