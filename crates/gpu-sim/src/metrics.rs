//! Execution reports: runtime, utilization, energy and per-kernel breakdowns.

use crate::config::GpuConfig;
use crate::work::OpClass;
use std::collections::BTreeMap;

/// Summary of one kernel launch inside an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Kernel name as given at launch.
    pub name: String,
    /// Simulation time at which the first CTA of the kernel started.
    pub start: f64,
    /// Simulation time at which the last CTA of the kernel finished.
    pub end: f64,
    /// Number of CTAs executed.
    pub ctas: usize,
    /// Total tensor FLOPs performed by the kernel.
    pub flops: f64,
    /// Total HBM bytes moved by the kernel.
    pub bytes: f64,
}

impl KernelReport {
    /// Wall-clock duration of the kernel (first CTA start to last CTA end).
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Per-operation-class aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpClassReport {
    /// Tensor FLOPs performed by work units of this class.
    pub flops: f64,
    /// HBM bytes moved by work units of this class.
    pub bytes: f64,
    /// Number of CTAs whose dominant class this is.
    pub ctas: usize,
    /// Time at which the last unit of this class finished.
    pub finish_time: f64,
}

/// Result of simulating one submission of streams on the GPU.
///
/// # Examples
///
/// ```
/// use gpu_sim::{CtaWork, Engine, Footprint, GpuConfig, KernelLaunch, OpClass, Stream};
///
/// let gpu = GpuConfig::a100_80gb();
/// let kernel = KernelLaunch::from_ctas(
///     "toy",
///     Footprint::new(128, 32 * 1024),
///     vec![CtaWork::single(OpClass::Other, 1e9, 1e6); 108],
/// );
/// let report = Engine::new(gpu).run(vec![Stream::with_kernel("s0", kernel)])?;
/// assert!(report.makespan > 0.0);
/// assert!(report.compute_utilization() <= 1.0);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Total simulated wall-clock time (seconds).
    pub makespan: f64,
    /// Total tensor FLOPs performed.
    pub total_flops: f64,
    /// Total HBM bytes moved.
    pub total_bytes: f64,
    /// Estimated energy consumed (joules) using the activity-based model.
    pub energy_joules: f64,
    /// Per-kernel summaries, in completion order.
    pub kernels: Vec<KernelReport>,
    /// Per-operation-class aggregates.
    pub op_classes: BTreeMap<OpClass, OpClassReport>,
    /// Peak tensor throughput of the device this ran on (FLOP/s).
    pub peak_flops: f64,
    /// Peak HBM bandwidth of the device this ran on (bytes/s).
    pub peak_bandwidth: f64,
    /// Total CTAs executed.
    pub total_ctas: usize,
    /// Number of variable-length simulation intervals the contention engine
    /// advanced through. The engine micro-benchmarks divide this by the
    /// wall-clock simulation time to report intervals/second.
    pub intervals: usize,
}

impl ExecutionReport {
    /// Average tensor-core utilization over the whole execution, in `[0, 1]`.
    pub fn compute_utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.total_flops / (self.makespan * self.peak_flops)
    }

    /// Average HBM bandwidth utilization over the whole execution, in `[0, 1]`.
    pub fn memory_utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.total_bytes / (self.makespan * self.peak_bandwidth)
    }

    /// Look up a kernel report by name (first match).
    pub fn kernel(&self, name: &str) -> Option<&KernelReport> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Statistics for one operation class, if any work of that class ran.
    pub fn op_class(&self, op: OpClass) -> Option<&OpClassReport> {
        self.op_classes.get(&op)
    }

    /// Average power draw (watts) over the execution.
    pub fn average_power(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.energy_joules / self.makespan
    }
}

/// Activity-based energy model (used for the §5.1 energy results).
///
/// Energy is integrated per simulation interval as
/// `static + compute_power * compute_activity + memory_power * memory_activity`,
/// where the activities are the fraction of peak FLOPs / bandwidth actually
/// used during that interval.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    compute_power_w: f64,
    memory_power_w: f64,
    static_power_w: f64,
    peak_flops: f64,
    peak_bandwidth: f64,
}

impl EnergyModel {
    /// Build the energy model for a device.
    pub fn new(gpu: &GpuConfig) -> Self {
        EnergyModel {
            compute_power_w: gpu.compute_power_w,
            memory_power_w: gpu.memory_power_w,
            static_power_w: gpu.static_power_w,
            peak_flops: gpu.tensor_flops,
            peak_bandwidth: gpu.hbm_bandwidth,
        }
    }

    /// Energy (joules) consumed during an interval of `dt` seconds in which
    /// `flops` tensor FLOPs were executed and `bytes` HBM bytes moved.
    pub fn interval_energy(&self, dt: f64, flops: f64, bytes: f64) -> f64 {
        if dt <= 0.0 {
            return 0.0;
        }
        let compute_activity = (flops / (self.peak_flops * dt)).min(1.0);
        let memory_activity = (bytes / (self.peak_bandwidth * dt)).min(1.0);
        dt * (self.static_power_w
            + self.compute_power_w * compute_activity
            + self.memory_power_w * memory_activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            makespan: 2.0,
            total_flops: 312e12,
            total_bytes: 2.039e12,
            energy_joules: 500.0,
            kernels: vec![KernelReport {
                name: "k".into(),
                start: 0.0,
                end: 2.0,
                ctas: 10,
                flops: 312e12,
                bytes: 2.039e12,
            }],
            op_classes: BTreeMap::new(),
            peak_flops: 312e12,
            peak_bandwidth: 2.039e12,
            total_ctas: 10,
            intervals: 3,
        }
    }

    #[test]
    fn utilization_is_fraction_of_peak() {
        let r = report();
        assert!((r.compute_utilization() - 0.5).abs() < 1e-12);
        assert!((r.memory_utilization() - 0.5).abs() < 1e-12);
        assert!((r.average_power() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_lookup_by_name() {
        let r = report();
        assert!(r.kernel("k").is_some());
        assert!(r.kernel("missing").is_none());
        assert!((r.kernel("k").unwrap().duration() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_makespan_yields_zero_utilization() {
        let mut r = report();
        r.makespan = 0.0;
        assert_eq!(r.compute_utilization(), 0.0);
        assert_eq!(r.memory_utilization(), 0.0);
        assert_eq!(r.average_power(), 0.0);
    }

    #[test]
    fn energy_model_static_plus_dynamic() {
        let gpu = GpuConfig::a100_80gb();
        let m = EnergyModel::new(&gpu);
        // Idle interval: only static power.
        let idle = m.interval_energy(1.0, 0.0, 0.0);
        assert!((idle - gpu.static_power_w).abs() < 1e-9);
        // Fully busy interval: static + compute + memory.
        let busy = m.interval_energy(1.0, gpu.tensor_flops, gpu.hbm_bandwidth);
        let expected = gpu.static_power_w + gpu.compute_power_w + gpu.memory_power_w;
        assert!((busy - expected).abs() < 1e-9);
        // Zero-length interval consumes nothing.
        assert_eq!(m.interval_energy(0.0, 1.0, 1.0), 0.0);
    }

    #[test]
    fn energy_model_clamps_activity() {
        let gpu = GpuConfig::a100_80gb();
        let m = EnergyModel::new(&gpu);
        let over = m.interval_energy(1.0, gpu.tensor_flops * 10.0, gpu.hbm_bandwidth * 10.0);
        let expected = gpu.static_power_w + gpu.compute_power_w + gpu.memory_power_w;
        assert!((over - expected).abs() < 1e-9);
    }
}
