//! Device configurations for the simulated GPU.
//!
//! The simulator is parameterized by a [`GpuConfig`] describing the
//! resources the paper's evaluation hardware (NVIDIA A100-80GB) exposes to a
//! kernel: number of streaming multiprocessors (SMs), peak tensor-core
//! throughput, HBM bandwidth, per-SM shared memory and thread/CTA occupancy
//! limits, plus a simple activity-based power model used for the energy
//! results in §5.1 of the paper.

/// Static description of a simulated GPU device.
///
/// Construct one with [`GpuConfig::a100_80gb`] (the paper's hardware) or via
/// [`GpuConfigBuilder`] for custom devices.
///
/// # Examples
///
/// ```
/// use gpu_sim::GpuConfig;
///
/// let gpu = GpuConfig::a100_80gb();
/// assert_eq!(gpu.num_sms, 108);
/// assert!(gpu.sm_compute_flops() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Peak FP16 tensor-core throughput for the whole device, in FLOP/s.
    pub tensor_flops: f64,
    /// Peak FP32 CUDA-core throughput for the whole device, in FLOP/s.
    pub cuda_core_flops: f64,
    /// Peak HBM bandwidth in bytes/s.
    pub hbm_bandwidth: f64,
    /// L2 cache capacity in bytes (used by kernel models to decide how much
    /// re-read traffic actually reaches HBM).
    pub l2_cache_bytes: usize,
    /// Usable shared memory per SM in bytes.
    pub shared_mem_per_sm: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident CTAs per SM.
    pub max_ctas_per_sm: usize,
    /// Register file size per SM (32-bit registers).
    pub registers_per_sm: usize,
    /// HBM capacity in bytes (used by the serving layer for KV-cache sizing).
    pub hbm_capacity: usize,
    /// Dynamic power drawn when the tensor pipelines are fully busy (watts).
    pub compute_power_w: f64,
    /// Dynamic power drawn when HBM is fully busy (watts).
    pub memory_power_w: f64,
    /// Static/idle power (watts).
    pub static_power_w: f64,
}

impl GpuConfig {
    /// The NVIDIA A100-80GB SXM configuration used throughout the paper.
    pub fn a100_80gb() -> Self {
        GpuConfig {
            name: "A100-80GB".to_string(),
            num_sms: 108,
            tensor_flops: 312e12,
            cuda_core_flops: 19.5e12,
            hbm_bandwidth: 2.039e12,
            l2_cache_bytes: 40 * 1024 * 1024,
            shared_mem_per_sm: 164 * 1024,
            max_threads_per_sm: 2048,
            max_ctas_per_sm: 32,
            registers_per_sm: 65536,
            hbm_capacity: 80 * 1024 * 1024 * 1024,
            // Activity-based power model: A100 SXM boards draw a large
            // baseline power (clocks, caches, HBM refresh) even when the
            // tensor pipes or DRAM are not fully busy, plus dynamic power
            // roughly proportional to tensor-core and HBM activity. These
            // splits reproduce the paper's observation that attention energy
            // savings track the runtime reduction of the fused kernel.
            compute_power_w: 160.0,
            memory_power_w: 80.0,
            static_power_w: 180.0,
        }
    }

    /// A builder seeded with the A100 configuration.
    pub fn builder() -> GpuConfigBuilder {
        GpuConfigBuilder::new()
    }

    /// Peak tensor-core throughput of a single SM, in FLOP/s.
    pub fn sm_compute_flops(&self) -> f64 {
        self.tensor_flops / self.num_sms as f64
    }

    /// Peak CUDA-core throughput of a single SM, in FLOP/s.
    pub fn sm_cuda_core_flops(&self) -> f64 {
        self.cuda_core_flops / self.num_sms as f64
    }

    /// Time (seconds) to execute `flops` tensor FLOPs at full device peak.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / self.tensor_flops
    }

    /// Time (seconds) to move `bytes` to/from HBM at full device bandwidth.
    pub fn memory_time(&self, bytes: f64) -> f64 {
        bytes / self.hbm_bandwidth
    }

    /// Maximum number of CTAs with the given footprint that can be resident
    /// on one SM simultaneously.
    ///
    /// Occupancy is the minimum over the shared-memory, thread and CTA-count
    /// limits; a CTA that does not fit at all yields zero.
    pub fn occupancy(&self, shared_mem: usize, threads: usize) -> usize {
        let by_smem = self
            .shared_mem_per_sm
            .checked_div(shared_mem)
            .unwrap_or(self.max_ctas_per_sm);
        let by_threads = self
            .max_threads_per_sm
            .checked_div(threads)
            .unwrap_or(self.max_ctas_per_sm);
        by_smem.min(by_threads).min(self.max_ctas_per_sm)
    }

    /// Total number of CTAs with the given footprint that can be resident on
    /// the whole device at once (one "wave" of CTA scheduling).
    pub fn wave_size(&self, shared_mem: usize, threads: usize) -> usize {
        self.occupancy(shared_mem, threads) * self.num_sms
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::a100_80gb()
    }
}

/// Builder for [`GpuConfig`], seeded with the A100-80GB values.
///
/// # Examples
///
/// ```
/// use gpu_sim::GpuConfig;
///
/// let small = GpuConfig::builder().num_sms(4).name("toy").build();
/// assert_eq!(small.num_sms, 4);
/// assert_eq!(small.name, "toy");
/// ```
#[derive(Debug, Clone)]
pub struct GpuConfigBuilder {
    cfg: GpuConfig,
}

impl GpuConfigBuilder {
    /// Create a builder seeded with [`GpuConfig::a100_80gb`].
    pub fn new() -> Self {
        GpuConfigBuilder {
            cfg: GpuConfig::a100_80gb(),
        }
    }

    /// Set the device name.
    pub fn name(mut self, name: &str) -> Self {
        self.cfg.name = name.to_string();
        self
    }

    /// Set the number of SMs.
    pub fn num_sms(mut self, n: usize) -> Self {
        self.cfg.num_sms = n;
        self
    }

    /// Set peak device tensor throughput in FLOP/s.
    pub fn tensor_flops(mut self, f: f64) -> Self {
        self.cfg.tensor_flops = f;
        self
    }

    /// Set peak device CUDA-core throughput in FLOP/s.
    pub fn cuda_core_flops(mut self, f: f64) -> Self {
        self.cfg.cuda_core_flops = f;
        self
    }

    /// Set peak HBM bandwidth in bytes/s.
    pub fn hbm_bandwidth(mut self, b: f64) -> Self {
        self.cfg.hbm_bandwidth = b;
        self
    }

    /// Set usable shared memory per SM in bytes.
    pub fn shared_mem_per_sm(mut self, b: usize) -> Self {
        self.cfg.shared_mem_per_sm = b;
        self
    }

    /// Set maximum resident threads per SM.
    pub fn max_threads_per_sm(mut self, t: usize) -> Self {
        self.cfg.max_threads_per_sm = t;
        self
    }

    /// Set maximum resident CTAs per SM.
    pub fn max_ctas_per_sm(mut self, c: usize) -> Self {
        self.cfg.max_ctas_per_sm = c;
        self
    }

    /// Set L2 capacity in bytes.
    pub fn l2_cache_bytes(mut self, b: usize) -> Self {
        self.cfg.l2_cache_bytes = b;
        self
    }

    /// Set HBM capacity in bytes.
    pub fn hbm_capacity(mut self, b: usize) -> Self {
        self.cfg.hbm_capacity = b;
        self
    }

    /// Finish building the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero SMs, zero bandwidth or
    /// zero compute throughput).
    pub fn build(self) -> GpuConfig {
        assert!(self.cfg.num_sms > 0, "GPU must have at least one SM");
        assert!(
            self.cfg.tensor_flops > 0.0,
            "tensor throughput must be positive"
        );
        assert!(
            self.cfg.hbm_bandwidth > 0.0,
            "HBM bandwidth must be positive"
        );
        self.cfg
    }
}

impl Default for GpuConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_has_expected_resources() {
        let gpu = GpuConfig::a100_80gb();
        assert_eq!(gpu.num_sms, 108);
        assert!((gpu.tensor_flops - 312e12).abs() < 1e6);
        assert!(gpu.shared_mem_per_sm >= 160 * 1024);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let gpu = GpuConfig::a100_80gb();
        // 80 KiB CTAs: exactly two fit in 164 KiB.
        assert_eq!(gpu.occupancy(80 * 1024, 128), 2);
        // 40 KiB CTAs: four fit.
        assert_eq!(gpu.occupancy(40 * 1024, 128), 4);
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let gpu = GpuConfig::a100_80gb();
        assert_eq!(gpu.occupancy(1024, 1024), 2);
    }

    #[test]
    fn occupancy_zero_when_cta_does_not_fit() {
        let gpu = GpuConfig::a100_80gb();
        assert_eq!(gpu.occupancy(200 * 1024, 128), 0);
    }

    #[test]
    fn wave_size_scales_with_sms() {
        let gpu = GpuConfig::builder().num_sms(10).build();
        assert_eq!(gpu.wave_size(80 * 1024, 128), 20);
    }

    #[test]
    fn builder_overrides_fields() {
        let gpu = GpuConfig::builder()
            .name("H100-like")
            .num_sms(132)
            .tensor_flops(989e12)
            .hbm_bandwidth(3.35e12)
            .build();
        assert_eq!(gpu.num_sms, 132);
        assert_eq!(gpu.name, "H100-like");
        assert!(gpu.sm_compute_flops() > GpuConfig::a100_80gb().sm_compute_flops());
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn builder_rejects_zero_sms() {
        let _ = GpuConfig::builder().num_sms(0).build();
    }

    #[test]
    fn compute_and_memory_time_are_linear() {
        let gpu = GpuConfig::a100_80gb();
        let t1 = gpu.compute_time(1e12);
        let t2 = gpu.compute_time(2e12);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
        let m1 = gpu.memory_time(1e9);
        let m2 = gpu.memory_time(3e9);
        assert!((m2 - 3.0 * m1).abs() < 1e-12);
    }

    #[test]
    fn default_is_a100() {
        assert_eq!(GpuConfig::default(), GpuConfig::a100_80gb());
    }
}
