//! Per-SM resource bookkeeping used by the simulated hardware CTA scheduler.

use crate::config::GpuConfig;
use crate::work::Footprint;
use std::collections::HashMap;

/// Tracks the resources currently reserved on one streaming multiprocessor.
#[derive(Debug, Clone, Default)]
pub(crate) struct SmState {
    /// Threads reserved by resident CTAs.
    pub used_threads: usize,
    /// Shared memory (bytes) reserved by resident CTAs.
    pub used_shared_mem: usize,
    /// Registers reserved by resident CTAs.
    pub used_registers: usize,
    /// Total resident CTAs.
    pub resident: usize,
    /// Resident CTAs per kernel id (for per-kernel occupancy caps).
    pub per_kernel: HashMap<usize, usize>,
}

impl SmState {
    /// Whether a CTA with footprint `fp` belonging to `kernel_id` (with an
    /// optional per-kernel residency cap) fits on this SM right now.
    pub fn can_fit(
        &self,
        gpu: &GpuConfig,
        fp: &Footprint,
        kernel_id: usize,
        kernel_cap: Option<usize>,
    ) -> bool {
        if self.resident + 1 > gpu.max_ctas_per_sm {
            return false;
        }
        if self.used_threads + fp.threads > gpu.max_threads_per_sm {
            return false;
        }
        if self.used_shared_mem + fp.shared_mem > gpu.shared_mem_per_sm {
            return false;
        }
        let regs = fp.threads * fp.registers_per_thread;
        if self.used_registers + regs > gpu.registers_per_sm {
            return false;
        }
        if let Some(cap) = kernel_cap {
            if self.per_kernel.get(&kernel_id).copied().unwrap_or(0) + 1 > cap {
                return false;
            }
        }
        true
    }

    /// Reserve resources for one CTA of `kernel_id`.
    pub fn allocate(&mut self, fp: &Footprint, kernel_id: usize) {
        self.used_threads += fp.threads;
        self.used_shared_mem += fp.shared_mem;
        self.used_registers += fp.threads * fp.registers_per_thread;
        self.resident += 1;
        *self.per_kernel.entry(kernel_id).or_insert(0) += 1;
    }

    /// Release resources held by one CTA of `kernel_id`.
    ///
    /// # Panics
    ///
    /// Panics if the SM does not actually hold a CTA of that kernel (which
    /// would indicate a bookkeeping bug in the engine).
    pub fn release(&mut self, fp: &Footprint, kernel_id: usize) {
        assert!(self.resident > 0, "releasing a CTA from an empty SM");
        self.used_threads -= fp.threads;
        self.used_shared_mem -= fp.shared_mem;
        self.used_registers -= fp.threads * fp.registers_per_thread;
        self.resident -= 1;
        let count = self
            .per_kernel
            .get_mut(&kernel_id)
            .expect("releasing a CTA of a kernel not resident on this SM");
        *count -= 1;
        if *count == 0 {
            self.per_kernel.remove(&kernel_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuConfig {
        GpuConfig::a100_80gb()
    }

    #[test]
    fn fits_until_shared_memory_exhausted() {
        let g = gpu();
        let fp = Footprint::new(128, 80 * 1024);
        let mut sm = SmState::default();
        assert!(sm.can_fit(&g, &fp, 0, None));
        sm.allocate(&fp, 0);
        assert!(sm.can_fit(&g, &fp, 0, None));
        sm.allocate(&fp, 0);
        // 2 * 80 KiB = 160 KiB used; a third 80 KiB CTA does not fit in 164 KiB.
        assert!(!sm.can_fit(&g, &fp, 0, None));
    }

    #[test]
    fn per_kernel_cap_is_enforced() {
        let g = gpu();
        let fp = Footprint::new(128, 16 * 1024);
        let mut sm = SmState::default();
        sm.allocate(&fp, 3);
        assert!(!sm.can_fit(&g, &fp, 3, Some(1)));
        // A different kernel is not affected by kernel 3's cap.
        assert!(sm.can_fit(&g, &fp, 4, Some(1)));
    }

    #[test]
    fn release_restores_capacity() {
        let g = gpu();
        let fp = Footprint::new(256, 80 * 1024);
        let mut sm = SmState::default();
        sm.allocate(&fp, 0);
        sm.allocate(&fp, 0);
        assert!(!sm.can_fit(&g, &fp, 0, None));
        sm.release(&fp, 0);
        assert!(sm.can_fit(&g, &fp, 0, None));
        sm.release(&fp, 0);
        assert_eq!(sm.resident, 0);
        assert_eq!(sm.used_shared_mem, 0);
        assert_eq!(sm.used_threads, 0);
        assert!(sm.per_kernel.is_empty());
    }

    #[test]
    fn thread_limit_is_enforced() {
        let g = gpu();
        let fp = Footprint::new(1024, 1024);
        let mut sm = SmState::default();
        sm.allocate(&fp, 0);
        sm.allocate(&fp, 0);
        // 2048 threads used, no more fit.
        assert!(!sm.can_fit(&g, &fp, 0, None));
    }

    #[test]
    #[should_panic(expected = "empty SM")]
    fn release_on_empty_sm_panics() {
        let mut sm = SmState::default();
        sm.release(&Footprint::new(128, 1024), 0);
    }
}
