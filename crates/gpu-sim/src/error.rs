//! Error types for the simulator.

/// Errors returned by [`crate::Engine::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A kernel's per-CTA resource footprint exceeds what a single SM offers,
    /// so not even one CTA can ever be scheduled.
    CtaTooLarge {
        /// Name of the offending kernel.
        kernel: String,
        /// Requested shared memory per CTA in bytes.
        shared_mem: usize,
        /// Requested threads per CTA.
        threads: usize,
    },
    /// The engine found work left to dispatch but could make no progress
    /// (this indicates an inconsistent launch configuration, e.g. a per-SM
    /// CTA cap of zero).
    Stalled {
        /// Name of the kernel that could not be scheduled.
        kernel: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CtaTooLarge {
                kernel,
                shared_mem,
                threads,
            } => write!(
                f,
                "kernel `{kernel}` requests {shared_mem} bytes of shared memory and {threads} threads per CTA, which exceeds a single SM's resources"
            ),
            SimError::Stalled { kernel } => write!(
                f,
                "kernel `{kernel}` has undispatched CTAs but the scheduler cannot place any (check per-SM CTA caps)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_kernel_name() {
        let e = SimError::CtaTooLarge {
            kernel: "huge".into(),
            shared_mem: 1 << 20,
            threads: 4096,
        };
        let msg = e.to_string();
        assert!(msg.contains("huge"));
        assert!(msg.contains("shared memory"));
        let s = SimError::Stalled { kernel: "k".into() };
        assert!(s.to_string().contains('k'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
