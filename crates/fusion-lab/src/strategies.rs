//! Generic concurrent-execution strategies over two heterogeneous operations
//! (§3 of the paper, Table 2 and Figure 7).
//!
//! Each strategy takes two operations — each described by a CTA work list and
//! a per-CTA footprint — and executes them on the simulated GPU:
//!
//! | Strategy | Guarantees co-location | Reduces wave quantization |
//! |---|---|---|
//! | Serial | – | – |
//! | Streams (kernel-parallel) | no | yes |
//! | CTA-parallel | no | yes |
//! | Warp-parallel (HFuse) | yes | no (stragglers) |
//! | Intra-thread | yes | no (barriers) |
//! | SM-aware CTA (ours) | yes | yes |

use gpu_sim::{
    CtaWork, Engine, ExecutionReport, Footprint, GpuConfig, KernelLaunch, SimError, WorkUnit,
};
use pod_attention::SmAwareScheduler;

/// One of the two operations being fused: a CTA work list plus the per-CTA
/// resources those CTAs need.
#[derive(Debug, Clone)]
pub struct Operation {
    /// Name used in reports.
    pub name: String,
    /// Per-CTA resource footprint.
    pub footprint: Footprint,
    /// The CTAs of the operation.
    pub ctas: Vec<CtaWork>,
}

impl Operation {
    /// Create an operation.
    pub fn new(name: &str, footprint: Footprint, ctas: Vec<CtaWork>) -> Self {
        Operation {
            name: name.to_string(),
            footprint,
            ctas,
        }
    }

    fn launch(&self) -> KernelLaunch {
        KernelLaunch::from_ctas(&self.name, self.footprint, self.ctas.clone())
    }

    fn total_flops(&self) -> f64 {
        self.ctas.iter().map(CtaWork::total_flops).sum()
    }

    fn total_bytes(&self) -> f64 {
        self.ctas.iter().map(CtaWork::total_bytes).sum()
    }
}

/// The concurrent-execution methods compared in the paper's case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionStrategy {
    /// Launch the two kernels back-to-back on one stream.
    Serial,
    /// Launch the two kernels on different CUDA streams.
    Streams,
    /// Fuse into one kernel whose CTAs are statically split between the two
    /// operations (no control over which SM runs what).
    CtaParallel,
    /// Fuse warp-parallel (HFuse): each fused CTA contains warps of both
    /// operations and holds its resources until the slower half finishes.
    WarpParallel,
    /// Fuse intra-thread: each thread interleaves instructions of both
    /// operations; CTA-level barriers limit how much can overlap.
    IntraThread,
    /// CTA-parallel fusion plus SM-aware CTA scheduling (POD-Attention's
    /// method): each CTA binds to an operation after placement, guaranteeing
    /// every SM runs a mix of both.
    SmAwareCta,
}

impl FusionStrategy {
    /// All strategies in presentation order.
    pub fn all() -> [FusionStrategy; 6] {
        [
            FusionStrategy::Serial,
            FusionStrategy::Streams,
            FusionStrategy::CtaParallel,
            FusionStrategy::WarpParallel,
            FusionStrategy::IntraThread,
            FusionStrategy::SmAwareCta,
        ]
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FusionStrategy::Serial => "Serial",
            FusionStrategy::Streams => "Streams",
            FusionStrategy::CtaParallel => "CTA",
            FusionStrategy::WarpParallel => "Warp (HFuse)",
            FusionStrategy::IntraThread => "Intra-thread",
            FusionStrategy::SmAwareCta => "SM-aware CTA",
        }
    }
}

impl std::fmt::Display for FusionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Fraction of the shorter resource stream that CTA-level barriers prevent
/// intra-thread fusion from overlapping (§3.3: barriers between every
/// operation leave only part of the iteration free to overlap).
const INTRA_THREAD_SERIAL_FRACTION: f64 = 0.7;

/// Executes two operations under a chosen fusion strategy.
#[derive(Debug, Clone)]
pub struct FusionExecutor {
    engine: Engine,
}

impl FusionExecutor {
    /// Create an executor for the given device.
    pub fn new(gpu: GpuConfig) -> Self {
        FusionExecutor {
            engine: Engine::new(gpu),
        }
    }

    /// The device this executor simulates.
    pub fn gpu(&self) -> &GpuConfig {
        self.engine.gpu()
    }

    /// Run operations `a` and `b` under `strategy` and return the execution
    /// report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a launch cannot be scheduled (e.g. a fused
    /// footprint that exceeds one SM).
    pub fn run(
        &self,
        a: &Operation,
        b: &Operation,
        strategy: FusionStrategy,
    ) -> Result<ExecutionReport, SimError> {
        match strategy {
            FusionStrategy::Serial => self.engine.run_serial(vec![a.launch(), b.launch()]),
            FusionStrategy::Streams => self.engine.run_concurrent(vec![a.launch(), b.launch()]),
            FusionStrategy::CtaParallel => {
                let mut ctas = a.ctas.clone();
                ctas.extend(b.ctas.iter().cloned());
                let fp = max_footprint(a.footprint, b.footprint);
                self.engine
                    .run_kernel(KernelLaunch::from_ctas("cta_parallel", fp, ctas))
            }
            FusionStrategy::WarpParallel => {
                let fused = fuse_operations_warp_parallel(a, b);
                self.engine.run_kernel(fused)
            }
            FusionStrategy::IntraThread => {
                let fused = fuse_intra_thread(a, b);
                self.engine.run_kernel(fused)
            }
            FusionStrategy::SmAwareCta => {
                let fp = max_footprint(a.footprint, b.footprint);
                let scheduler = SmAwareScheduler::new(
                    a.ctas.clone(),
                    b.ctas.clone(),
                    self.engine.gpu().num_sms,
                    1,
                    1,
                );
                self.engine.run_kernel(KernelLaunch::with_dispatcher(
                    "sm_aware_cta",
                    fp,
                    Box::new(scheduler),
                ))
            }
        }
    }

    /// Runtime (seconds) of the two operations under `strategy`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a launch cannot be scheduled.
    pub fn runtime(
        &self,
        a: &Operation,
        b: &Operation,
        strategy: FusionStrategy,
    ) -> Result<f64, SimError> {
        Ok(self.run(a, b, strategy)?.makespan)
    }

    /// The perfect-overlap oracle runtime: all compute at the device's peak,
    /// all memory at full bandwidth, whichever dominates.
    pub fn oracle(&self, a: &Operation, b: &Operation) -> f64 {
        let gpu = self.engine.gpu();
        let flops = a.total_flops() + b.total_flops();
        let bytes = a.total_bytes() + b.total_bytes();
        (flops / gpu.tensor_flops).max(bytes / gpu.hbm_bandwidth)
    }
}

fn max_footprint(a: Footprint, b: Footprint) -> Footprint {
    Footprint {
        threads: a.threads.max(b.threads),
        shared_mem: a.shared_mem.max(b.shared_mem),
        registers_per_thread: a.registers_per_thread.max(b.registers_per_thread),
    }
}

/// HFuse-style warp-parallel fusion: pair the i-th CTA of each operation into
/// one fused CTA whose resources are the *sum* of both and which completes
/// only when both halves finish.
pub fn fuse_operations_warp_parallel(a: &Operation, b: &Operation) -> KernelLaunch {
    let n = a.ctas.len().max(b.ctas.len());
    let mut fused = Vec::with_capacity(n);
    for i in 0..n {
        let mut units: Vec<WorkUnit> = Vec::new();
        if let Some(cta) = a.ctas.get(i) {
            units.extend(cta.units.iter().copied());
        }
        if let Some(cta) = b.ctas.get(i) {
            units.extend(cta.units.iter().copied());
        }
        fused.push(CtaWork::fused(units));
    }
    let fp = Footprint {
        threads: a.footprint.threads + b.footprint.threads,
        shared_mem: a.footprint.shared_mem + b.footprint.shared_mem,
        registers_per_thread: a
            .footprint
            .registers_per_thread
            .max(b.footprint.registers_per_thread),
    };
    KernelLaunch::from_ctas("hfuse", fp, fused)
}

/// Intra-thread fusion: each fused CTA interleaves the instructions of both
/// operations in every thread; barriers after each step serialize a large
/// fraction of the shorter resource stream.
fn fuse_intra_thread(a: &Operation, b: &Operation) -> KernelLaunch {
    let n = a.ctas.len().max(b.ctas.len());
    let mut fused = Vec::with_capacity(n);
    for i in 0..n {
        let mut flops = 0.0;
        let mut bytes = 0.0;
        let mut op = gpu_sim::OpClass::Other;
        if let Some(cta) = a.ctas.get(i) {
            flops += cta.total_flops();
            bytes += cta.total_bytes();
            op = cta.dominant_op();
        }
        if let Some(cta) = b.ctas.get(i) {
            flops += cta.total_flops();
            bytes += cta.total_bytes();
        }
        fused.push(CtaWork {
            units: vec![
                WorkUnit::new(op, flops, bytes).with_serial_fraction(INTRA_THREAD_SERIAL_FRACTION)
            ],
        });
    }
    let fp = max_footprint(a.footprint, b.footprint);
    KernelLaunch::from_ctas("intra_thread", fp, fused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{ComputeKernel, MemoryKernel};

    fn ops(compute_iters: usize) -> (Operation, Operation, FusionExecutor) {
        let gpu = GpuConfig::a100_80gb();
        let c = ComputeKernel::figure7(compute_iters, &gpu);
        let m = MemoryKernel::figure7(&gpu);
        (
            Operation::new("compute", c.footprint(), c.ctas()),
            Operation::new("memory", m.footprint(), m.ctas()),
            FusionExecutor::new(gpu),
        )
    }

    #[test]
    fn sm_aware_beats_serial_and_approaches_oracle() {
        let (a, b, exec) = ops(100);
        let serial = exec.runtime(&a, &b, FusionStrategy::Serial).unwrap();
        let sm_aware = exec.runtime(&a, &b, FusionStrategy::SmAwareCta).unwrap();
        let oracle = exec.oracle(&a, &b);
        assert!(
            sm_aware < serial * 0.8,
            "sm-aware {sm_aware} vs serial {serial}"
        );
        assert!(
            sm_aware >= oracle * 0.95,
            "sm-aware {sm_aware} below oracle {oracle}"
        );
        assert!(
            sm_aware < oracle * 1.6,
            "sm-aware {sm_aware} far from oracle {oracle}"
        );
    }

    #[test]
    fn strategy_ordering_matches_the_paper() {
        // At the balanced point, the methods that guarantee co-location
        // (SM-aware) should clearly beat those that do not (serial, CTA).
        let (a, b, exec) = ops(100);
        let serial = exec.runtime(&a, &b, FusionStrategy::Serial).unwrap();
        let cta = exec.runtime(&a, &b, FusionStrategy::CtaParallel).unwrap();
        let intra = exec.runtime(&a, &b, FusionStrategy::IntraThread).unwrap();
        let sm_aware = exec.runtime(&a, &b, FusionStrategy::SmAwareCta).unwrap();
        assert!(cta <= serial * 1.02);
        assert!(intra < serial);
        assert!(sm_aware < intra);
        assert!(sm_aware < cta);
    }

    #[test]
    fn streams_help_mainly_via_idle_sm_filling() {
        let (a, b, exec) = ops(100);
        let serial = exec.runtime(&a, &b, FusionStrategy::Serial).unwrap();
        let streams = exec.runtime(&a, &b, FusionStrategy::Streams).unwrap();
        assert!(streams <= serial);
        // The gain is limited compared to guaranteed co-location.
        let sm_aware = exec.runtime(&a, &b, FusionStrategy::SmAwareCta).unwrap();
        assert!(sm_aware <= streams);
    }

    #[test]
    fn warp_parallel_suffers_from_stragglers_when_imbalanced() {
        // Strongly compute-heavy mix: the memory halves finish early but the
        // fused CTAs keep their resources until the compute halves are done.
        let (a, b, exec) = ops(200);
        let hfuse = exec.runtime(&a, &b, FusionStrategy::WarpParallel).unwrap();
        let sm_aware = exec.runtime(&a, &b, FusionStrategy::SmAwareCta).unwrap();
        assert!(
            sm_aware <= hfuse * 1.02,
            "sm-aware {sm_aware} should not lose to hfuse {hfuse}"
        );
    }

    #[test]
    fn all_strategies_run_and_report_positive_time() {
        let (a, b, exec) = ops(60);
        for strategy in FusionStrategy::all() {
            let t = exec.runtime(&a, &b, strategy).unwrap();
            assert!(t > 0.0, "{strategy} returned non-positive runtime");
        }
    }

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = FusionStrategy::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
