//! The synthetic kernels of the §3.3 micro-benchmark (Figure 7).
//!
//! The paper studies fusion methods on two simple kernels: a *compute-bound*
//! kernel that repeatedly multiplies array elements by a scalar, and a
//! *memory-bound* kernel that repeatedly adds three arrays, with a barrier
//! after every operation. Varying the compute kernel's iteration count sweeps
//! the workload from memory-heavy to compute-heavy; at 100 compute iterations
//! the two kernels take the same time when run serially, which is the
//! balanced point in Figure 7.

use gpu_sim::{CtaWork, Footprint, GpuConfig, KernelLaunch, OpClass};

/// Number of array elements each CTA of the synthetic kernels processes.
pub const ELEMENTS_PER_CTA: usize = 64 * 1024;

/// Bytes per array element (fp32).
pub const ELEMENT_BYTES: usize = 4;

/// Device FLOPs charged per element per compute iteration. The constant folds
/// in the CUDA-core vs. tensor-core throughput ratio and the unrolled
/// multiply chain of the benchmark loop; it is calibrated so that 100 compute
/// iterations take as long as the memory kernel, matching the balanced point
/// of Figure 7.
pub const COMPUTE_FLOPS_PER_ELEMENT_ITER: f64 = 392.0;

/// Passes over the three input arrays performed by the memory-bound kernel.
pub const MEMORY_KERNEL_PASSES: usize = 16;

fn synthetic_footprint() -> Footprint {
    // Large CTAs (512 threads, 80 KiB of shared staging buffers): two fit per
    // SM, so a two-wave grid per kernel behaves like the paper's set-up where
    // a single kernel can fill the GPU on its own.
    Footprint::new(512, 80 * 1024)
}

/// The compute-bound synthetic kernel: every element is multiplied by a
/// scalar `iterations` times; the array is read once and written once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeKernel {
    /// Number of multiply iterations per element.
    pub iterations: usize,
    /// Number of CTAs in the grid.
    pub ctas: usize,
}

impl ComputeKernel {
    /// The Figure 7 configuration: a two-wave grid on `gpu`.
    pub fn figure7(iterations: usize, gpu: &GpuConfig) -> Self {
        ComputeKernel {
            iterations,
            ctas: 2 * gpu.num_sms,
        }
    }

    /// A compute kernel with one CTA per SM of `gpu`.
    pub fn one_wave(iterations: usize, gpu: &GpuConfig) -> Self {
        ComputeKernel {
            iterations,
            ctas: gpu.num_sms,
        }
    }

    /// Per-CTA resource footprint.
    pub fn footprint(&self) -> Footprint {
        synthetic_footprint()
    }

    /// The work of a single CTA.
    pub fn cta(&self) -> CtaWork {
        let flops =
            self.iterations as f64 * ELEMENTS_PER_CTA as f64 * COMPUTE_FLOPS_PER_ELEMENT_ITER;
        // The array is streamed in once and written back once.
        let bytes = (2 * ELEMENTS_PER_CTA * ELEMENT_BYTES) as f64;
        CtaWork::single(OpClass::ComputeBound, flops, bytes)
    }

    /// The full CTA list.
    pub fn ctas(&self) -> Vec<CtaWork> {
        vec![self.cta(); self.ctas]
    }

    /// A ready-to-submit kernel launch.
    pub fn launch(&self, name: &str) -> KernelLaunch {
        KernelLaunch::from_ctas(name, self.footprint(), self.ctas())
    }
}

/// The memory-bound synthetic kernel: three arrays are read and one written,
/// [`MEMORY_KERNEL_PASSES`] times, with negligible arithmetic per element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryKernel {
    /// Number of passes over the arrays.
    pub passes: usize,
    /// Number of CTAs in the grid.
    pub ctas: usize,
}

impl MemoryKernel {
    /// The Figure 7 configuration: a two-wave grid on `gpu` with the default
    /// number of passes.
    pub fn figure7(gpu: &GpuConfig) -> Self {
        MemoryKernel {
            passes: MEMORY_KERNEL_PASSES,
            ctas: 2 * gpu.num_sms,
        }
    }

    /// A memory kernel with one CTA per SM of `gpu`.
    pub fn one_wave(passes: usize, gpu: &GpuConfig) -> Self {
        MemoryKernel {
            passes,
            ctas: gpu.num_sms,
        }
    }

    /// Per-CTA resource footprint.
    pub fn footprint(&self) -> Footprint {
        synthetic_footprint()
    }

    /// The work of a single CTA.
    pub fn cta(&self) -> CtaWork {
        let bytes = (4 * self.passes * ELEMENTS_PER_CTA * ELEMENT_BYTES) as f64;
        let flops = (self.passes * ELEMENTS_PER_CTA) as f64 * 32.0;
        CtaWork::single(OpClass::MemoryBound, flops, bytes)
    }

    /// The full CTA list.
    pub fn ctas(&self) -> Vec<CtaWork> {
        vec![self.cta(); self.ctas]
    }

    /// A ready-to-submit kernel launch.
    pub fn launch(&self, name: &str) -> KernelLaunch {
        KernelLaunch::from_ctas(name, self.footprint(), self.ctas())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Engine;

    #[test]
    fn compute_kernel_scales_with_iterations() {
        let gpu = GpuConfig::a100_80gb();
        let engine = Engine::new(gpu.clone());
        let t20 = engine
            .run_kernel(ComputeKernel::figure7(20, &gpu).launch("c20"))
            .unwrap()
            .makespan;
        let t200 = engine
            .run_kernel(ComputeKernel::figure7(200, &gpu).launch("c200"))
            .unwrap()
            .makespan;
        assert!(t200 > 5.0 * t20, "t20 {t20} t200 {t200}");
    }

    #[test]
    fn memory_kernel_is_memory_bound() {
        let gpu = GpuConfig::a100_80gb();
        let engine = Engine::new(gpu.clone());
        let report = engine
            .run_kernel(MemoryKernel::figure7(&gpu).launch("m"))
            .unwrap();
        assert!(report.memory_utilization() > 0.5);
        assert!(report.compute_utilization() < 0.1);
    }

    #[test]
    fn compute_kernel_is_compute_bound_at_high_iterations() {
        let gpu = GpuConfig::a100_80gb();
        let engine = Engine::new(gpu.clone());
        let report = engine
            .run_kernel(ComputeKernel::figure7(200, &gpu).launch("c"))
            .unwrap();
        assert!(report.compute_utilization() > 0.5);
        assert!(report.memory_utilization() < 0.2);
    }

    /// The calibration point of Figure 7: at 100 compute iterations the two
    /// kernels take roughly the same time in isolation.
    #[test]
    fn kernels_are_balanced_at_100_iterations() {
        let gpu = GpuConfig::a100_80gb();
        let engine = Engine::new(gpu.clone());
        let tc = engine
            .run_kernel(ComputeKernel::figure7(100, &gpu).launch("c"))
            .unwrap()
            .makespan;
        let tm = engine
            .run_kernel(MemoryKernel::figure7(&gpu).launch("m"))
            .unwrap()
            .makespan;
        let ratio = tc / tm;
        assert!((0.7..1.4).contains(&ratio), "compute {tc} vs memory {tm}");
    }

    #[test]
    fn figure7_grids_are_two_waves() {
        let gpu = GpuConfig::a100_80gb();
        let c = ComputeKernel::figure7(10, &gpu);
        assert_eq!(c.ctas, 216);
        assert_eq!(
            gpu.occupancy(c.footprint().shared_mem, c.footprint().threads),
            2
        );
        assert_eq!(MemoryKernel::figure7(&gpu).ctas, 216);
    }
}
