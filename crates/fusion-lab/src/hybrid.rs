//! Executing the attention of a hybrid batch under every strategy the paper
//! compares (FA_Serial, FA_Streams, FA_HFuse, FI_Serial, FI_Batched, POD),
//! using the CTA-level simulator. This is the entry point used by the
//! Figure 1, Figure 6 and Figure 11 harnesses.

use crate::strategies::Operation;
use attn_kernels::{
    AttentionConfig, AttentionStrategy, BatchedPrefillKernel, DecodeKernel, HybridBatch,
    PrefillKernel, KERNEL_LAUNCH_OVERHEAD,
};
use gpu_sim::{CtaWork, Engine, ExecutionReport, GpuConfig, KernelLaunch, SimError, WorkUnit};
use pod_attention::PodAttention;

/// Runs hybrid-batch attention under a chosen [`AttentionStrategy`] on the
/// CTA-level simulator.
///
/// # Examples
///
/// ```
/// use attn_kernels::{AttentionConfig, AttentionStrategy, HybridBatch};
/// use fusion_lab::HybridAttentionRunner;
/// use gpu_sim::GpuConfig;
///
/// let runner = HybridAttentionRunner::new(AttentionConfig::yi_6b(), GpuConfig::a100_80gb());
/// let batch = HybridBatch::uniform(512, 8 * 1024, 54, 16 * 1024);
/// let serial = runner.time(&batch, AttentionStrategy::FaSerial)?;
/// let pod = runner.time(&batch, AttentionStrategy::Pod)?;
/// assert!(pod <= serial);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HybridAttentionRunner {
    cfg: AttentionConfig,
    gpu: GpuConfig,
    engine: Engine,
    pod: PodAttention,
}

impl HybridAttentionRunner {
    /// Create a runner for a model/device pair.
    pub fn new(cfg: AttentionConfig, gpu: GpuConfig) -> Self {
        HybridAttentionRunner {
            cfg,
            gpu: gpu.clone(),
            engine: Engine::new(gpu.clone()),
            pod: PodAttention::new(cfg, gpu),
        }
    }

    /// The attention configuration.
    pub fn config(&self) -> &AttentionConfig {
        &self.cfg
    }

    /// The device configuration.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The POD-Attention instance used for [`AttentionStrategy::Pod`].
    pub fn pod(&self) -> &PodAttention {
        &self.pod
    }

    /// Execute the batch's attention under `strategy`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a launch cannot be scheduled.
    pub fn execute(
        &self,
        batch: &HybridBatch,
        strategy: AttentionStrategy,
    ) -> Result<ExecutionReport, SimError> {
        match strategy {
            AttentionStrategy::FaSerial => self.engine.run_serial(self.fa_launches(batch)),
            AttentionStrategy::FaStreams => self.engine.run_concurrent(self.fa_launches(batch)),
            AttentionStrategy::FiSerial => self.engine.run_serial(self.fi_launches(batch)),
            AttentionStrategy::FiBatched => {
                self.engine
                    .run_kernel(BatchedPrefillKernel::flashinfer().launch(
                        "fi_batched",
                        batch,
                        &self.cfg,
                        &self.gpu,
                    ))
            }
            AttentionStrategy::FaHFuse => self.engine.run_kernel(self.hfuse_launch(batch)),
            AttentionStrategy::Pod => self.pod.execute(batch),
        }
    }

    /// Attention runtime (seconds) under `strategy`, including kernel launch
    /// overheads.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a launch cannot be scheduled.
    pub fn time(&self, batch: &HybridBatch, strategy: AttentionStrategy) -> Result<f64, SimError> {
        let launches = self.launch_count(batch, strategy);
        Ok(self.execute(batch, strategy)?.makespan + launches as f64 * KERNEL_LAUNCH_OVERHEAD)
    }

    /// Speedup of `strategy` over FA_Serial for this batch (>1 means faster).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a launch cannot be scheduled.
    pub fn speedup_over_fa_serial(
        &self,
        batch: &HybridBatch,
        strategy: AttentionStrategy,
    ) -> Result<f64, SimError> {
        let base = self.time(batch, AttentionStrategy::FaSerial)?;
        let t = self.time(batch, strategy)?;
        Ok(base / t)
    }

    fn launch_count(&self, batch: &HybridBatch, strategy: AttentionStrategy) -> usize {
        let both = batch.has_prefill() as usize + batch.has_decode() as usize;
        match strategy {
            AttentionStrategy::FaSerial | AttentionStrategy::FiSerial => both,
            AttentionStrategy::FaStreams => both,
            AttentionStrategy::FaHFuse | AttentionStrategy::FiBatched | AttentionStrategy::Pod => {
                both.min(1)
            }
        }
    }

    fn fa_launches(&self, batch: &HybridBatch) -> Vec<KernelLaunch> {
        let mut launches = Vec::new();
        if let Some(chunk) = &batch.prefill {
            launches.push(PrefillKernel::flash_attention().launch(
                "fa2_prefill",
                chunk,
                &self.cfg,
                &self.gpu,
            ));
        }
        if !batch.decodes.is_empty() {
            launches.push(DecodeKernel::flash_attention().launch(
                "fa_decode",
                &batch.decodes,
                &self.cfg,
                &self.gpu,
            ));
        }
        launches
    }

    fn fi_launches(&self, batch: &HybridBatch) -> Vec<KernelLaunch> {
        let mut launches = Vec::new();
        if let Some(chunk) = &batch.prefill {
            launches.push(PrefillKernel::flashinfer().launch(
                "fi_prefill",
                chunk,
                &self.cfg,
                &self.gpu,
            ));
        }
        if !batch.decodes.is_empty() {
            launches.push(DecodeKernel::flashinfer().launch(
                "fi_decode",
                &batch.decodes,
                &self.cfg,
                &self.gpu,
            ));
        }
        launches
    }

    /// Build the HFuse (warp-parallel fused) launch: the i-th prefill CTA and
    /// the i-th decode CTA share one fused CTA whose footprint is the sum of
    /// both, exactly as the HFuse source-to-source tool would emit.
    fn hfuse_launch(&self, batch: &HybridBatch) -> KernelLaunch {
        let prefill_kernel = PrefillKernel::flash_attention();
        let decode_kernel = DecodeKernel::flash_attention();
        let prefill_units: Vec<WorkUnit> = match &batch.prefill {
            Some(chunk) => prefill_kernel.build_units(chunk, &self.cfg, &self.gpu),
            None => Vec::new(),
        };
        let decode_units: Vec<WorkUnit> =
            decode_kernel.build_units(&batch.decodes, &self.cfg, &self.gpu);

        let prefill_op = Operation::new(
            "prefill",
            prefill_kernel.footprint(&self.cfg),
            prefill_units
                .into_iter()
                .map(|u| CtaWork { units: vec![u] })
                .collect(),
        );
        let decode_op = Operation::new(
            "decode",
            decode_kernel.footprint(&self.cfg),
            decode_units
                .into_iter()
                .map(|u| CtaWork { units: vec![u] })
                .collect(),
        );
        crate::strategies::fuse_operations_warp_parallel(&prefill_op, &decode_op)
    }
}

/// Result row of a hybrid-batch strategy comparison, used by the figure
/// harnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyTiming {
    /// The strategy.
    pub strategy: AttentionStrategy,
    /// Attention runtime in seconds (including launch overheads).
    pub time: f64,
    /// Speedup over FA_Serial (>1 means faster).
    pub speedup: f64,
}

/// Time every strategy on one batch and return the rows in
/// [`AttentionStrategy::all`] order.
///
/// # Errors
///
/// Returns [`SimError`] if any launch cannot be scheduled.
pub fn compare_strategies(
    runner: &HybridAttentionRunner,
    batch: &HybridBatch,
) -> Result<Vec<StrategyTiming>, SimError> {
    let base = runner.time(batch, AttentionStrategy::FaSerial)?;
    AttentionStrategy::all()
        .iter()
        .map(|&strategy| {
            let time = runner.time(batch, strategy)?;
            Ok(StrategyTiming {
                strategy,
                time,
                speedup: base / time,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> HybridAttentionRunner {
        HybridAttentionRunner::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb())
    }

    #[test]
    fn pod_is_the_fastest_strategy_on_balanced_batches() {
        let r = runner();
        let batch = HybridBatch::uniform(2048, 12 * 1024, 100, 12 * 1024);
        let rows = compare_strategies(&r, &batch).unwrap();
        let pod = rows
            .iter()
            .find(|t| t.strategy == AttentionStrategy::Pod)
            .unwrap();
        for row in &rows {
            assert!(
                pod.time <= row.time * 1.02,
                "POD ({:.3} ms) slower than {} ({:.3} ms)",
                pod.time * 1e3,
                row.strategy,
                row.time * 1e3
            );
        }
        assert!(pod.speedup > 1.1);
    }

    #[test]
    fn streams_never_slower_than_serial_by_much() {
        let r = runner();
        let batch = HybridBatch::uniform(1024, 8 * 1024, 55, 16 * 1024);
        let serial = r.time(&batch, AttentionStrategy::FaSerial).unwrap();
        let streams = r.time(&batch, AttentionStrategy::FaStreams).unwrap();
        assert!(streams <= serial * 1.05);
    }

    #[test]
    fn fi_batched_wastes_time_at_long_context() {
        let r = runner();
        let batch = HybridBatch::uniform(512, 16 * 1024, 64, 16 * 1024);
        let serial = r.time(&batch, AttentionStrategy::FaSerial).unwrap();
        let batched = r.time(&batch, AttentionStrategy::FiBatched).unwrap();
        assert!(batched > serial * 0.9);
    }

    #[test]
    fn hfuse_beats_serial_on_balanced_batches() {
        let r = runner();
        let batch = HybridBatch::uniform(2048, 8 * 1024, 128, 8 * 1024);
        let serial = r.time(&batch, AttentionStrategy::FaSerial).unwrap();
        let hfuse = r.time(&batch, AttentionStrategy::FaHFuse).unwrap();
        assert!(hfuse < serial, "hfuse {hfuse} vs serial {serial}");
    }

    #[test]
    fn decode_only_batches_work_for_all_strategies() {
        let r = runner();
        let batch = HybridBatch::decode_only(32, 4096);
        for strategy in AttentionStrategy::all() {
            let t = r.time(&batch, strategy).unwrap();
            assert!(t > 0.0, "{strategy} returned zero time");
        }
    }
}
