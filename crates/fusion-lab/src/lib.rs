//! # fusion-lab: the concurrent-execution case study
//!
//! §3 of the POD-Attention paper analyses the ways two heterogeneous
//! operations can be executed concurrently on a GPU — CUDA streams,
//! CTA-parallel fusion, warp-parallel fusion (HFuse), intra-thread fusion —
//! and shows why none of them is sufficient for fusing prefill and decode
//! attention, motivating SM-aware CTA scheduling. This crate reproduces that
//! case study:
//!
//! * [`ComputeKernel`] / [`MemoryKernel`] — the synthetic micro-benchmark
//!   kernels of Figure 7 (scalar multiply loop vs. three-array add loop).
//! * [`FusionStrategy`] / [`FusionExecutor`] — the execution methods of
//!   Table 2, runnable on any pair of [`Operation`]s.
//! * [`HybridAttentionRunner`] — the same comparison applied to real hybrid
//!   attention batches (FA_Serial, FA_Streams, FA_HFuse, FI_Serial,
//!   FI_Batched, POD), used by the Figure 1, 6 and 11 harnesses.
//!
//! # Example: the Figure 7 sweep at one point
//!
//! ```
//! use fusion_lab::{ComputeKernel, FusionExecutor, FusionStrategy, MemoryKernel, Operation};
//! use gpu_sim::GpuConfig;
//!
//! let gpu = GpuConfig::a100_80gb();
//! let compute = ComputeKernel::one_wave(100, &gpu);
//! let memory = MemoryKernel::one_wave(24, &gpu);
//! let exec = FusionExecutor::new(gpu);
//! let a = Operation::new("compute", compute.footprint(), compute.ctas());
//! let b = Operation::new("memory", memory.footprint(), memory.ctas());
//!
//! let serial = exec.runtime(&a, &b, FusionStrategy::Serial)?;
//! let sm_aware = exec.runtime(&a, &b, FusionStrategy::SmAwareCta)?;
//! assert!(sm_aware < serial);
//! # Ok::<(), gpu_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hybrid;
mod kernels;
mod strategies;

pub use hybrid::{compare_strategies, HybridAttentionRunner, StrategyTiming};
pub use kernels::{
    ComputeKernel, MemoryKernel, ELEMENTS_PER_CTA, ELEMENT_BYTES, MEMORY_KERNEL_PASSES,
};
pub use strategies::{fuse_operations_warp_parallel, FusionExecutor, FusionStrategy, Operation};
