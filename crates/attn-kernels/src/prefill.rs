//! Work-model of FlashAttention-2 style *prefill* attention kernels,
//! including the FlashDecoding-style KV splitting that FlashAttention applies
//! to chunked prefills (§4.2.4 of the paper).

use crate::batch::PrefillChunk;
use crate::config::AttentionConfig;
use crate::cost::{
    attention_flops_per_head, hbm_bytes_with_l2, kv_bytes_per_head, q_bytes_per_head,
};
use crate::tiles::TileShape;
use gpu_sim::{CtaWork, Footprint, GpuConfig, KernelLaunch, OpClass, WorkUnit};

/// How the number of KV splits for a chunked prefill is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPolicy {
    /// No splitting along the KV dimension.
    None,
    /// FlashAttention's default behaviour: split until the prefill grid alone
    /// fills roughly four waves of the GPU (maximizes prefill-only
    /// parallelism, at the cost of re-reading Q per split).
    Vanilla,
    /// POD-Attention's behaviour: split only until the prefill grid fills at
    /// most two waves, so the extra memory traffic does not starve co-located
    /// decode CTAs (Table 8).
    LimitedToTwoWaves,
    /// An explicit number of splits.
    Fixed(usize),
}

/// Shared per-chunk geometry: the causal KV span of each query tile and the
/// kernel-wide HBM traffic, computed once for both the unit builder and the
/// O(query tiles) aggregate path.
#[derive(Debug, Clone)]
struct PrefillGrid {
    tile_kv: Vec<f64>,
    total_tile_kv: f64,
    total_bytes: f64,
    splits: usize,
    padded_q: f64,
    eff: f64,
}

/// Configuration of a prefill attention kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillKernel {
    /// Tile shape used by the kernel.
    pub tile: TileShape,
    /// Threads per CTA.
    pub threads: usize,
    /// Fraction of peak HBM bandwidth the kernel's access pattern achieves.
    pub bandwidth_efficiency: f64,
    /// KV-split policy for chunked prefills.
    pub split_policy: SplitPolicy,
}

impl PrefillKernel {
    /// FlashAttention-2's prefill kernel with its default tile and vanilla
    /// split heuristic.
    pub fn flash_attention() -> Self {
        PrefillKernel {
            tile: TileShape::fa2_prefill(),
            threads: 128,
            bandwidth_efficiency: 0.85,
            split_policy: SplitPolicy::Vanilla,
        }
    }

    /// FlashInfer's prefill kernel: same tiling strategy, slightly better
    /// scheduling of global loads.
    pub fn flashinfer() -> Self {
        PrefillKernel {
            bandwidth_efficiency: 0.9,
            ..PrefillKernel::flash_attention()
        }
    }

    /// Use a specific tile shape.
    pub fn with_tile(mut self, tile: TileShape) -> Self {
        self.tile = tile;
        self
    }

    /// Use a specific split policy.
    pub fn with_split_policy(mut self, policy: SplitPolicy) -> Self {
        self.split_policy = policy;
        self
    }

    /// The per-CTA resource footprint of this kernel.
    pub fn footprint(&self, cfg: &AttentionConfig) -> Footprint {
        Footprint::new(self.threads, self.tile.shared_mem_bytes(cfg))
    }

    /// Number of KV splits the kernel will use for `chunk`.
    ///
    /// Splitting along the KV dimension (FlashDecoding-style) only applies to
    /// *chunked* prefills — chunks appended to an existing KV cache — which is
    /// when the query grid alone is too small to fill the GPU. A full prompt
    /// processed from scratch uses the regular unsplit kernel.
    pub fn num_splits(
        &self,
        chunk: &PrefillChunk,
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> usize {
        let base = self.base_ctas(chunk, cfg);
        let fp = self.footprint(cfg);
        let wave = gpu.wave_size(fp.shared_mem, fp.threads).max(1);
        let max_by_kv = self.tile.kv_tiles(chunk.context_len()).max(1);
        if chunk.prior_len == 0 && !matches!(self.split_policy, SplitPolicy::Fixed(_)) {
            return 1;
        }
        let splits = match self.split_policy {
            SplitPolicy::None => 1,
            SplitPolicy::Fixed(n) => n.max(1),
            // Splitting is only worthwhile when the unsplit grid cannot fill
            // the GPU (small chunks); the vanilla heuristic then aims for
            // roughly four waves of CTAs, POD limits itself to two.
            SplitPolicy::Vanilla => {
                if base >= wave {
                    1
                } else {
                    (4 * wave).div_ceil(base)
                }
            }
            SplitPolicy::LimitedToTwoWaves => {
                if base >= wave {
                    1
                } else {
                    ((2 * wave) / base).max(1)
                }
            }
        };
        splits.min(max_by_kv)
    }

    /// CTAs in the grid before KV splitting: one per (query head, query tile).
    pub fn base_ctas(&self, chunk: &PrefillChunk, cfg: &AttentionConfig) -> usize {
        cfg.q_heads_per_gpu() * self.tile.q_tiles(chunk.chunk_len)
    }

    /// Build the per-CTA work units of this kernel for one prefill chunk.
    ///
    /// Each unit corresponds to one CTA of the grid
    /// `(query heads per GPU) × (query tiles) × (KV splits)` and carries its
    /// causally-correct share of tensor FLOPs and HBM traffic.
    pub fn build_units(
        &self,
        chunk: &PrefillChunk,
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> Vec<WorkUnit> {
        let Some(grid) = self.grid(chunk, cfg, gpu) else {
            return Vec::new();
        };
        let q_heads = cfg.q_heads_per_gpu();
        let d = cfg.head_dim;
        let splits = grid.splits;
        let mut units = Vec::with_capacity(q_heads * grid.tile_kv.len() * splits);
        for _head in 0..q_heads {
            for kv in &grid.tile_kv {
                let flops_tile = attention_flops_per_head(grid.padded_q, *kv, d) / grid.eff;
                // This tile's share of the kernel's HBM traffic.
                let bytes_tile = grid.total_bytes * (*kv / (grid.total_tile_kv * q_heads as f64));
                for _s in 0..splits {
                    units.push(WorkUnit::new(
                        OpClass::Prefill,
                        flops_tile / splits as f64,
                        bytes_tile / splits as f64,
                    ));
                }
            }
        }
        units
    }

    /// Aggregate `(flops, bytes, ctas)` of the kernel for one chunk, without
    /// materializing the per-CTA unit list — O(query tiles) instead of
    /// O(CTAs). Agrees with summing [`PrefillKernel::build_units`]; the
    /// attention estimator's hot path uses this.
    pub fn aggregate_work(
        &self,
        chunk: &PrefillChunk,
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> (f64, f64, usize) {
        let Some(grid) = self.grid(chunk, cfg, gpu) else {
            return (0.0, 0.0, 0);
        };
        let q_heads = cfg.q_heads_per_gpu();
        let d = cfg.head_dim;
        let flops: f64 = grid
            .tile_kv
            .iter()
            .map(|kv| attention_flops_per_head(grid.padded_q, *kv, d) / grid.eff)
            .sum::<f64>()
            * q_heads as f64;
        let ctas = q_heads * grid.tile_kv.len() * grid.splits;
        (flops, grid.total_bytes, ctas)
    }

    /// The per-tile geometry and whole-kernel HBM traffic shared by
    /// [`PrefillKernel::build_units`] and [`PrefillKernel::aggregate_work`].
    /// `None` for an empty chunk.
    fn grid(
        &self,
        chunk: &PrefillChunk,
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> Option<PrefillGrid> {
        if chunk.chunk_len == 0 {
            return None;
        }
        let q_heads = cfg.q_heads_per_gpu();
        let kv_heads = cfg.kv_heads_per_gpu();
        let group = cfg.group_size().min(q_heads);
        let d = cfg.head_dim;
        let splits = self.num_splits(chunk, cfg, gpu);
        let q_tiles = self.tile.q_tiles(chunk.chunk_len);

        // Causal KV length visible to each query tile.
        let tile_kv: Vec<f64> = (0..q_tiles)
            .map(|t| {
                let tile_end = ((t + 1) * self.tile.q).min(chunk.chunk_len);
                (chunk.prior_len + tile_end) as f64
            })
            .collect();
        let total_tile_kv: f64 = tile_kv.iter().sum();

        // HBM traffic for the whole kernel.
        let unique_kv = kv_bytes_per_head(chunk.context_len() as f64, cfg) * kv_heads as f64;
        let logical_kv: f64 = tile_kv
            .iter()
            .map(|kv| kv_bytes_per_head(*kv, cfg) * kv_heads as f64 * group as f64)
            .sum();
        let hbm_kv = hbm_bytes_with_l2(logical_kv, unique_kv, gpu.l2_cache_bytes as f64);
        let q_bytes =
            q_bytes_per_head(chunk.chunk_len as f64, cfg) * q_heads as f64 * splits as f64;
        let o_final = q_bytes_per_head(chunk.chunk_len as f64, cfg) * q_heads as f64;
        // Partial (fp32) outputs written by every split and re-read by the
        // reduction pass.
        let o_partial = if splits > 1 {
            2.0 * splits as f64 * chunk.chunk_len as f64 * (d * 4) as f64 * q_heads as f64
        } else {
            0.0
        };
        let total_bytes = (hbm_kv + q_bytes + o_final + o_partial) / self.bandwidth_efficiency;

        Some(PrefillGrid {
            tile_kv,
            total_tile_kv,
            total_bytes,
            splits,
            padded_q: self.tile.q as f64,
            eff: self.tile.tensor_efficiency(),
        })
    }

    /// Total tensor FLOPs (including tile padding) the kernel performs.
    pub fn total_flops(&self, chunk: &PrefillChunk, cfg: &AttentionConfig, gpu: &GpuConfig) -> f64 {
        self.aggregate_work(chunk, cfg, gpu).0
    }

    /// Total HBM bytes the kernel moves.
    pub fn total_bytes(&self, chunk: &PrefillChunk, cfg: &AttentionConfig, gpu: &GpuConfig) -> f64 {
        self.aggregate_work(chunk, cfg, gpu).1
    }

    /// Build a ready-to-submit [`KernelLaunch`] for one prefill chunk.
    pub fn launch(
        &self,
        name: &str,
        chunk: &PrefillChunk,
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> KernelLaunch {
        let ctas: Vec<CtaWork> = self
            .build_units(chunk, cfg, gpu)
            .into_iter()
            .map(|u| CtaWork { units: vec![u] })
            .collect();
        KernelLaunch::from_ctas(name, self.footprint(cfg), ctas)
    }
}

impl Default for PrefillKernel {
    fn default() -> Self {
        PrefillKernel::flash_attention()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Engine;

    fn cfg() -> AttentionConfig {
        AttentionConfig::llama3_8b()
    }

    fn gpu() -> GpuConfig {
        GpuConfig::a100_80gb()
    }

    #[test]
    fn grid_size_matches_heads_tiles_and_splits() {
        let k = PrefillKernel::flash_attention().with_split_policy(SplitPolicy::None);
        let chunk = PrefillChunk::new(1024, 0);
        let units = k.build_units(&chunk, &cfg(), &gpu());
        // 16 q heads per GPU * ceil(1024/128) = 128 CTAs.
        assert_eq!(units.len(), 16 * 8);
    }

    #[test]
    fn splits_multiply_grid_size() {
        let k = PrefillKernel::flash_attention().with_split_policy(SplitPolicy::Fixed(4));
        let chunk = PrefillChunk::new(512, 8192);
        let units = k.build_units(&chunk, &cfg(), &gpu());
        assert_eq!(units.len(), 16 * 4 * 4);
    }

    #[test]
    fn limited_splits_never_exceed_vanilla() {
        let chunk = PrefillChunk::new(512, 15 * 1024 + 512);
        let vanilla = PrefillKernel::flash_attention()
            .with_split_policy(SplitPolicy::Vanilla)
            .num_splits(&chunk, &cfg(), &gpu());
        let limited = PrefillKernel::flash_attention()
            .with_split_policy(SplitPolicy::LimitedToTwoWaves)
            .num_splits(&chunk, &cfg(), &gpu());
        assert!(limited <= vanilla);
        assert!(limited >= 1);
        // Vanilla splitting of a small chunk produces a lot of extra CTAs.
        assert!(vanilla > limited);
    }

    #[test]
    fn flops_grow_with_context_length() {
        let k = PrefillKernel::flash_attention();
        let short = k.total_flops(&PrefillChunk::new(1024, 1024), &cfg(), &gpu());
        let long = k.total_flops(&PrefillChunk::new(1024, 15 * 1024), &cfg(), &gpu());
        assert!(long > 2.0 * short);
    }

    #[test]
    fn splits_increase_memory_traffic_not_flops() {
        let chunk = PrefillChunk::new(512, 8192);
        let one = PrefillKernel::flash_attention().with_split_policy(SplitPolicy::Fixed(1));
        let eight = PrefillKernel::flash_attention().with_split_policy(SplitPolicy::Fixed(8));
        let flops_1 = one.total_flops(&chunk, &cfg(), &gpu());
        let flops_8 = eight.total_flops(&chunk, &cfg(), &gpu());
        assert!((flops_1 - flops_8).abs() / flops_1 < 1e-9);
        assert!(
            eight.total_bytes(&chunk, &cfg(), &gpu()) > one.total_bytes(&chunk, &cfg(), &gpu())
        );
    }

    #[test]
    fn empty_chunk_builds_no_work() {
        let k = PrefillKernel::flash_attention();
        assert!(k
            .build_units(&PrefillChunk::new(0, 0), &cfg(), &gpu())
            .is_empty());
    }

    /// The headline motivation (Figure 1): prefill attention is
    /// compute-bound — high compute utilization, tiny HBM utilization.
    #[test]
    fn prefill_kernel_is_compute_bound() {
        let k = PrefillKernel::flash_attention();
        let chunk = PrefillChunk::new(4096, 0);
        let launch = k.launch("fa2_prefill", &chunk, &cfg(), &gpu());
        let report = Engine::new(gpu()).run_kernel(launch).unwrap();
        assert!(
            report.compute_utilization() > 0.35,
            "compute util {}",
            report.compute_utilization()
        );
        assert!(
            report.memory_utilization() < 0.10,
            "memory util {}",
            report.memory_utilization()
        );
    }

    #[test]
    fn footprint_matches_tile() {
        let k = PrefillKernel::flash_attention();
        let fp = k.footprint(&cfg());
        assert_eq!(fp.shared_mem, 64 * 1024);
        assert_eq!(fp.threads, 128);
        // Occupancy 2 on the A100.
        assert_eq!(gpu().occupancy(fp.shared_mem, fp.threads), 2);
    }
}
