//! Hybrid batch descriptors: one chunked prefill plus a set of ongoing
//! decodes, as formed by hybrid-batching LLM schedulers (Sarathi-Serve).

/// The prefill side of a hybrid batch: one chunk of a prompt.
///
/// `chunk_len` new query tokens are processed; their keys/values are appended
/// to a KV cache that already holds `prior_len` tokens from earlier chunks,
/// so attention for this chunk spans `prior_len + chunk_len` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefillChunk {
    /// Number of new prompt tokens processed in this iteration.
    pub chunk_len: usize,
    /// Number of prompt tokens already processed in earlier chunks.
    pub prior_len: usize,
}

impl PrefillChunk {
    /// A chunk of `chunk_len` tokens following `prior_len` already-processed
    /// tokens.
    pub fn new(chunk_len: usize, prior_len: usize) -> Self {
        PrefillChunk {
            chunk_len,
            prior_len,
        }
    }

    /// The first chunk of a prompt (no prior context).
    pub fn first(chunk_len: usize) -> Self {
        PrefillChunk::new(chunk_len, 0)
    }

    /// Total KV length visible to the last token of this chunk.
    pub fn context_len(&self) -> usize {
        self.prior_len + self.chunk_len
    }

    /// Average number of keys a query token of this chunk attends to under a
    /// causal mask.
    pub fn avg_causal_kv(&self) -> f64 {
        self.prior_len as f64 + (self.chunk_len as f64 + 1.0) / 2.0
    }
}

/// One decode request in a hybrid batch: a single new token attending to its
/// full context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodeRequest {
    /// KV-cache length (tokens) of this request, including the new token.
    pub context_len: usize,
}

impl DecodeRequest {
    /// A decode request with the given context length.
    pub fn new(context_len: usize) -> Self {
        DecodeRequest { context_len }
    }
}

/// A hybrid batch: at most one prefill chunk co-scheduled with any number of
/// decode requests (the common case in Sarathi-style scheduling; see Table 1
/// of the paper).
///
/// # Examples
///
/// ```
/// use attn_kernels::HybridBatch;
///
/// // Table 1, config C0: chunk of 1K tokens at 12K context with 80 decodes
/// // of 12K context each.
/// let c0 = HybridBatch::uniform(1024, 12 * 1024, 80, 12 * 1024);
/// assert_eq!(c0.decode_batch_size(), 80);
/// assert!(c0.has_prefill());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HybridBatch {
    /// The prefill chunk, if this iteration carries one.
    pub prefill: Option<PrefillChunk>,
    /// The ongoing decode requests.
    pub decodes: Vec<DecodeRequest>,
    /// Decode KV tokens whose HBM reads are eliminated by shared-prefix
    /// dedup across the batch: for each group of decodes sharing the same
    /// prefix blocks, the shared KV is streamed once for the whole group
    /// instead of once per request, saving `(members − 1) × shared tokens`
    /// per group. The batch carries only the sum — the decode cost model is
    /// linear in KV bytes, so group structure beyond the total does not
    /// change the price. Zero (the default) declares no sharing and leaves
    /// every cost bit-for-bit identical to a dedup-unaware batch.
    pub kv_dedup_tokens: usize,
    /// Extra speculative-verify query tokens carried by the decode side,
    /// beyond the one token per decode already implied by `decodes`. In
    /// draft-then-verify decoding each speculating request verifies
    /// `width` draft tokens against its full context in one prefill-shaped
    /// op; the batch carries `Σ (width − 1)` here. Verify queries share the
    /// decode's single pass over KV (no extra HBM traffic) but each scores
    /// against the full context, so they scale decode attention *compute*
    /// and count as query tokens for the GEMM side. Zero (the default)
    /// declares no speculation and leaves every cost bit-for-bit identical
    /// to a speculation-unaware batch.
    pub spec_verify_tokens: usize,
}

impl HybridBatch {
    /// An empty batch.
    pub fn new() -> Self {
        HybridBatch {
            prefill: None,
            decodes: Vec::new(),
            kv_dedup_tokens: 0,
            spec_verify_tokens: 0,
        }
    }

    /// A batch with one prefill chunk and `decode_batch` decodes, all decodes
    /// sharing the same context length. `prefill_context` is the total
    /// context of the prompt *including* this chunk (the paper's "CL").
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` exceeds `prefill_context`.
    pub fn uniform(
        chunk_len: usize,
        prefill_context: usize,
        decode_batch: usize,
        decode_context: usize,
    ) -> Self {
        assert!(
            chunk_len <= prefill_context,
            "chunk ({chunk_len}) larger than prefill context ({prefill_context})"
        );
        HybridBatch {
            prefill: Some(PrefillChunk::new(chunk_len, prefill_context - chunk_len)),
            decodes: vec![DecodeRequest::new(decode_context); decode_batch],
            kv_dedup_tokens: 0,
            spec_verify_tokens: 0,
        }
    }

    /// A decode-only batch.
    pub fn decode_only(decode_batch: usize, decode_context: usize) -> Self {
        HybridBatch {
            prefill: None,
            decodes: vec![DecodeRequest::new(decode_context); decode_batch],
            kv_dedup_tokens: 0,
            spec_verify_tokens: 0,
        }
    }

    /// A prefill-only batch.
    pub fn prefill_only(chunk_len: usize, prefill_context: usize) -> Self {
        HybridBatch::uniform(chunk_len, prefill_context, 0, 0)
    }

    /// Table 1, configuration C0 (memory-bound hybrid batch).
    pub fn config_c0() -> Self {
        HybridBatch::uniform(1024, 12 * 1024, 80, 12 * 1024)
    }

    /// Table 1, configuration C1 (balanced hybrid batch).
    pub fn config_c1() -> Self {
        HybridBatch::uniform(12 * 1024, 12 * 1024, 220, 12 * 1024)
    }

    /// Table 1, configuration C2 (compute-bound hybrid batch).
    pub fn config_c2() -> Self {
        HybridBatch::uniform(16 * 1024, 16 * 1024, 250, 12 * 1024)
    }

    /// Whether the batch carries a prefill chunk.
    pub fn has_prefill(&self) -> bool {
        self.prefill.is_some()
    }

    /// Whether the batch carries any decodes.
    pub fn has_decode(&self) -> bool {
        !self.decodes.is_empty()
    }

    /// Number of decode requests.
    pub fn decode_batch_size(&self) -> usize {
        self.decodes.len()
    }

    /// Total decode context tokens across the batch.
    pub fn total_decode_context(&self) -> usize {
        self.decodes.iter().map(|d| d.context_len).sum()
    }

    /// Total number of *query* tokens processed in this iteration
    /// (prefill chunk tokens, one token per decode, plus any extra
    /// speculative-verify tokens).
    pub fn total_query_tokens(&self) -> usize {
        self.prefill.map_or(0, |p| p.chunk_len) + self.decodes.len() + self.spec_verify_tokens
    }

    /// Add one decode request.
    pub fn push_decode(&mut self, context_len: usize) {
        self.decodes.push(DecodeRequest::new(context_len));
    }

    /// The same batch declaring `tokens` decode KV tokens as deduped by
    /// shared-prefix grouping (see [`HybridBatch::kv_dedup_tokens`]).
    pub fn with_kv_dedup(mut self, tokens: usize) -> Self {
        self.kv_dedup_tokens = tokens;
        self
    }

    /// The same batch declaring `tokens` extra speculative-verify query
    /// tokens on the decode side (see [`HybridBatch::spec_verify_tokens`]).
    pub fn with_spec_verify(mut self, tokens: usize) -> Self {
        self.spec_verify_tokens = tokens;
        self
    }
}

impl Default for HybridBatch {
    fn default() -> Self {
        HybridBatch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_context_and_causal_average() {
        let c = PrefillChunk::new(1024, 3072);
        assert_eq!(c.context_len(), 4096);
        assert!((c.avg_causal_kv() - (3072.0 + 512.5)).abs() < 1e-9);
        let first = PrefillChunk::first(512);
        assert_eq!(first.prior_len, 0);
        assert_eq!(first.context_len(), 512);
    }

    #[test]
    fn table1_configs() {
        let c0 = HybridBatch::config_c0();
        assert_eq!(c0.prefill.unwrap().chunk_len, 1024);
        assert_eq!(c0.prefill.unwrap().context_len(), 12 * 1024);
        assert_eq!(c0.decode_batch_size(), 80);

        let c1 = HybridBatch::config_c1();
        assert_eq!(c1.prefill.unwrap().chunk_len, 12 * 1024);
        assert_eq!(c1.decode_batch_size(), 220);

        let c2 = HybridBatch::config_c2();
        assert_eq!(c2.prefill.unwrap().context_len(), 16 * 1024);
        assert_eq!(c2.decodes[0].context_len, 12 * 1024);
    }

    #[test]
    fn query_token_accounting() {
        let b = HybridBatch::uniform(512, 2048, 10, 4096);
        assert_eq!(b.total_query_tokens(), 522);
        assert_eq!(b.total_decode_context(), 10 * 4096);
        // Speculative-verify tokens count as query tokens.
        let s = b.with_spec_verify(30);
        assert_eq!(s.total_query_tokens(), 552);
    }

    #[test]
    fn decode_only_and_prefill_only() {
        let d = HybridBatch::decode_only(5, 100);
        assert!(!d.has_prefill());
        assert!(d.has_decode());
        let p = HybridBatch::prefill_only(256, 256);
        assert!(p.has_prefill());
        assert!(!p.has_decode());
    }

    #[test]
    #[should_panic(expected = "larger than prefill context")]
    fn uniform_rejects_inconsistent_chunk() {
        let _ = HybridBatch::uniform(2048, 1024, 0, 0);
    }

    #[test]
    fn push_decode_extends_batch() {
        let mut b = HybridBatch::new();
        b.push_decode(128);
        b.push_decode(256);
        assert_eq!(b.decode_batch_size(), 2);
        assert_eq!(b.total_decode_context(), 384);
    }
}
