//! Attention configuration: heads, head dimension, grouping and tensor
//! parallelism for the models evaluated in the paper (Table 4).

/// Attention-layer configuration of a served model, as seen by one GPU.
///
/// All three models in the paper use 32 query heads and a head dimension of
/// 128; they differ in the number of KV heads (grouped-query attention) and
/// in the tensor-parallel degree they are deployed with.
///
/// # Examples
///
/// ```
/// use attn_kernels::AttentionConfig;
///
/// let llama3 = AttentionConfig::llama3_8b();
/// assert_eq!(llama3.q_heads_per_gpu(), 16);
/// assert_eq!(llama3.kv_heads_per_gpu(), 4);
/// assert_eq!(llama3.group_size(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttentionConfig {
    /// Total query heads in the model.
    pub num_q_heads: usize,
    /// Total key/value heads in the model (GQA groups).
    pub num_kv_heads: usize,
    /// Head dimension (elements per head).
    pub head_dim: usize,
    /// Bytes per element (2 for FP16/BF16).
    pub dtype_bytes: usize,
    /// Tensor-parallel degree the model is deployed with (heads are split
    /// evenly across GPUs).
    pub tensor_parallel: usize,
    /// Number of transformer layers (used by the serving simulator and the
    /// per-layer KV-cache accounting).
    pub num_layers: usize,
}

impl AttentionConfig {
    /// Yi-6B: 32 query heads, 4 KV heads, deployed on a single A100 (Table 4).
    pub fn yi_6b() -> Self {
        AttentionConfig {
            num_q_heads: 32,
            num_kv_heads: 4,
            head_dim: 128,
            dtype_bytes: 2,
            tensor_parallel: 1,
            num_layers: 32,
        }
    }

    /// Llama-2-7B: 32 query heads, 32 KV heads, deployed on two A100s (TP-2).
    pub fn llama2_7b() -> Self {
        AttentionConfig {
            num_q_heads: 32,
            num_kv_heads: 32,
            head_dim: 128,
            dtype_bytes: 2,
            tensor_parallel: 2,
            num_layers: 32,
        }
    }

    /// Llama-3-8B: 32 query heads, 8 KV heads, deployed on two A100s (TP-2).
    pub fn llama3_8b() -> Self {
        AttentionConfig {
            num_q_heads: 32,
            num_kv_heads: 8,
            head_dim: 128,
            dtype_bytes: 2,
            tensor_parallel: 2,
            num_layers: 32,
        }
    }

    /// Query heads handled by one GPU under tensor parallelism.
    pub fn q_heads_per_gpu(&self) -> usize {
        (self.num_q_heads / self.tensor_parallel).max(1)
    }

    /// KV heads handled by one GPU under tensor parallelism.
    pub fn kv_heads_per_gpu(&self) -> usize {
        (self.num_kv_heads / self.tensor_parallel).max(1)
    }

    /// Query heads per KV head (the GQA group size).
    pub fn group_size(&self) -> usize {
        (self.num_q_heads / self.num_kv_heads).max(1)
    }

    /// Bytes of KV cache one token occupies on one GPU for one layer
    /// (key + value across the GPU's KV heads).
    pub fn kv_bytes_per_token_per_layer(&self) -> usize {
        2 * self.kv_heads_per_gpu() * self.head_dim * self.dtype_bytes
    }

    /// Bytes of KV cache one token occupies on one GPU across all layers.
    pub fn kv_bytes_per_token(&self) -> usize {
        self.kv_bytes_per_token_per_layer() * self.num_layers
    }
}

impl Default for AttentionConfig {
    fn default() -> Self {
        AttentionConfig::llama3_8b()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_match_table4() {
        let yi = AttentionConfig::yi_6b();
        assert_eq!(
            (yi.num_q_heads, yi.num_kv_heads, yi.tensor_parallel),
            (32, 4, 1)
        );
        let l2 = AttentionConfig::llama2_7b();
        assert_eq!(
            (l2.num_q_heads, l2.num_kv_heads, l2.tensor_parallel),
            (32, 32, 2)
        );
        let l3 = AttentionConfig::llama3_8b();
        assert_eq!(
            (l3.num_q_heads, l3.num_kv_heads, l3.tensor_parallel),
            (32, 8, 2)
        );
    }

    #[test]
    fn per_gpu_heads_respect_tensor_parallelism() {
        let l3 = AttentionConfig::llama3_8b();
        assert_eq!(l3.q_heads_per_gpu(), 16);
        assert_eq!(l3.kv_heads_per_gpu(), 4);
        let yi = AttentionConfig::yi_6b();
        assert_eq!(yi.q_heads_per_gpu(), 32);
        assert_eq!(yi.kv_heads_per_gpu(), 4);
    }

    #[test]
    fn group_sizes() {
        assert_eq!(AttentionConfig::yi_6b().group_size(), 8);
        assert_eq!(AttentionConfig::llama2_7b().group_size(), 1);
        assert_eq!(AttentionConfig::llama3_8b().group_size(), 4);
    }

    #[test]
    fn kv_bytes_per_token() {
        let yi = AttentionConfig::yi_6b();
        // 2 (K and V) * 4 heads * 128 dim * 2 bytes = 2048 bytes per layer.
        assert_eq!(yi.kv_bytes_per_token_per_layer(), 2048);
        assert_eq!(yi.kv_bytes_per_token(), 2048 * 32);
    }
}
