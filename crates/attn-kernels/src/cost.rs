//! FLOP and HBM-byte accounting shared by the kernel work-models.

use crate::config::AttentionConfig;

/// FLOPs for attention of `q_rows` query rows (already padded to the tile
/// shape if applicable) against `kv_cols` keys for a single head:
/// one `q×d×kv` matmul for `QK^T` and one `q×kv×d` matmul for `PV`,
/// at 2 FLOPs per multiply-accumulate.
pub fn attention_flops_per_head(q_rows: f64, kv_cols: f64, head_dim: usize) -> f64 {
    4.0 * q_rows * kv_cols * head_dim as f64
}

/// Bytes of K and V that must be read for `kv_cols` keys of a single KV head.
pub fn kv_bytes_per_head(kv_cols: f64, cfg: &AttentionConfig) -> f64 {
    2.0 * kv_cols * (cfg.head_dim * cfg.dtype_bytes) as f64
}

/// Bytes of Q read (or O written) for `q_rows` real query rows of a single
/// query head.
pub fn q_bytes_per_head(q_rows: f64, cfg: &AttentionConfig) -> f64 {
    q_rows * (cfg.head_dim * cfg.dtype_bytes) as f64
}

/// How many of the `logical_bytes` of KV reads actually reach HBM, given that
/// the unique working set is `unique_bytes` and the device has an L2 cache of
/// `l2_bytes`.
///
/// FlashAttention CTAs for different query tiles (and for query heads that
/// share a KV head) re-read the same K/V data. When the per-layer KV working
/// set fits in L2, those re-reads are served on chip and only the unique
/// bytes reach HBM — which is why the paper measures <5 % HBM bandwidth
/// utilization for prefill attention. When the working set greatly exceeds
/// L2, re-reads spill to HBM.
pub fn hbm_bytes_with_l2(logical_bytes: f64, unique_bytes: f64, l2_bytes: f64) -> f64 {
    if logical_bytes <= unique_bytes {
        return logical_bytes;
    }
    // Fraction of the working set that is L2-resident while being re-read.
    let resident = if unique_bytes <= 0.0 {
        1.0
    } else {
        (0.9 * l2_bytes / unique_bytes).clamp(0.0, 1.0)
    };
    let rereads = logical_bytes - unique_bytes;
    unique_bytes + rereads * (1.0 - resident)
}

/// Fixed host-side launch overhead per kernel, seconds. Hybrid batching
/// executes the prefill and decode kernels back to back every layer, so this
/// small constant matters for the serial baselines.
pub const KERNEL_LAUNCH_OVERHEAD: f64 = 6.0e-6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_are_4qkd() {
        assert_eq!(
            attention_flops_per_head(2.0, 3.0, 128),
            4.0 * 2.0 * 3.0 * 128.0
        );
    }

    #[test]
    fn kv_and_q_bytes() {
        let cfg = AttentionConfig::llama3_8b();
        // 2 tensors * 256 bytes per token-head.
        assert_eq!(kv_bytes_per_head(1.0, &cfg), 512.0);
        assert_eq!(q_bytes_per_head(1.0, &cfg), 256.0);
    }

    #[test]
    fn l2_absorbs_rereads_when_working_set_fits() {
        let l2 = 40e6;
        let unique = 10e6;
        let logical = 100e6;
        let hbm = hbm_bytes_with_l2(logical, unique, l2);
        // Working set fits comfortably: only the unique bytes reach HBM.
        assert!((hbm - unique).abs() < 1e-6);
    }

    #[test]
    fn l2_spills_when_working_set_exceeds_cache() {
        let l2 = 40e6;
        let unique = 400e6;
        let logical = 1200e6;
        let hbm = hbm_bytes_with_l2(logical, unique, l2);
        // Only ~9 % of re-reads are served from L2.
        assert!(hbm > 1100e6);
        assert!(hbm <= logical);
    }

    #[test]
    fn no_rereads_means_logical_bytes() {
        assert_eq!(hbm_bytes_with_l2(5.0, 10.0, 40e6), 5.0);
        assert_eq!(hbm_bytes_with_l2(10.0, 10.0, 40e6), 10.0);
    }

    #[test]
    fn l2_model_is_monotonic_in_logical_bytes() {
        let l2 = 40e6;
        let unique = 100e6;
        let a = hbm_bytes_with_l2(150e6, unique, l2);
        let b = hbm_bytes_with_l2(300e6, unique, l2);
        assert!(b >= a);
    }

    #[test]
    fn zero_unique_bytes_is_handled() {
        assert_eq!(hbm_bytes_with_l2(10.0, 0.0, 40e6), 0.0 + 10.0 * 0.0);
    }
}
