//! # attn-kernels: attention kernel work-models
//!
//! Analytical models of the attention kernels the paper evaluates —
//! FlashAttention-2 prefill, FlashAttention/FlashDecoding decode, FlashInfer
//! prefill/decode, and the batched-prefill shortcut (FI_Batched) — expressed
//! as CTA work lists that the [`gpu_sim`] contention engine executes.
//!
//! Each kernel model answers three questions about a [`HybridBatch`]:
//! how many CTAs does the kernel launch (the grid), what resources does each
//! CTA reserve (the [`gpu_sim::Footprint`]), and how many tensor FLOPs / HBM
//! bytes does each CTA consume. Everything else — wave quantization,
//! co-location, contention, utilization — is left to the simulator, exactly
//! as it is left to the hardware on a real GPU.
//!
//! # Example: the prefill/decode utilization gap (Figure 1)
//!
//! ```
//! use attn_kernels::{AttentionConfig, DecodeKernel, DecodeRequest, PrefillChunk, PrefillKernel};
//! use gpu_sim::{Engine, GpuConfig};
//!
//! let cfg = AttentionConfig::llama3_8b();
//! let gpu = GpuConfig::a100_80gb();
//! let engine = Engine::new(gpu.clone());
//!
//! let prefill = PrefillKernel::flash_attention()
//!     .launch("prefill", &PrefillChunk::new(4096, 0), &cfg, &gpu);
//! let decode = DecodeKernel::flash_attention()
//!     .launch("decode", &vec![DecodeRequest::new(4096); 128], &cfg, &gpu);
//!
//! let p = engine.run_kernel(prefill)?;
//! let d = engine.run_kernel(decode)?;
//! assert!(p.compute_utilization() > d.compute_utilization());
//! assert!(d.memory_utilization() > p.memory_utilization());
//! # Ok::<(), gpu_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analytic;
mod batch;
mod batched;
mod config;
mod cost;
mod decode;
mod prefill;
mod tiles;

pub use analytic::{
    canonical_decodes, quantize_tokens, AnalyticCost, AttentionEstimator, AttentionStrategy,
};
pub use batch::{DecodeRequest, HybridBatch, PrefillChunk};
pub use batched::BatchedPrefillKernel;
pub use config::AttentionConfig;
pub use cost::{
    attention_flops_per_head, hbm_bytes_with_l2, kv_bytes_per_head, q_bytes_per_head,
    KERNEL_LAUNCH_OVERHEAD,
};
pub use decode::{DecodeKernel, QueryPadding};
pub use prefill::{PrefillKernel, SplitPolicy};
pub use tiles::{TileShape, MIN_Q_TILE};
