//! Tile shapes and their shared-memory / efficiency consequences.
//!
//! FlashAttention-style kernels process attention in 2-D tiles: a block of
//! `q` query rows against a block of `kv` key/value columns. The tile shape
//! determines shared-memory usage (and therefore SM occupancy), tensor-core
//! efficiency, and — for decode, where the real query length per request is
//! only the GQA group size — how much *redundant* compute the kernel performs
//! due to padding (§4.2.1 of the paper).

use crate::config::AttentionConfig;

/// Minimum query-tile length supported by CUTLASS tensor-op MMA shapes on
/// A100 (the paper uses this as the POD decode tile length).
pub const MIN_Q_TILE: usize = 16;

/// A (query, key/value) tile shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileShape {
    /// Rows of the tile along the query sequence-length dimension.
    pub q: usize,
    /// Columns of the tile along the key/value dimension.
    pub kv: usize,
}

impl TileShape {
    /// A new tile shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(q: usize, kv: usize) -> Self {
        assert!(q > 0 && kv > 0, "tile dimensions must be positive");
        TileShape { q, kv }
    }

    /// FlashAttention-2's default prefill tile on A100 for head dim 128.
    pub fn fa2_prefill() -> Self {
        TileShape::new(128, 64)
    }

    /// FlashAttention's default decode (split-KV) tile: QSL padded to 64.
    pub fn fa_decode() -> Self {
        TileShape::new(64, 128)
    }

    /// POD-Attention's decode tile: the minimum query length (16) to avoid
    /// redundant tensor-core work that would interfere with co-located
    /// prefill CTAs.
    pub fn pod_decode() -> Self {
        TileShape::new(MIN_Q_TILE, 64)
    }

    /// POD-Attention's prefill tile in the 2-CTAs-per-SM configuration.
    pub fn pod_prefill_2cta() -> Self {
        TileShape::new(128, 64)
    }

    /// POD-Attention's prefill tile in the 4-CTAs-per-SM configuration
    /// (smaller tiles so more CTAs fit per SM).
    pub fn pod_prefill_4cta() -> Self {
        TileShape::new(64, 32)
    }

    /// Shared memory (bytes) a CTA using this tile needs: the Q tile plus
    /// double-buffered K and V tiles, in the element dtype.
    pub fn shared_mem_bytes(&self, cfg: &AttentionConfig) -> usize {
        let d = cfg.head_dim;
        let e = cfg.dtype_bytes;
        (self.q * d + 2 * self.kv * d) * e
    }

    /// Approximate fraction of tensor-core peak a kernel using this tile
    /// achieves on its matrix multiplies. Larger tiles amortize instruction
    /// overheads and memory latencies better; this matches the commonly
    /// observed ~60–70 % of peak for FlashAttention-2 at (128, 64) tiles.
    pub fn tensor_efficiency(&self) -> f64 {
        match self.q {
            q if q >= 128 => 0.65,
            q if q >= 64 => 0.58,
            q if q >= 32 => 0.48,
            _ => 0.38,
        }
    }

    /// Number of query tiles needed to cover `q_len` query rows.
    pub fn q_tiles(&self, q_len: usize) -> usize {
        q_len.div_ceil(self.q)
    }

    /// Number of KV tiles needed to cover `kv_len` keys.
    pub fn kv_tiles(&self, kv_len: usize) -> usize {
        kv_len.div_ceil(self.kv)
    }
}

impl std::fmt::Display for TileShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.q, self.kv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tiles_match_paper() {
        assert_eq!(TileShape::fa2_prefill(), TileShape::new(128, 64));
        assert_eq!(TileShape::fa_decode().q, 64);
        assert_eq!(TileShape::pod_decode().q, MIN_Q_TILE);
    }

    #[test]
    fn shared_memory_for_paper_tiles() {
        let cfg = AttentionConfig::llama3_8b();
        // (128*128 + 2*64*128) * 2 bytes = 64 KiB.
        assert_eq!(TileShape::fa2_prefill().shared_mem_bytes(&cfg), 64 * 1024);
        // (64*128 + 2*128*128) * 2 bytes = 80 KiB: occupancy 2 on an A100,
        // so a 216-CTA decode grid is exactly two waves (Figure 6).
        assert_eq!(TileShape::fa_decode().shared_mem_bytes(&cfg), 80 * 1024);
        // POD decode tile is much smaller: (16*128 + 2*64*128)*2 = 36 KiB.
        assert_eq!(TileShape::pod_decode().shared_mem_bytes(&cfg), 36 * 1024);
    }

    #[test]
    fn efficiency_increases_with_tile_size() {
        let small = TileShape::new(16, 32).tensor_efficiency();
        let medium = TileShape::new(64, 64).tensor_efficiency();
        let large = TileShape::new(128, 64).tensor_efficiency();
        assert!(small < medium && medium < large);
        assert!(large <= 1.0 && small > 0.0);
    }

    #[test]
    fn tile_counts_round_up() {
        let t = TileShape::new(128, 64);
        assert_eq!(t.q_tiles(1), 1);
        assert_eq!(t.q_tiles(128), 1);
        assert_eq!(t.q_tiles(129), 2);
        assert_eq!(t.kv_tiles(4096), 64);
        assert_eq!(t.kv_tiles(4097), 65);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_rejected() {
        let _ = TileShape::new(0, 64);
    }

    #[test]
    fn display_formats_pair() {
        assert_eq!(TileShape::new(16, 32).to_string(), "(16, 32)");
    }
}
