//! Work-model of FlashAttention / FlashDecoding / FlashInfer *decode*
//! attention kernels.
//!
//! Decode attention processes a single new query token per request (or the
//! GQA group of query heads that share a KV head), so its tensor-core work is
//! negligible and its runtime is governed by streaming each request's KV
//! cache from HBM. The kernel grid is
//! `(requests) × (KV heads per GPU) × (KV splits)`; FlashDecoding adds the KV
//! splits when the grid would otherwise leave SMs idle.

use crate::batch::DecodeRequest;
use crate::config::AttentionConfig;
use crate::cost::{attention_flops_per_head, kv_bytes_per_head, q_bytes_per_head};
use crate::tiles::TileShape;
use gpu_sim::{CtaWork, Footprint, GpuConfig, KernelLaunch, OpClass, WorkUnit};

/// How many query rows the decode kernel actually runs through the tensor
/// cores per CTA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPadding {
    /// Pad only to the GQA group size, rounded up to the 16-row MMA
    /// granularity. This is what the production FlashAttention / FlashInfer
    /// decode paths achieve, and why Figure 1 measures <10 % compute
    /// utilization for decode attention.
    GroupGranularity,
    /// Pad all the way to the tile's query dimension, so redundant compute
    /// grows with the tile (the design-space exploration of Figure 10 and the
    /// behaviour of prefill-style kernels applied to decodes).
    FullTile,
}

/// Configuration of a decode attention kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeKernel {
    /// Tile shape. The query dimension determines the CTA's shared-memory
    /// footprint and — under [`QueryPadding::FullTile`] — its redundant
    /// compute (Figure 10a).
    pub tile: TileShape,
    /// Threads per CTA.
    pub threads: usize,
    /// Fraction of peak HBM bandwidth the kernel's access pattern achieves.
    pub bandwidth_efficiency: f64,
    /// Whether the kernel applies FlashDecoding-style KV splitting when the
    /// grid does not fill the GPU.
    pub split_kv: bool,
    /// Query-row padding behaviour.
    pub padding: QueryPadding,
}

impl DecodeKernel {
    /// FlashAttention's decode kernel (`flash_fwd_splitkv`), tile (64, 128).
    pub fn flash_attention() -> Self {
        DecodeKernel {
            tile: TileShape::fa_decode(),
            threads: 128,
            bandwidth_efficiency: 0.88,
            split_kv: true,
            padding: QueryPadding::GroupGranularity,
        }
    }

    /// FlashInfer's decode kernel: pads queries only to the GQA group size
    /// (less redundant compute) and sustains slightly higher bandwidth,
    /// giving it the modest edge over FlashAttention the paper reports for
    /// FI_Serial.
    pub fn flashinfer() -> Self {
        DecodeKernel {
            tile: TileShape::new(16, 64),
            threads: 128,
            bandwidth_efficiency: 0.95,
            split_kv: true,
            padding: QueryPadding::GroupGranularity,
        }
    }

    /// The decode configuration POD-Attention uses inside the fused kernel:
    /// minimum query tile so decode's redundant compute does not steal tensor
    /// cores from co-located prefill CTAs.
    pub fn pod() -> Self {
        DecodeKernel {
            tile: TileShape::pod_decode(),
            threads: 128,
            bandwidth_efficiency: 0.88,
            split_kv: true,
            padding: QueryPadding::GroupGranularity,
        }
    }

    /// Use a specific tile shape.
    pub fn with_tile(mut self, tile: TileShape) -> Self {
        self.tile = tile;
        self
    }

    /// Pad queries to the full tile (Figure 10's design-space exploration).
    pub fn with_full_tile_padding(mut self) -> Self {
        self.padding = QueryPadding::FullTile;
        self
    }

    /// Disable KV splitting.
    pub fn without_split_kv(mut self) -> Self {
        self.split_kv = false;
        self
    }

    /// Per-CTA resource footprint.
    pub fn footprint(&self, cfg: &AttentionConfig) -> Footprint {
        Footprint::new(self.threads, self.tile.shared_mem_bytes(cfg))
    }

    /// Number of KV splits used for a batch of `batch_size` requests:
    /// enough to give every SM at least one CTA, capped by the KV length.
    pub fn num_splits(
        &self,
        batch_size: usize,
        max_context: usize,
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> usize {
        if !self.split_kv || batch_size == 0 {
            return 1;
        }
        let base = batch_size * cfg.kv_heads_per_gpu();
        if base >= gpu.num_sms {
            return 1;
        }
        let wanted = gpu.num_sms.div_ceil(base);
        wanted.min(self.tile.kv_tiles(max_context).max(1)).max(1)
    }

    /// Build the per-CTA work units for a batch of decode requests.
    ///
    /// Each unit corresponds to one CTA of the grid
    /// `(requests) × (KV heads per GPU) × (KV splits)`.
    pub fn build_units(
        &self,
        decodes: &[DecodeRequest],
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> Vec<WorkUnit> {
        if decodes.is_empty() {
            return Vec::new();
        }
        let kv_heads = cfg.kv_heads_per_gpu();
        let max_context = decodes.iter().map(|r| r.context_len).max().unwrap_or(0);
        let splits = self.num_splits(decodes.len(), max_context, cfg, gpu);

        let mut units = Vec::with_capacity(decodes.len() * kv_heads * splits);
        for req in decodes {
            let (flops, bytes) = self.unit_work(req.context_len, splits, cfg);
            for _h in 0..kv_heads {
                for _s in 0..splits {
                    units.push(WorkUnit::new(OpClass::Decode, flops, bytes));
                }
            }
        }
        units
    }

    /// Tensor FLOPs and HBM bytes of *one* CTA serving one request at
    /// `context_len` under `splits` KV splits. Every CTA of the request's
    /// `(KV heads) × (splits)` sub-grid performs the same work, which is what
    /// lets [`DecodeKernel::aggregate_work`] price a batch in O(1) per
    /// distinct context length.
    fn unit_work(&self, context_len: usize, splits: usize, cfg: &AttentionConfig) -> (f64, f64) {
        let group = cfg.group_size();
        let d = cfg.head_dim;
        // Query rows actually run through the tensor cores per CTA.
        let padded_q = match self.padding {
            QueryPadding::GroupGranularity => group.div_ceil(16).max(1) * 16,
            QueryPadding::FullTile => self.tile.q.max(group),
        } as f64;
        let kv_per_split = (context_len as f64 / splits as f64).max(1.0);
        let flops = attention_flops_per_head(padded_q, kv_per_split, d);
        let mut bytes = kv_bytes_per_head(kv_per_split, cfg) + q_bytes_per_head(group as f64, cfg);
        if splits > 1 {
            // Partial output written in fp32 and re-read by the reduction
            // pass.
            bytes += 2.0 * group as f64 * (d * 4) as f64;
        }
        (flops, bytes / self.bandwidth_efficiency)
    }

    /// Aggregate `(flops, bytes, ctas)` of a batch described by its
    /// `(count, total context, max context)` summary — one request at
    /// `max_context`, the remaining `count - 1` sharing the rest evenly —
    /// plus a shared/unique token split: `dedup_tokens` of the total context
    /// are shared-prefix KV that is streamed **once per group** instead of
    /// once per request (the CoDec-style prefix-shared decode variant), so
    /// their redundant HBM reads are subtracted from the memory side. FLOPs
    /// and the CTA grid are unchanged: every request still computes
    /// attention over its full context, only the duplicate KV traffic is
    /// saved. With `dedup_tokens == 0` the result is bit-for-bit identical
    /// to a dedup-unaware aggregate.
    ///
    /// Agrees with summing [`DecodeKernel::build_units`] over the same
    /// canonical batch, without materializing the grid — the attention
    /// estimator's memoized fast path calls this on cache misses.
    ///
    /// `dedup_tokens` is clamped to `total_context - max_context`: one full
    /// pass over the largest request's context can never be elided, which
    /// also bounds any over-declared sharing from an inconsistent caller.
    ///
    /// # Panics
    ///
    /// Debug builds assert `count * max_context >= total_context` (for
    /// `count > 0`) — an inconsistent aggregate would otherwise be priced
    /// silently as garbage.
    pub fn aggregate_work(
        &self,
        count: usize,
        total_context: usize,
        max_context: usize,
        dedup_tokens: usize,
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> (f64, f64, usize) {
        if count == 0 {
            return (0.0, 0.0, 0);
        }
        debug_assert!(
            count.saturating_mul(max_context.max(1)) >= total_context,
            "inconsistent decode aggregate: count={count} max={max_context} total={total_context}"
        );
        let kv_heads = cfg.kv_heads_per_gpu();
        let max_context = max_context.clamp(1, total_context.max(1));
        let splits = self.num_splits(count, max_context, cfg, gpu);
        let units_per_req = (kv_heads * splits) as f64;
        let (f_max, b_max) = self.unit_work(max_context, splits, cfg);
        let mut flops = f_max * units_per_req;
        let mut bytes = b_max * units_per_req;
        if count > 1 {
            let rest = (total_context.saturating_sub(max_context) / (count - 1)).max(1);
            let (f_rest, b_rest) = self.unit_work(rest, splits, cfg);
            flops += f_rest * units_per_req * (count - 1) as f64;
            bytes += b_rest * units_per_req * (count - 1) as f64;
        }
        if dedup_tokens > 0 {
            let dedup = dedup_tokens.min(total_context.saturating_sub(max_context));
            bytes -= self.dedup_bytes_saved(dedup, cfg);
        }
        (flops, bytes, count * kv_heads * splits)
    }

    /// HBM bytes saved by not re-reading `dedup_tokens` of shared-prefix KV:
    /// one K/V pass per KV head, at this kernel's bandwidth efficiency (the
    /// same scaling [`DecodeKernel::unit_work`] applies to the reads being
    /// elided).
    pub(crate) fn dedup_bytes_saved(&self, dedup_tokens: usize, cfg: &AttentionConfig) -> f64 {
        kv_bytes_per_head(dedup_tokens as f64, cfg) * cfg.kv_heads_per_gpu() as f64
            / self.bandwidth_efficiency
    }

    /// Total FLOPs (including padding) across the batch.
    pub fn total_flops(
        &self,
        decodes: &[DecodeRequest],
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> f64 {
        self.build_units(decodes, cfg, gpu)
            .iter()
            .map(|u| u.flops)
            .sum()
    }

    /// Total HBM bytes across the batch.
    pub fn total_bytes(
        &self,
        decodes: &[DecodeRequest],
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> f64 {
        self.build_units(decodes, cfg, gpu)
            .iter()
            .map(|u| u.bytes)
            .sum()
    }

    /// Build a ready-to-submit [`KernelLaunch`] for a decode batch.
    pub fn launch(
        &self,
        name: &str,
        decodes: &[DecodeRequest],
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> KernelLaunch {
        let ctas: Vec<CtaWork> = self
            .build_units(decodes, cfg, gpu)
            .into_iter()
            .map(|u| CtaWork { units: vec![u] })
            .collect();
        KernelLaunch::from_ctas(name, self.footprint(cfg), ctas)
    }
}

impl Default for DecodeKernel {
    fn default() -> Self {
        DecodeKernel::flash_attention()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Engine;

    fn cfg() -> AttentionConfig {
        AttentionConfig::yi_6b()
    }

    fn gpu() -> GpuConfig {
        GpuConfig::a100_80gb()
    }

    #[test]
    fn grid_matches_paper_figure6_setup() {
        // Yi-6B: 4 KV heads, so a batch of 54 requests uses 216 CTAs
        // (no splits needed since 216 >= 108 SMs).
        let k = DecodeKernel::flash_attention();
        let decodes = vec![DecodeRequest::new(16 * 1024); 54];
        let units = k.build_units(&decodes, &cfg(), &gpu());
        assert_eq!(units.len(), 216);
        assert_eq!(k.num_splits(54, 16 * 1024, &cfg(), &gpu()), 1);
    }

    /// The O(1) aggregate path must agree with summing the materialized grid
    /// over the same canonical batch.
    #[test]
    fn aggregate_work_matches_build_units() {
        for kernel in [DecodeKernel::flash_attention(), DecodeKernel::pod()] {
            for (count, max_ctx, rest_ctx) in [
                (54usize, 16 * 1024usize, 16 * 1024usize),
                (8, 8192, 1000),
                (1, 777, 0),
            ] {
                let mut decodes = vec![DecodeRequest::new(max_ctx)];
                decodes.extend(vec![DecodeRequest::new(rest_ctx.max(1)); count - 1]);
                let total: usize = decodes.iter().map(|d| d.context_len).sum();
                let units = kernel.build_units(&decodes, &cfg(), &gpu());
                let flops: f64 = units.iter().map(|u| u.flops).sum();
                let bytes: f64 = units.iter().map(|u| u.bytes).sum();
                let (af, ab, actas) =
                    kernel.aggregate_work(count, total, max_ctx, 0, &cfg(), &gpu());
                assert_eq!(actas, units.len());
                assert!(
                    (af - flops).abs() / flops.max(1.0) < 1e-9,
                    "{af} vs {flops}"
                );
                assert!(
                    (ab - bytes).abs() / bytes.max(1.0) < 1e-9,
                    "{ab} vs {bytes}"
                );
            }
        }
    }

    /// Every kernel variant returns the same zeroed work split for an empty
    /// batch — no variant may price phantom work (or divide by a zero count).
    #[test]
    fn empty_batch_is_zero_work_for_every_variant() {
        for kernel in [
            DecodeKernel::flash_attention(),
            DecodeKernel::flashinfer(),
            DecodeKernel::pod(),
        ] {
            assert_eq!(
                kernel.aggregate_work(0, 0, 0, 0, &cfg(), &gpu()),
                (0.0, 0.0, 0)
            );
            // Declared sharing on an empty batch is equally inert.
            assert_eq!(
                kernel.aggregate_work(0, 0, 0, 4096, &cfg(), &gpu()),
                (0.0, 0.0, 0)
            );
        }
    }

    /// An aggregate whose total exceeds `count * max` is inconsistent — no
    /// real batch can produce it — and must be rejected loudly in debug
    /// builds instead of priced as garbage.
    #[test]
    #[should_panic(expected = "inconsistent decode aggregate")]
    #[cfg(debug_assertions)]
    fn inconsistent_aggregate_is_rejected() {
        let _ = DecodeKernel::flash_attention().aggregate_work(2, 10_000, 100, 0, &cfg(), &gpu());
    }

    /// Declaring shared-prefix tokens strictly reduces the memory side while
    /// leaving FLOPs and the CTA grid untouched; declaring zero is
    /// bit-for-bit the dedup-unaware price.
    #[test]
    fn dedup_subtracts_exactly_the_shared_kv_traffic() {
        for kernel in [
            DecodeKernel::flash_attention(),
            DecodeKernel::flashinfer(),
            DecodeKernel::pod(),
        ] {
            let (count, ctx) = (16usize, 8192usize);
            let total = count * ctx;
            let (f0, b0, c0) = kernel.aggregate_work(count, total, ctx, 0, &cfg(), &gpu());
            // Half the batch shares a 2048-token prefix: 7 redundant passes.
            let dedup = 7 * 2048;
            let (f1, b1, c1) = kernel.aggregate_work(count, total, ctx, dedup, &cfg(), &gpu());
            assert_eq!(f0.to_bits(), f1.to_bits(), "flops must not change");
            assert_eq!(c0, c1, "grid must not change");
            assert!(b1 < b0, "dedup must reduce bytes: {b1} vs {b0}");
            let saved = kernel.dedup_bytes_saved(dedup, &cfg());
            assert!(((b0 - b1) - saved).abs() / saved < 1e-9);
        }
    }

    /// Over-declared sharing is clamped: the batch can never be priced below
    /// one full pass over the largest request plus per-request overheads.
    #[test]
    fn dedup_is_clamped_to_the_redundant_share() {
        let kernel = DecodeKernel::flash_attention();
        let (count, ctx) = (8usize, 4096usize);
        let total = count * ctx;
        let absurd = kernel.aggregate_work(count, total, ctx, total * 10, &cfg(), &gpu());
        let capped = kernel.aggregate_work(count, total, ctx, total - ctx, &cfg(), &gpu());
        assert_eq!(absurd.1.to_bits(), capped.1.to_bits());
        assert!(absurd.1 > 0.0);
    }

    #[test]
    fn small_batches_get_kv_splits() {
        let k = DecodeKernel::flash_attention();
        // 8 requests * 4 KV heads = 32 CTAs < 108 SMs: FlashDecoding splits.
        let splits = k.num_splits(8, 8192, &cfg(), &gpu());
        assert!(splits > 1);
        let units = k.build_units(&[DecodeRequest::new(8192); 8], &cfg(), &gpu());
        assert_eq!(units.len(), 8 * 4 * splits);
    }

    #[test]
    fn splits_preserve_kv_traffic() {
        let k = DecodeKernel::flash_attention();
        let small = vec![DecodeRequest::new(8192); 8];
        let big = vec![DecodeRequest::new(8192); 54];
        let per_req_small = k.total_bytes(&small, &cfg(), &gpu()) / 8.0;
        let per_req_big = k.total_bytes(&big, &cfg(), &gpu()) / 54.0;
        // Splitting adds only the tiny partial-output traffic.
        assert!((per_req_small - per_req_big).abs() / per_req_big < 0.01);
    }

    #[test]
    fn larger_tiles_do_more_redundant_compute() {
        let decodes = vec![DecodeRequest::new(4096); 32];
        let t128 = DecodeKernel::flash_attention()
            .with_tile(TileShape::new(128, 64))
            .with_full_tile_padding();
        let t16 = DecodeKernel::flash_attention()
            .with_tile(TileShape::new(16, 64))
            .with_full_tile_padding();
        let f128 = t128.total_flops(&decodes, &cfg(), &gpu());
        let f16 = t16.total_flops(&decodes, &cfg(), &gpu());
        assert!(f128 > 4.0 * f16, "128-tile flops {f128} vs 16-tile {f16}");
    }

    #[test]
    fn group_granularity_padding_is_independent_of_tile() {
        let decodes = vec![DecodeRequest::new(4096); 32];
        let t128 = DecodeKernel::flash_attention().with_tile(TileShape::new(128, 64));
        let t64 = DecodeKernel::flash_attention().with_tile(TileShape::new(64, 128));
        let f128 = t128.total_flops(&decodes, &cfg(), &gpu());
        let f64_ = t64.total_flops(&decodes, &cfg(), &gpu());
        assert!((f128 - f64_).abs() / f64_ < 1e-9);
    }

    /// Decode attention is memory bound: high HBM utilization, negligible
    /// compute utilization (Figure 1, middle panel).
    #[test]
    fn decode_kernel_is_memory_bound() {
        let k = DecodeKernel::flash_attention();
        let decodes = vec![DecodeRequest::new(4096); 128];
        let launch = k.launch("fa_decode", &decodes, &cfg(), &gpu());
        let report = Engine::new(gpu()).run_kernel(launch).unwrap();
        assert!(
            report.memory_utilization() > 0.5,
            "memory util {}",
            report.memory_utilization()
        );
        assert!(
            report.compute_utilization() < 0.15,
            "compute util {}",
            report.compute_utilization()
        );
    }

    #[test]
    fn flashinfer_decode_is_modestly_faster_than_flash_attention() {
        let decodes = vec![DecodeRequest::new(8 * 1024); 64];
        let engine = Engine::new(gpu());
        let fa = engine
            .run_kernel(DecodeKernel::flash_attention().launch("fa", &decodes, &cfg(), &gpu()))
            .unwrap()
            .makespan;
        let fi = engine
            .run_kernel(DecodeKernel::flashinfer().launch("fi", &decodes, &cfg(), &gpu()))
            .unwrap()
            .makespan;
        assert!(fi < fa, "FI {fi} vs FA {fa}");
        assert!(fi > fa * 0.8, "FI should only be modestly faster");
    }

    #[test]
    fn empty_batch_builds_no_work() {
        let k = DecodeKernel::flash_attention();
        assert!(k.build_units(&[], &cfg(), &gpu()).is_empty());
        assert_eq!(k.num_splits(0, 0, &cfg(), &gpu()), 1);
    }

    #[test]
    fn pod_decode_tile_shrinks_shared_memory() {
        let fa = DecodeKernel::flash_attention().footprint(&cfg());
        let pod = DecodeKernel::pod().footprint(&cfg());
        assert!(pod.shared_mem * 2 < fa.shared_mem);
    }
}
