//! Closed-form attention-cost estimator.
//!
//! The end-to-end serving experiments (Figures 12 and 15, Tables 5–7)
//! simulate hundreds of thousands of scheduler iterations, far too many to
//! run each one through the CTA-level contention engine. This module provides
//! a closed-form estimate of the attention time of a hybrid batch for each
//! execution strategy, derived from the same kernel work-models and the same
//! roofline reasoning the engine applies. The kernel-level figures use the
//! full simulation; the estimator is validated against it in tests.

use crate::batch::HybridBatch;
use crate::batched::BatchedPrefillKernel;
use crate::config::AttentionConfig;
use crate::cost::KERNEL_LAUNCH_OVERHEAD;
use crate::decode::DecodeKernel;
use crate::prefill::{PrefillKernel, SplitPolicy};
use gpu_sim::{EngineOptions, GpuConfig};

/// How the attention of a hybrid batch is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttentionStrategy {
    /// FlashAttention prefill kernel followed by FlashAttention decode kernel.
    FaSerial,
    /// FlashAttention kernels on two CUDA streams.
    FaStreams,
    /// FlashAttention kernels fused warp-parallel (HFuse).
    FaHFuse,
    /// FlashInfer prefill kernel followed by FlashInfer decode kernel.
    FiSerial,
    /// Both operations computed by FlashInfer's prefill kernel (FI_Batched).
    FiBatched,
    /// POD-Attention: fused CTA-parallel execution with SM-aware scheduling.
    Pod,
}

impl AttentionStrategy {
    /// All strategies, in the order Figure 11 reports them.
    pub fn all() -> [AttentionStrategy; 6] {
        [
            AttentionStrategy::FaSerial,
            AttentionStrategy::FaStreams,
            AttentionStrategy::FiSerial,
            AttentionStrategy::FiBatched,
            AttentionStrategy::FaHFuse,
            AttentionStrategy::Pod,
        ]
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AttentionStrategy::FaSerial => "FA_Serial",
            AttentionStrategy::FaStreams => "FA_Streams",
            AttentionStrategy::FaHFuse => "FA_HFuse",
            AttentionStrategy::FiSerial => "FI_Serial",
            AttentionStrategy::FiBatched => "FI_Batched",
            AttentionStrategy::Pod => "POD",
        }
    }
}

impl std::fmt::Display for AttentionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Estimated cost of one attention computation (all layers use the same
/// shape, so this is the per-layer cost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticCost {
    /// Time attributable to the prefill operation alone (seconds).
    pub prefill_time: f64,
    /// Time attributable to the decode operation alone (seconds).
    pub decode_time: f64,
    /// Total attention time for the batch under the chosen strategy.
    pub total_time: f64,
    /// Tensor FLOPs performed.
    pub flops: f64,
    /// HBM bytes moved.
    pub bytes: f64,
}

/// Closed-form estimator of hybrid-batch attention time.
///
/// # Examples
///
/// ```
/// use attn_kernels::{AttentionConfig, AttentionEstimator, AttentionStrategy, HybridBatch};
/// use gpu_sim::GpuConfig;
///
/// let est = AttentionEstimator::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb());
/// let batch = HybridBatch::config_c1();
/// let serial = est.estimate(&batch, AttentionStrategy::FaSerial);
/// let pod = est.estimate(&batch, AttentionStrategy::Pod);
/// assert!(pod.total_time < serial.total_time);
/// ```
#[derive(Debug, Clone)]
pub struct AttentionEstimator {
    cfg: AttentionConfig,
    gpu: GpuConfig,
    opts: EngineOptions,
}

impl AttentionEstimator {
    /// Create an estimator for a model/device pair.
    pub fn new(cfg: AttentionConfig, gpu: GpuConfig) -> Self {
        AttentionEstimator {
            cfg,
            gpu,
            opts: EngineOptions::default(),
        }
    }

    /// The attention configuration this estimator uses.
    pub fn config(&self) -> &AttentionConfig {
        &self.cfg
    }

    /// The device this estimator targets.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// Estimate the per-layer attention time of `batch` under `strategy`.
    pub fn estimate(&self, batch: &HybridBatch, strategy: AttentionStrategy) -> AnalyticCost {
        match strategy {
            AttentionStrategy::FaSerial => self.serial(batch, false),
            AttentionStrategy::FiSerial => self.serial(batch, true),
            AttentionStrategy::FaStreams => self.streams(batch),
            AttentionStrategy::FaHFuse => self.hfuse(batch),
            AttentionStrategy::FiBatched => self.batched(batch),
            AttentionStrategy::Pod => self.pod(batch),
        }
    }

    /// Roofline time of the prefill chunk alone: (compute, memory, flops, bytes).
    fn prefill_side(&self, batch: &HybridBatch, flashinfer: bool, limited_splits: bool) -> (f64, f64, f64, f64) {
        let Some(chunk) = &batch.prefill else {
            return (0.0, 0.0, 0.0, 0.0);
        };
        let mut kernel = if flashinfer {
            PrefillKernel::flashinfer()
        } else {
            PrefillKernel::flash_attention()
        };
        if limited_splits {
            kernel = kernel.with_split_policy(SplitPolicy::LimitedToTwoWaves);
        }
        let flops: f64 = kernel.total_flops(chunk, &self.cfg, &self.gpu);
        let bytes: f64 = kernel.total_bytes(chunk, &self.cfg, &self.gpu);
        let fp = kernel.footprint(&self.cfg);
        let wave = self.gpu.wave_size(fp.shared_mem, fp.threads).max(1);
        let ctas = kernel.base_ctas(chunk, &self.cfg) * kernel.num_splits(chunk, &self.cfg, &self.gpu);
        let tc = flops / self.effective_compute(ctas) * self.quantization_factor(ctas, wave);
        let tm = bytes / self.effective_bandwidth(ctas);
        (tc, tm, flops, bytes)
    }

    /// Roofline time of the decode batch alone: (compute, memory, flops, bytes).
    fn decode_side(&self, batch: &HybridBatch, flashinfer: bool, pod_tile: bool) -> (f64, f64, f64, f64) {
        if batch.decodes.is_empty() {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let kernel = if pod_tile {
            DecodeKernel::pod()
        } else if flashinfer {
            DecodeKernel::flashinfer()
        } else {
            DecodeKernel::flash_attention()
        };
        let flops = kernel.total_flops(&batch.decodes, &self.cfg, &self.gpu);
        let bytes = kernel.total_bytes(&batch.decodes, &self.cfg, &self.gpu);
        let max_ctx = batch.decodes.iter().map(|d| d.context_len).max().unwrap_or(1);
        let splits = kernel.num_splits(batch.decodes.len(), max_ctx, &self.cfg, &self.gpu);
        let ctas = batch.decodes.len() * self.cfg.kv_heads_per_gpu() * splits;
        let fp = kernel.footprint(&self.cfg);
        let wave = self.gpu.wave_size(fp.shared_mem, fp.threads).max(1);
        let tc = flops / self.effective_compute(ctas);
        let tm = bytes / self.effective_bandwidth(ctas) * self.quantization_factor(ctas, wave);
        (tc, tm, flops, bytes)
    }

    /// Compute throughput achievable by `ctas` concurrent CTAs.
    fn effective_compute(&self, ctas: usize) -> f64 {
        let per_cta = self.opts.max_cta_compute_fraction * self.gpu.sm_compute_flops();
        (ctas as f64 * per_cta).min(self.gpu.tensor_flops)
    }

    /// HBM bandwidth achievable by `ctas` concurrent CTAs.
    fn effective_bandwidth(&self, ctas: usize) -> f64 {
        let per_cta = self.opts.max_cta_bandwidth_fraction * self.gpu.hbm_bandwidth;
        (ctas as f64 * per_cta).min(self.gpu.hbm_bandwidth)
    }

    /// Slow-down from wave quantization when `ctas` spill into a partial last
    /// wave. A partial wave costs roughly a third of a full wave (its CTAs
    /// run closer to the per-CTA throughput cap because they no longer share
    /// the SM), which matches the ~25 % decode-time increase the paper
    /// observes going from 216 to 220 CTAs.
    fn quantization_factor(&self, ctas: usize, wave: usize) -> f64 {
        if ctas == 0 || wave == 0 || ctas <= wave {
            return 1.0;
        }
        let full_waves = (ctas / wave) as f64;
        let tail = ctas % wave;
        let effective_waves = full_waves + if tail > 0 { 0.3 } else { 0.0 };
        (effective_waves / (ctas as f64 / wave as f64)).max(1.0)
    }

    fn serial(&self, batch: &HybridBatch, flashinfer: bool) -> AnalyticCost {
        let (pc, pm, pf, pb) = self.prefill_side(batch, flashinfer, false);
        let (dc, dm, df, db) = self.decode_side(batch, flashinfer, false);
        let prefill_time = pc.max(pm) + overhead_if(batch.has_prefill());
        let decode_time = dc.max(dm) + overhead_if(batch.has_decode());
        AnalyticCost {
            prefill_time,
            decode_time,
            total_time: prefill_time + decode_time,
            flops: pf + df,
            bytes: pb + db,
        }
    }

    fn streams(&self, batch: &HybridBatch) -> AnalyticCost {
        let serial = self.serial(batch, false);
        if !batch.has_prefill() || !batch.has_decode() {
            return serial;
        }
        // Streams only overlap the tail of the first kernel with the second:
        // a small, quantization-sized fraction of the shorter operation.
        let longer = serial.prefill_time.max(serial.decode_time);
        let shorter = serial.prefill_time.min(serial.decode_time);
        let total = (longer + 0.85 * shorter).max(longer);
        AnalyticCost {
            total_time: total,
            ..serial
        }
    }

    fn hfuse(&self, batch: &HybridBatch) -> AnalyticCost {
        let serial = self.serial(batch, false);
        if !batch.has_prefill() || !batch.has_decode() {
            return serial;
        }
        let (pc, pm, _, _) = self.prefill_side(batch, false, false);
        let (dc, dm, _, _) = self.decode_side(batch, false, false);
        // Warp-parallel fusion guarantees co-location, so compute and memory
        // overlap; but each fused CTA is held until its slower half finishes,
        // which wastes a fraction of the machine proportional to the
        // imbalance between the two operations (the straggler effect).
        let ideal = (pc + dc).max(pm + dm);
        let p = pc.max(pm);
        let d = dc.max(dm);
        let imbalance = ((p - d).abs() / (p + d).max(1e-12)).min(1.0);
        let total = (ideal * (1.0 + 0.45 * imbalance) + KERNEL_LAUNCH_OVERHEAD)
            .min(serial.total_time * 1.15);
        AnalyticCost {
            total_time: total,
            ..serial
        }
    }

    fn batched(&self, batch: &HybridBatch) -> AnalyticCost {
        let kernel = BatchedPrefillKernel::flashinfer();
        let units = kernel.build_units(batch, &self.cfg, &self.gpu);
        let flops: f64 = units.iter().map(|u| u.flops).sum();
        let bytes: f64 = units.iter().map(|u| u.bytes).sum();
        let ctas = units.len();
        let fp = kernel.footprint(&self.cfg);
        let wave = self.gpu.wave_size(fp.shared_mem, fp.threads).max(1);
        let tc = flops / self.effective_compute(ctas);
        let tm = bytes / self.effective_bandwidth(ctas);
        let total = tc.max(tm) * self.quantization_factor(ctas, wave) + KERNEL_LAUNCH_OVERHEAD;
        let serial = self.serial(batch, true);
        AnalyticCost {
            prefill_time: serial.prefill_time,
            decode_time: serial.decode_time,
            total_time: total,
            flops,
            bytes,
        }
    }

    fn pod(&self, batch: &HybridBatch) -> AnalyticCost {
        let serial = self.serial(batch, false);
        if !batch.has_prefill() || !batch.has_decode() {
            return serial;
        }
        let (pc, pm, pf, pb) = self.prefill_side(batch, false, true);
        let (dc, dm, df, db) = self.decode_side(batch, false, true);
        // CTA-parallel fusion with SM-aware scheduling: prefill keeps the
        // tensor pipes busy while decode streams the KV cache, so the fused
        // time approaches max(total compute, total memory). The overlap
        // efficiency accounts for imperfect interleaving at the start/end of
        // the kernel and residual interference on shared resources: POD
        // recovers ~85 % of the time that perfect overlap would hide.
        let overlap_efficiency = 0.85;
        let ideal = (pc + dc).max(pm + dm) + KERNEL_LAUNCH_OVERHEAD;
        let floor = pc.max(pm).max(dc.max(dm)) + KERNEL_LAUNCH_OVERHEAD;
        let saved = (serial.total_time - ideal).max(0.0) * overlap_efficiency;
        // POD never does worse than serial execution (§5.1).
        let total = (serial.total_time - saved).max(floor).min(serial.total_time);
        AnalyticCost {
            prefill_time: serial.prefill_time,
            decode_time: serial.decode_time,
            total_time: total,
            flops: pf + df,
            bytes: pb + db,
        }
    }
}

fn overhead_if(present: bool) -> f64 {
    if present {
        KERNEL_LAUNCH_OVERHEAD
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::HybridBatch;
    use gpu_sim::Engine;

    fn estimator() -> AttentionEstimator {
        AttentionEstimator::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb())
    }

    #[test]
    fn pod_beats_serial_on_hybrid_batches() {
        let est = estimator();
        for batch in [
            HybridBatch::config_c0(),
            HybridBatch::config_c1(),
            HybridBatch::config_c2(),
        ] {
            let serial = est.estimate(&batch, AttentionStrategy::FaSerial);
            let pod = est.estimate(&batch, AttentionStrategy::Pod);
            assert!(
                pod.total_time < serial.total_time,
                "POD {} vs serial {}",
                pod.total_time,
                serial.total_time
            );
            // Paper: up to 59 % faster, i.e. serial/pod <= ~1.8 and always >= 1.
            let speedup = serial.total_time / pod.total_time;
            assert!(speedup >= 1.0 && speedup < 2.2, "speedup {speedup}");
        }
    }

    #[test]
    fn pod_gain_is_largest_for_balanced_batches() {
        let est = estimator();
        let speedup = |b: &HybridBatch| {
            est.estimate(b, AttentionStrategy::FaSerial).total_time
                / est.estimate(b, AttentionStrategy::Pod).total_time
        };
        let balanced = speedup(&HybridBatch::config_c1());
        let decode_heavy = speedup(&HybridBatch::config_c0());
        assert!(balanced > decode_heavy, "balanced {balanced} vs decode-heavy {decode_heavy}");
    }

    #[test]
    fn prefill_or_decode_only_batches_gain_nothing() {
        let est = estimator();
        let prefill_only = HybridBatch::prefill_only(2048, 8192);
        let decode_only = HybridBatch::decode_only(64, 8192);
        for b in [prefill_only, decode_only] {
            let serial = est.estimate(&b, AttentionStrategy::FaSerial);
            let pod = est.estimate(&b, AttentionStrategy::Pod);
            assert!((serial.total_time - pod.total_time).abs() < 1e-9);
        }
    }

    #[test]
    fn streams_and_hfuse_fall_between_serial_and_pod() {
        let est = estimator();
        let batch = HybridBatch::config_c1();
        let serial = est.estimate(&batch, AttentionStrategy::FaSerial).total_time;
        let streams = est.estimate(&batch, AttentionStrategy::FaStreams).total_time;
        let pod = est.estimate(&batch, AttentionStrategy::Pod).total_time;
        assert!(streams <= serial);
        assert!(pod <= streams);
    }

    #[test]
    fn fi_batched_degrades_at_long_context() {
        let est = estimator();
        let long = HybridBatch::uniform(1024, 16 * 1024, 64, 16 * 1024);
        let serial = est.estimate(&long, AttentionStrategy::FaSerial).total_time;
        let batched = est.estimate(&long, AttentionStrategy::FiBatched).total_time;
        assert!(batched > serial, "batched {batched} vs serial {serial}");
    }

    #[test]
    fn fi_serial_modestly_better_than_fa_serial() {
        let est = estimator();
        let batch = HybridBatch::config_c0();
        let fa = est.estimate(&batch, AttentionStrategy::FaSerial).total_time;
        let fi = est.estimate(&batch, AttentionStrategy::FiSerial).total_time;
        assert!(fi < fa);
        assert!(fi > 0.75 * fa);
    }

    /// The analytic serial estimate tracks the CTA-level simulation.
    #[test]
    fn analytic_serial_matches_simulation() {
        let cfg = AttentionConfig::llama3_8b();
        let gpu = GpuConfig::a100_80gb();
        let est = AttentionEstimator::new(cfg, gpu.clone());
        let engine = Engine::new(gpu.clone());
        for batch in [
            HybridBatch::uniform(1024, 8 * 1024, 64, 8 * 1024),
            HybridBatch::uniform(2048, 2048, 32, 4 * 1024),
        ] {
            let analytic = est.estimate(&batch, AttentionStrategy::FaSerial).total_time;
            let prefill = PrefillKernel::flash_attention().launch(
                "p",
                &batch.prefill.unwrap(),
                &cfg,
                &gpu,
            );
            let decode =
                DecodeKernel::flash_attention().launch("d", &batch.decodes, &cfg, &gpu);
            let sim = engine.run_serial(vec![prefill, decode]).unwrap().makespan;
            let ratio = analytic / sim;
            assert!(
                (0.6..1.6).contains(&ratio),
                "analytic {analytic} vs simulated {sim} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn strategy_labels_are_unique() {
        use std::collections::HashSet;
        let set: HashSet<_> = AttentionStrategy::all().iter().map(|s| s.label()).collect();
        assert_eq!(set.len(), 6);
        assert_eq!(AttentionStrategy::Pod.to_string(), "POD");
    }
}
