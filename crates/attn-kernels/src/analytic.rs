//! Closed-form attention-cost estimator.
//!
//! The end-to-end serving experiments (Figures 12 and 15, Tables 5–7)
//! simulate hundreds of thousands of scheduler iterations, far too many to
//! run each one through the CTA-level contention engine. This module provides
//! a closed-form estimate of the attention time of a hybrid batch for each
//! execution strategy, derived from the same kernel work-models and the same
//! roofline reasoning the engine applies. The kernel-level figures use the
//! full simulation; the estimator is validated against it in tests.

use crate::batch::{DecodeRequest, HybridBatch, PrefillChunk};
use crate::batched::BatchedPrefillKernel;
use crate::config::AttentionConfig;
use crate::cost::KERNEL_LAUNCH_OVERHEAD;
use crate::decode::DecodeKernel;
use crate::prefill::{PrefillKernel, SplitPolicy};
use gpu_sim::{EngineOptions, GpuConfig};
use std::cell::RefCell;
use std::collections::HashMap;

/// Quantize a token (or CTA) count to ~1.5% relative resolution: 64 steps per
/// power of two, exact below 64. Used to form memoization keys for batch
/// shapes whose cost is smooth in the quantized quantity.
pub fn quantize_tokens(x: usize) -> usize {
    if x == 0 {
        return 0;
    }
    let g = (x.next_power_of_two() / 64).max(1);
    ((x + g / 2) / g) * g
}

/// Bound on memo entries per side before the table is cleared (a trivially
/// correct eviction policy; real sweeps stay far below this).
const MEMO_MAX_ENTRIES: usize = 1 << 16;

/// `(compute time, memory time, flops, bytes)` of one side of a hybrid batch.
type SideCost = (f64, f64, f64, f64);

/// Memoized side costs. The prefill key `(chunk_len, prior_len, flashinfer,
/// limited_splits)` is exact — the side cost is a pure function of it. The
/// decode key keeps the request count exact (it determines the CTA grid and
/// therefore wave boundaries) and quantizes the total context, the maximum
/// context and the shared-prefix dedup tokens to ~1.5% resolution, pricing
/// one canonical batch per equivalence class. Batches declaring no sharing
/// quantize to a dedup bucket of 0, so the dedup dimension adds no keys (and
/// changes no prices) for dedup-unaware callers.
#[derive(Debug, Clone, Default)]
struct SideMemo {
    prefill: HashMap<(usize, usize, bool, bool), SideCost>,
    decode: HashMap<(usize, usize, usize, usize, bool, bool), SideCost>,
}

/// How the attention of a hybrid batch is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttentionStrategy {
    /// FlashAttention prefill kernel followed by FlashAttention decode kernel.
    FaSerial,
    /// FlashAttention kernels on two CUDA streams.
    FaStreams,
    /// FlashAttention kernels fused warp-parallel (HFuse).
    FaHFuse,
    /// FlashInfer prefill kernel followed by FlashInfer decode kernel.
    FiSerial,
    /// Both operations computed by FlashInfer's prefill kernel (FI_Batched).
    FiBatched,
    /// POD-Attention: fused CTA-parallel execution with SM-aware scheduling.
    Pod,
}

impl AttentionStrategy {
    /// All strategies, in the order Figure 11 reports them.
    pub fn all() -> [AttentionStrategy; 6] {
        [
            AttentionStrategy::FaSerial,
            AttentionStrategy::FaStreams,
            AttentionStrategy::FiSerial,
            AttentionStrategy::FiBatched,
            AttentionStrategy::FaHFuse,
            AttentionStrategy::Pod,
        ]
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AttentionStrategy::FaSerial => "FA_Serial",
            AttentionStrategy::FaStreams => "FA_Streams",
            AttentionStrategy::FaHFuse => "FA_HFuse",
            AttentionStrategy::FiSerial => "FI_Serial",
            AttentionStrategy::FiBatched => "FI_Batched",
            AttentionStrategy::Pod => "POD",
        }
    }
}

impl std::fmt::Display for AttentionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Estimated cost of one attention computation (all layers use the same
/// shape, so this is the per-layer cost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticCost {
    /// Time attributable to the prefill operation alone (seconds).
    pub prefill_time: f64,
    /// Time attributable to the decode operation alone (seconds).
    pub decode_time: f64,
    /// Total attention time for the batch under the chosen strategy.
    pub total_time: f64,
    /// Tensor FLOPs performed.
    pub flops: f64,
    /// HBM bytes moved.
    pub bytes: f64,
}

/// Closed-form estimator of hybrid-batch attention time.
///
/// # Examples
///
/// ```
/// use attn_kernels::{AttentionConfig, AttentionEstimator, AttentionStrategy, HybridBatch};
/// use gpu_sim::GpuConfig;
///
/// let est = AttentionEstimator::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb());
/// let batch = HybridBatch::config_c1();
/// let serial = est.estimate(&batch, AttentionStrategy::FaSerial);
/// let pod = est.estimate(&batch, AttentionStrategy::Pod);
/// assert!(pod.total_time < serial.total_time);
/// ```
#[derive(Debug, Clone)]
pub struct AttentionEstimator {
    cfg: AttentionConfig,
    gpu: GpuConfig,
    opts: EngineOptions,
    /// Side-cost memo tables; `None` means exact (unmemoized) pricing.
    memo: Option<RefCell<SideMemo>>,
}

impl AttentionEstimator {
    /// Create an estimator for a model/device pair with side-cost
    /// memoization enabled (the default; see [`AttentionEstimator::exact`]).
    pub fn new(cfg: AttentionConfig, gpu: GpuConfig) -> Self {
        AttentionEstimator {
            cfg,
            gpu,
            opts: EngineOptions::default(),
            memo: Some(RefCell::new(SideMemo::default())),
        }
    }

    /// Create an estimator that prices every batch exactly, without the
    /// ~1.5%-resolution decode-side quantization. Used to validate the
    /// memoized fast path and by the `POD_PRICE_CACHE=0` escape hatch.
    pub fn exact(cfg: AttentionConfig, gpu: GpuConfig) -> Self {
        AttentionEstimator {
            memo: None,
            ..AttentionEstimator::new(cfg, gpu)
        }
    }

    /// Whether side-cost memoization is enabled.
    pub fn is_memoized(&self) -> bool {
        self.memo.is_some()
    }

    /// The attention configuration this estimator uses.
    pub fn config(&self) -> &AttentionConfig {
        &self.cfg
    }

    /// The device this estimator targets.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// Estimate the per-layer attention time of `batch` under `strategy`.
    pub fn estimate(&self, batch: &HybridBatch, strategy: AttentionStrategy) -> AnalyticCost {
        match strategy {
            AttentionStrategy::FaSerial => self.serial(batch, false),
            AttentionStrategy::FiSerial => self.serial(batch, true),
            AttentionStrategy::FaStreams => self.streams(batch),
            AttentionStrategy::FaHFuse => self.hfuse(batch),
            AttentionStrategy::FiBatched => self.batched(batch),
            AttentionStrategy::Pod => self.pod(batch),
        }
    }

    /// Roofline time of the prefill chunk alone: (compute, memory, flops,
    /// bytes). Memoized by exact chunk shape when memoization is on — serving
    /// sweeps price the same `(chunk_len, prior)` pair once per run instead
    /// of once per co-scheduled decode-set variation.
    fn prefill_side(
        &self,
        batch: &HybridBatch,
        flashinfer: bool,
        limited_splits: bool,
    ) -> SideCost {
        let Some(chunk) = &batch.prefill else {
            return (0.0, 0.0, 0.0, 0.0);
        };
        if let Some(memo) = &self.memo {
            let key = (chunk.chunk_len, chunk.prior_len, flashinfer, limited_splits);
            if let Some(&cost) = memo.borrow().prefill.get(&key) {
                return cost;
            }
            let cost = self.prefill_side_raw(chunk, flashinfer, limited_splits);
            let mut memo = memo.borrow_mut();
            if memo.prefill.len() >= MEMO_MAX_ENTRIES {
                memo.prefill.clear();
            }
            memo.prefill.insert(key, cost);
            return cost;
        }
        self.prefill_side_raw(chunk, flashinfer, limited_splits)
    }

    fn prefill_side_raw(
        &self,
        chunk: &PrefillChunk,
        flashinfer: bool,
        limited_splits: bool,
    ) -> SideCost {
        let mut kernel = if flashinfer {
            PrefillKernel::flashinfer()
        } else {
            PrefillKernel::flash_attention()
        };
        if limited_splits {
            kernel = kernel.with_split_policy(SplitPolicy::LimitedToTwoWaves);
        }
        // O(query tiles) aggregate: flops, bytes and the CTA count without
        // materializing the per-CTA unit list.
        let (flops, bytes, ctas) = kernel.aggregate_work(chunk, &self.cfg, &self.gpu);
        let fp = kernel.footprint(&self.cfg);
        let wave = self.gpu.wave_size(fp.shared_mem, fp.threads).max(1);
        let tc = flops / self.effective_compute(ctas) * self.quantization_factor(ctas, wave);
        let tm = bytes / self.effective_bandwidth(ctas);
        (tc, tm, flops, bytes)
    }

    /// Roofline time of the decode batch alone: (compute, memory, flops,
    /// bytes). Memoized by the `(count, quantized total context, quantized
    /// max context, quantized dedup tokens)` aggregate when memoization is
    /// on; each equivalence class is priced once, as a canonical decode set
    /// with the same aggregates. The count is kept *exact*: the CTA grid is
    /// `count × kv_heads × splits` and [`quantization_factor`] is a step
    /// function in whole waves, so rounding the count can flip a
    /// wave-quantization boundary and mis-price the batch by the cost of a
    /// partial wave (~10%) rather than the ~1.5% resolution of the token
    /// buckets.
    ///
    /// [`quantization_factor`]: AttentionEstimator::quantization_factor
    fn decode_side(&self, batch: &HybridBatch, flashinfer: bool, pod_tile: bool) -> SideCost {
        if batch.decodes.is_empty() {
            return (0.0, 0.0, 0.0, 0.0);
        }
        self.apply_spec_verify(self.decode_side_base(batch, flashinfer, pod_tile), batch)
    }

    /// Scale a decode-side cost for the extra speculative-verify query
    /// tokens the batch declares. Verify queries ride the decode's single
    /// pass over KV — memory time and bytes are untouched — but each extra
    /// query scores against the same context as the decode it extends, so
    /// attention compute grows by `(count + extra) / count`. Applied
    /// *outside* the memo, so speculation adds no decode-memo keys and a
    /// batch declaring zero is bit-for-bit unaffected (the scaling is
    /// skipped entirely).
    fn apply_spec_verify(&self, cost: SideCost, batch: &HybridBatch) -> SideCost {
        if batch.spec_verify_tokens == 0 {
            return cost;
        }
        let count = batch.decodes.len() as f64;
        let scale = (count + batch.spec_verify_tokens as f64) / count;
        let (tc, tm, flops, bytes) = cost;
        (tc * scale, tm, flops * scale, bytes)
    }

    /// The memoized (or exact) decode-side cost before speculative-verify
    /// scaling: the body of [`AttentionEstimator::decode_side`].
    fn decode_side_base(&self, batch: &HybridBatch, flashinfer: bool, pod_tile: bool) -> SideCost {
        if let Some(memo) = &self.memo {
            let count = batch.decodes.len();
            let (mut total, mut max_ctx) = (0usize, 0usize);
            for d in &batch.decodes {
                total += d.context_len;
                max_ctx = max_ctx.max(d.context_len);
            }
            // Dedup can never elide the one mandatory pass over the largest
            // context; clamping before quantization keeps the key canonical.
            let dedup = batch.kv_dedup_tokens.min(total.saturating_sub(max_ctx));
            // The total and max buckets quantize independently (~1/128
            // relative error each), which can push the quantized total just
            // past `count × quantized max` — an aggregate no real batch can
            // produce, and one `aggregate_work` rejects in debug builds.
            // Capping restores consistency within the same resolution.
            let qmax = quantize_tokens(max_ctx);
            let qtotal = quantize_tokens(total).min(count.saturating_mul(qmax));
            let key = (
                count,
                qtotal,
                qmax,
                quantize_tokens(dedup),
                flashinfer,
                pod_tile,
            );
            if let Some(&cost) = memo.borrow().decode.get(&key) {
                return cost;
            }
            let cost = self.decode_side_aggregate(key.0, key.1, key.2, key.3, flashinfer, pod_tile);
            let mut memo = memo.borrow_mut();
            if memo.decode.len() >= MEMO_MAX_ENTRIES {
                memo.decode.clear();
            }
            memo.decode.insert(key, cost);
            return cost;
        }
        self.decode_side_raw(&batch.decodes, batch.kv_dedup_tokens, flashinfer, pod_tile)
    }

    /// Price a decode batch from its `(count, total, max, dedup)` aggregate
    /// alone — O(1) instead of O(count): the miss path of the decode-side
    /// memo.
    fn decode_side_aggregate(
        &self,
        count: usize,
        total_context: usize,
        max_context: usize,
        dedup_tokens: usize,
        flashinfer: bool,
        pod_tile: bool,
    ) -> SideCost {
        if count == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let kernel = decode_kernel(flashinfer, pod_tile);
        let (flops, bytes, ctas) = kernel.aggregate_work(
            count,
            total_context,
            max_context,
            dedup_tokens,
            &self.cfg,
            &self.gpu,
        );
        let fp = kernel.footprint(&self.cfg);
        let wave = self.gpu.wave_size(fp.shared_mem, fp.threads).max(1);
        let tc = flops / self.effective_compute(ctas);
        let tm = bytes / self.effective_bandwidth(ctas) * self.quantization_factor(ctas, wave);
        (tc, tm, flops, bytes)
    }

    fn decode_side_raw(
        &self,
        decodes: &[DecodeRequest],
        dedup_tokens: usize,
        flashinfer: bool,
        pod_tile: bool,
    ) -> SideCost {
        if decodes.is_empty() {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let kernel = decode_kernel(flashinfer, pod_tile);
        // As on the prefill side: one grid build serves flops, bytes and the
        // CTA count.
        let units = kernel.build_units(decodes, &self.cfg, &self.gpu);
        let flops: f64 = units.iter().map(|u| u.flops).sum();
        let mut bytes: f64 = units.iter().map(|u| u.bytes).sum();
        if dedup_tokens > 0 {
            // Same shared/unique split as the aggregate path: redundant
            // passes over shared-prefix KV are elided, bounded by everything
            // beyond one pass over the largest request.
            let (mut total, mut max_ctx) = (0usize, 0usize);
            for d in decodes {
                total += d.context_len;
                max_ctx = max_ctx.max(d.context_len);
            }
            let dedup = dedup_tokens.min(total.saturating_sub(max_ctx));
            bytes -= kernel.dedup_bytes_saved(dedup, &self.cfg);
        }
        let ctas = units.len();
        let fp = kernel.footprint(&self.cfg);
        let wave = self.gpu.wave_size(fp.shared_mem, fp.threads).max(1);
        let tc = flops / self.effective_compute(ctas);
        let tm = bytes / self.effective_bandwidth(ctas) * self.quantization_factor(ctas, wave);
        (tc, tm, flops, bytes)
    }

    /// Compute throughput achievable by `ctas` concurrent CTAs.
    fn effective_compute(&self, ctas: usize) -> f64 {
        let per_cta = self.opts.max_cta_compute_fraction * self.gpu.sm_compute_flops();
        (ctas as f64 * per_cta).min(self.gpu.tensor_flops)
    }

    /// HBM bandwidth achievable by `ctas` concurrent CTAs.
    fn effective_bandwidth(&self, ctas: usize) -> f64 {
        let per_cta = self.opts.max_cta_bandwidth_fraction * self.gpu.hbm_bandwidth;
        (ctas as f64 * per_cta).min(self.gpu.hbm_bandwidth)
    }

    /// Slow-down from wave quantization when `ctas` spill into a partial last
    /// wave. A partial wave costs roughly a third of a full wave (its CTAs
    /// run closer to the per-CTA throughput cap because they no longer share
    /// the SM), which matches the ~25 % decode-time increase the paper
    /// observes going from 216 to 220 CTAs.
    fn quantization_factor(&self, ctas: usize, wave: usize) -> f64 {
        if ctas == 0 || wave == 0 || ctas <= wave {
            return 1.0;
        }
        let full_waves = (ctas / wave) as f64;
        let tail = ctas % wave;
        let effective_waves = full_waves + if tail > 0 { 0.3 } else { 0.0 };
        (effective_waves / (ctas as f64 / wave as f64)).max(1.0)
    }

    fn serial(&self, batch: &HybridBatch, flashinfer: bool) -> AnalyticCost {
        let (pc, pm, pf, pb) = self.prefill_side(batch, flashinfer, false);
        let (dc, dm, df, db) = self.decode_side(batch, flashinfer, false);
        let prefill_time = pc.max(pm) + overhead_if(batch.has_prefill());
        let decode_time = dc.max(dm) + overhead_if(batch.has_decode());
        AnalyticCost {
            prefill_time,
            decode_time,
            total_time: prefill_time + decode_time,
            flops: pf + df,
            bytes: pb + db,
        }
    }

    fn streams(&self, batch: &HybridBatch) -> AnalyticCost {
        let serial = self.serial(batch, false);
        if !batch.has_prefill() || !batch.has_decode() {
            return serial;
        }
        // Streams only overlap the tail of the first kernel with the second:
        // a small, quantization-sized fraction of the shorter operation.
        let longer = serial.prefill_time.max(serial.decode_time);
        let shorter = serial.prefill_time.min(serial.decode_time);
        let total = (longer + 0.85 * shorter).max(longer);
        AnalyticCost {
            total_time: total,
            ..serial
        }
    }

    fn hfuse(&self, batch: &HybridBatch) -> AnalyticCost {
        let serial = self.serial(batch, false);
        if !batch.has_prefill() || !batch.has_decode() {
            return serial;
        }
        let (pc, pm, _, _) = self.prefill_side(batch, false, false);
        let (dc, dm, _, _) = self.decode_side(batch, false, false);
        // Warp-parallel fusion guarantees co-location, so compute and memory
        // overlap; but each fused CTA is held until its slower half finishes,
        // which wastes a fraction of the machine proportional to the
        // imbalance between the two operations (the straggler effect).
        let ideal = (pc + dc).max(pm + dm);
        let p = pc.max(pm);
        let d = dc.max(dm);
        let imbalance = ((p - d).abs() / (p + d).max(1e-12)).min(1.0);
        let total = (ideal * (1.0 + 0.45 * imbalance) + KERNEL_LAUNCH_OVERHEAD)
            .min(serial.total_time * 1.15);
        AnalyticCost {
            total_time: total,
            ..serial
        }
    }

    fn batched(&self, batch: &HybridBatch) -> AnalyticCost {
        // FI_Batched runs everything through the prefill kernel's grid and
        // has no per-group KV streaming to share, so it ignores
        // [`HybridBatch::kv_dedup_tokens`] — matching the real kernel, which
        // gains nothing from prefix-shared decodes. It likewise ignores
        // [`HybridBatch::spec_verify_tokens`]: the serving layer only forms
        // speculative batches on the FA/POD strategies it deploys.
        let kernel = BatchedPrefillKernel::flashinfer();
        let units = kernel.build_units(batch, &self.cfg, &self.gpu);
        let flops: f64 = units.iter().map(|u| u.flops).sum();
        let bytes: f64 = units.iter().map(|u| u.bytes).sum();
        let ctas = units.len();
        let fp = kernel.footprint(&self.cfg);
        let wave = self.gpu.wave_size(fp.shared_mem, fp.threads).max(1);
        let tc = flops / self.effective_compute(ctas);
        let tm = bytes / self.effective_bandwidth(ctas);
        let total = tc.max(tm) * self.quantization_factor(ctas, wave) + KERNEL_LAUNCH_OVERHEAD;
        let serial = self.serial(batch, true);
        AnalyticCost {
            prefill_time: serial.prefill_time,
            decode_time: serial.decode_time,
            total_time: total,
            flops,
            bytes,
        }
    }

    fn pod(&self, batch: &HybridBatch) -> AnalyticCost {
        let serial = self.serial(batch, false);
        if !batch.has_prefill() || !batch.has_decode() {
            return serial;
        }
        let (pc, pm, pf, pb) = self.prefill_side(batch, false, true);
        let (dc, dm, df, db) = self.decode_side(batch, false, true);
        // CTA-parallel fusion with SM-aware scheduling: prefill keeps the
        // tensor pipes busy while decode streams the KV cache, so the fused
        // time approaches max(total compute, total memory). The overlap
        // efficiency accounts for imperfect interleaving at the start/end of
        // the kernel and residual interference on shared resources: POD
        // recovers ~85 % of the time that perfect overlap would hide.
        let overlap_efficiency = 0.85;
        let ideal = (pc + dc).max(pm + dm) + KERNEL_LAUNCH_OVERHEAD;
        let floor = pc.max(pm).max(dc.max(dm)) + KERNEL_LAUNCH_OVERHEAD;
        let saved = (serial.total_time - ideal).max(0.0) * overlap_efficiency;
        // POD never does worse than serial execution (§5.1).
        let total = (serial.total_time - saved)
            .max(floor)
            .min(serial.total_time);
        AnalyticCost {
            prefill_time: serial.prefill_time,
            decode_time: serial.decode_time,
            total_time: total,
            flops: pf + df,
            bytes: pb + db,
        }
    }
}

fn overhead_if(present: bool) -> f64 {
    if present {
        KERNEL_LAUNCH_OVERHEAD
    } else {
        0.0
    }
}

/// The canonical decode set of a `(count, total context, max context)`
/// aggregate: one request carries the maximum context, the rest share the
/// remainder evenly. This is the single definition of the equivalence class
/// shared by [`DecodeKernel::aggregate_work`] (which prices it in closed
/// form) and the serving layer's batch-price cache (which materializes it);
/// for uniform batches it reproduces the original batch exactly.
pub fn canonical_decodes(
    count: usize,
    total_context: usize,
    max_context: usize,
) -> Vec<DecodeRequest> {
    if count == 0 {
        return Vec::new();
    }
    let max_context = max_context.clamp(1, total_context.max(1));
    let mut decodes = Vec::with_capacity(count);
    decodes.push(DecodeRequest::new(max_context));
    if count > 1 {
        let rest = (total_context.saturating_sub(max_context) / (count - 1)).max(1);
        decodes.extend(vec![DecodeRequest::new(rest); count - 1]);
    }
    decodes
}

/// The decode-kernel variant a strategy's flags select.
fn decode_kernel(flashinfer: bool, pod_tile: bool) -> DecodeKernel {
    if pod_tile {
        DecodeKernel::pod()
    } else if flashinfer {
        DecodeKernel::flashinfer()
    } else {
        DecodeKernel::flash_attention()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::HybridBatch;
    use gpu_sim::Engine;

    fn estimator() -> AttentionEstimator {
        AttentionEstimator::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb())
    }

    #[test]
    fn pod_beats_serial_on_hybrid_batches() {
        let est = estimator();
        for batch in [
            HybridBatch::config_c0(),
            HybridBatch::config_c1(),
            HybridBatch::config_c2(),
        ] {
            let serial = est.estimate(&batch, AttentionStrategy::FaSerial);
            let pod = est.estimate(&batch, AttentionStrategy::Pod);
            assert!(
                pod.total_time < serial.total_time,
                "POD {} vs serial {}",
                pod.total_time,
                serial.total_time
            );
            // Paper: up to 59 % faster, i.e. serial/pod <= ~1.8 and always >= 1.
            let speedup = serial.total_time / pod.total_time;
            assert!((1.0..2.2).contains(&speedup), "speedup {speedup}");
        }
    }

    #[test]
    fn pod_gain_is_largest_for_balanced_batches() {
        let est = estimator();
        let speedup = |b: &HybridBatch| {
            est.estimate(b, AttentionStrategy::FaSerial).total_time
                / est.estimate(b, AttentionStrategy::Pod).total_time
        };
        let balanced = speedup(&HybridBatch::config_c1());
        let decode_heavy = speedup(&HybridBatch::config_c0());
        assert!(
            balanced > decode_heavy,
            "balanced {balanced} vs decode-heavy {decode_heavy}"
        );
    }

    #[test]
    fn prefill_or_decode_only_batches_gain_nothing() {
        let est = estimator();
        let prefill_only = HybridBatch::prefill_only(2048, 8192);
        let decode_only = HybridBatch::decode_only(64, 8192);
        for b in [prefill_only, decode_only] {
            let serial = est.estimate(&b, AttentionStrategy::FaSerial);
            let pod = est.estimate(&b, AttentionStrategy::Pod);
            assert!((serial.total_time - pod.total_time).abs() < 1e-9);
        }
    }

    #[test]
    fn streams_and_hfuse_fall_between_serial_and_pod() {
        let est = estimator();
        let batch = HybridBatch::config_c1();
        let serial = est.estimate(&batch, AttentionStrategy::FaSerial).total_time;
        let streams = est
            .estimate(&batch, AttentionStrategy::FaStreams)
            .total_time;
        let pod = est.estimate(&batch, AttentionStrategy::Pod).total_time;
        assert!(streams <= serial);
        assert!(pod <= streams);
    }

    #[test]
    fn fi_batched_degrades_at_long_context() {
        let est = estimator();
        let long = HybridBatch::uniform(1024, 16 * 1024, 64, 16 * 1024);
        let serial = est.estimate(&long, AttentionStrategy::FaSerial).total_time;
        let batched = est.estimate(&long, AttentionStrategy::FiBatched).total_time;
        assert!(batched > serial, "batched {batched} vs serial {serial}");
    }

    #[test]
    fn fi_serial_modestly_better_than_fa_serial() {
        let est = estimator();
        let batch = HybridBatch::config_c0();
        let fa = est.estimate(&batch, AttentionStrategy::FaSerial).total_time;
        let fi = est.estimate(&batch, AttentionStrategy::FiSerial).total_time;
        assert!(fi < fa);
        assert!(fi > 0.75 * fa);
    }

    /// The analytic serial estimate tracks the CTA-level simulation.
    #[test]
    fn analytic_serial_matches_simulation() {
        let cfg = AttentionConfig::llama3_8b();
        let gpu = GpuConfig::a100_80gb();
        let est = AttentionEstimator::new(cfg, gpu.clone());
        let engine = Engine::new(gpu.clone());
        for batch in [
            HybridBatch::uniform(1024, 8 * 1024, 64, 8 * 1024),
            HybridBatch::uniform(2048, 2048, 32, 4 * 1024),
        ] {
            let analytic = est.estimate(&batch, AttentionStrategy::FaSerial).total_time;
            let prefill =
                PrefillKernel::flash_attention().launch("p", &batch.prefill.unwrap(), &cfg, &gpu);
            let decode = DecodeKernel::flash_attention().launch("d", &batch.decodes, &cfg, &gpu);
            let sim = engine.run_serial(vec![prefill, decode]).unwrap().makespan;
            let ratio = analytic / sim;
            assert!(
                (0.6..1.6).contains(&ratio),
                "analytic {analytic} vs simulated {sim} (ratio {ratio})"
            );
        }
    }

    /// The memoized fast path agrees with exact pricing within the decode
    /// quantization resolution, for every strategy, including heterogeneous
    /// decode contexts.
    #[test]
    fn memoized_estimates_track_exact_estimates() {
        let cfg = AttentionConfig::llama3_8b();
        let gpu = GpuConfig::a100_80gb();
        let memoized = AttentionEstimator::new(cfg, gpu.clone());
        let exact = AttentionEstimator::exact(cfg, gpu);
        assert!(memoized.is_memoized());
        assert!(!exact.is_memoized());
        let mut heterogeneous = HybridBatch::uniform(1024, 9 * 1024, 0, 0);
        for i in 0..70 {
            heterogeneous.push_decode(4 * 1024 + 137 * i);
        }
        for batch in [
            HybridBatch::config_c0(),
            HybridBatch::config_c1(),
            HybridBatch::uniform(512, 5000, 33, 7777),
            heterogeneous,
            // Wave-quantization boundary: 217 decodes x 4 KV heads = 868
            // CTAs, one CTA into a partial wave. Rounding the count to 216
            // (exactly 4 waves) used to mis-price this batch by ~11%; the
            // memo key keeps the count exact precisely for this case.
            HybridBatch::uniform(512, 4096, 217, 2085),
            HybridBatch::uniform(512, 4096, 216, 2085),
        ] {
            for strategy in AttentionStrategy::all() {
                let fast = memoized.estimate(&batch, strategy).total_time;
                let slow = exact.estimate(&batch, strategy).total_time;
                let rel = (fast - slow).abs() / slow.max(1e-12);
                assert!(
                    rel < 0.03,
                    "{strategy}: memoized {fast} vs exact {slow} ({:.2}% off)",
                    rel * 100.0
                );
            }
        }
    }

    /// Uniform power-of-two batches quantize exactly, so the memoized path is
    /// bit-identical on the paper's Table 1 configurations.
    #[test]
    fn memoization_is_exact_on_uniform_batches() {
        let cfg = AttentionConfig::llama3_8b();
        let gpu = GpuConfig::a100_80gb();
        let memoized = AttentionEstimator::new(cfg, gpu.clone());
        let exact = AttentionEstimator::exact(cfg, gpu);
        let batch = HybridBatch::config_c0();
        for strategy in [AttentionStrategy::FaSerial, AttentionStrategy::Pod] {
            let fast = memoized.estimate(&batch, strategy);
            let slow = exact.estimate(&batch, strategy);
            // Identical up to float associativity (the aggregate path
            // multiplies per-unit work by counts instead of summing a grid).
            let rel = (fast.total_time - slow.total_time).abs() / slow.total_time;
            assert!(
                rel < 1e-12,
                "total {} vs {}",
                fast.total_time,
                slow.total_time
            );
            let rel_f = (fast.flops - slow.flops).abs() / slow.flops;
            assert!(rel_f < 1e-12, "flops {} vs {}", fast.flops, slow.flops);
        }
    }

    /// Declaring shared-prefix dedup strictly lowers the estimate of a
    /// memory-bound decode batch for every strategy that streams decode KV
    /// per request (FI_Batched has no per-group streaming and ignores it),
    /// and declaring zero leaves every estimate bit-for-bit unchanged.
    #[test]
    fn kv_dedup_lowers_decode_estimates_and_zero_is_inert() {
        let est = estimator();
        let base = HybridBatch::uniform(1024, 12 * 1024, 80, 12 * 1024);
        // 40 of the 80 decodes share a 4K-token prefix: 39 redundant passes.
        let deduped = base.clone().with_kv_dedup(39 * 4096);
        for strategy in AttentionStrategy::all() {
            let plain = est.estimate(&base, strategy);
            let inert = est.estimate(&base.clone().with_kv_dedup(0), strategy);
            assert_eq!(plain.total_time.to_bits(), inert.total_time.to_bits());
            assert_eq!(plain.bytes.to_bits(), inert.bytes.to_bits());
            let shared = est.estimate(&deduped, strategy);
            assert_eq!(
                plain.flops.to_bits(),
                shared.flops.to_bits(),
                "{strategy}: dedup must not change FLOPs"
            );
            if strategy == AttentionStrategy::FiBatched {
                assert_eq!(plain.total_time.to_bits(), shared.total_time.to_bits());
            } else {
                assert!(
                    shared.total_time < plain.total_time,
                    "{strategy}: {} !< {}",
                    shared.total_time,
                    plain.total_time
                );
                assert!(shared.bytes < plain.bytes, "{strategy}");
            }
        }
    }

    /// The memoized fast path tracks exact pricing on dedup-declaring
    /// batches too (the dedup bucket quantizes like the token buckets).
    #[test]
    fn memoized_dedup_estimates_track_exact_estimates() {
        let cfg = AttentionConfig::llama3_8b();
        let gpu = GpuConfig::a100_80gb();
        let memoized = AttentionEstimator::new(cfg, gpu.clone());
        let exact = AttentionEstimator::exact(cfg, gpu);
        let mut heterogeneous = HybridBatch::uniform(512, 4096, 0, 0);
        for i in 0..48 {
            heterogeneous.push_decode(6 * 1024 + 211 * i);
        }
        for batch in [
            HybridBatch::config_c0().with_kv_dedup(40 * 4096),
            HybridBatch::uniform(512, 5000, 33, 7777).with_kv_dedup(16 * 2048),
            heterogeneous.with_kv_dedup(24 * 1024),
        ] {
            for strategy in AttentionStrategy::all() {
                let fast = memoized.estimate(&batch, strategy).total_time;
                let slow = exact.estimate(&batch, strategy).total_time;
                let rel = (fast - slow).abs() / slow.max(1e-12);
                assert!(
                    rel < 0.03,
                    "{strategy}: memoized {fast} vs exact {slow} ({:.2}% off)",
                    rel * 100.0
                );
            }
        }
    }

    /// Declaring speculative-verify tokens strictly raises decode *compute*
    /// (each verify query scores against the full context) without touching
    /// bytes, for every per-request decode strategy; declaring zero leaves
    /// every estimate bit-for-bit unchanged, and speculation is never priced
    /// cheaper than the plain batch it extends.
    #[test]
    fn spec_verify_raises_decode_compute_and_zero_is_inert() {
        let est = estimator();
        // Compute-sensitive shape: large decode batch at long context.
        let base = HybridBatch::uniform(1024, 12 * 1024, 220, 12 * 1024);
        // 220 decodes each verifying 4 drafts: 3 extra queries per decode.
        let spec = base.clone().with_spec_verify(220 * 3);
        for strategy in AttentionStrategy::all() {
            let plain = est.estimate(&base, strategy);
            let inert = est.estimate(&base.clone().with_spec_verify(0), strategy);
            assert_eq!(plain.total_time.to_bits(), inert.total_time.to_bits());
            assert_eq!(plain.flops.to_bits(), inert.flops.to_bits());
            let verify = est.estimate(&spec, strategy);
            if strategy == AttentionStrategy::FiBatched {
                assert_eq!(plain.total_time.to_bits(), verify.total_time.to_bits());
                continue;
            }
            assert_eq!(
                verify.bytes.to_bits(),
                plain.bytes.to_bits(),
                "{strategy}: verify shares the decode KV pass"
            );
            assert!(
                verify.flops > plain.flops,
                "{strategy}: verify must add compute"
            );
            assert!(
                verify.total_time >= plain.total_time,
                "{strategy}: {} < {}",
                verify.total_time,
                plain.total_time
            );
        }
        // On POD the extra verify compute overlaps with decode's memory
        // streaming, so the fused penalty is smaller than serial's.
        let serial_penalty = est.estimate(&spec, AttentionStrategy::FaSerial).total_time
            - est.estimate(&base, AttentionStrategy::FaSerial).total_time;
        let pod_penalty = est.estimate(&spec, AttentionStrategy::Pod).total_time
            - est.estimate(&base, AttentionStrategy::Pod).total_time;
        assert!(
            pod_penalty <= serial_penalty,
            "POD penalty {pod_penalty} vs serial {serial_penalty}"
        );
    }

    /// Speculative-verify scaling happens outside the memo: memoized and
    /// exact estimates agree on spec-declaring batches, and pricing a
    /// spec batch does not perturb the price of its plain twin.
    #[test]
    fn memoized_spec_estimates_track_exact_estimates() {
        let cfg = AttentionConfig::llama3_8b();
        let gpu = GpuConfig::a100_80gb();
        let memoized = AttentionEstimator::new(cfg, gpu.clone());
        let exact = AttentionEstimator::exact(cfg, gpu);
        let base = HybridBatch::uniform(512, 5000, 33, 7777);
        let spec = base.clone().with_spec_verify(33 * 5);
        for strategy in AttentionStrategy::all() {
            let before = memoized.estimate(&base, strategy).total_time;
            let fast = memoized.estimate(&spec, strategy).total_time;
            let slow = exact.estimate(&spec, strategy).total_time;
            let rel = (fast - slow).abs() / slow.max(1e-12);
            assert!(
                rel < 0.03,
                "{strategy}: memoized {fast} vs exact {slow} ({:.2}% off)",
                rel * 100.0
            );
            let after = memoized.estimate(&base, strategy).total_time;
            assert_eq!(before.to_bits(), after.to_bits(), "{strategy}");
        }
    }

    #[test]
    fn quantize_tokens_resolution() {
        assert_eq!(quantize_tokens(0), 0);
        for x in [
            1usize, 17, 63, 64, 100, 1000, 4096, 12_345, 300_000, 1_500_000,
        ] {
            let q = quantize_tokens(x);
            let rel = (q as f64 - x as f64).abs() / x as f64;
            assert!(rel <= 1.0 / 64.0 + 1e-9, "quantize({x}) = {q}");
        }
        // Exact below 64 and on powers of two.
        assert_eq!(quantize_tokens(63), 63);
        assert_eq!(quantize_tokens(4096), 4096);
    }

    #[test]
    fn strategy_labels_are_unique() {
        use std::collections::HashSet;
        let set: HashSet<_> = AttentionStrategy::all().iter().map(|s| s.label()).collect();
        assert_eq!(set.len(), 6);
        assert_eq!(AttentionStrategy::Pod.to_string(), "POD");
    }
}
