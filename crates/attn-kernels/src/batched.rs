//! The FI_Batched baseline: computing prefill *and* decode attention with a
//! single prefill-optimized kernel launch.
//!
//! Some serving systems take this shortcut because it is the easiest way to
//! handle a hybrid batch (the paper cites Sarathi's original FlashInfer
//! backend and a vLLM feature request). The prefill kernel pads every decode
//! request's single query token up to its large query tile, so long-context
//! decodes waste enormous amounts of tensor-core work and the approach can be
//! slower than running the two specialized kernels serially (§5.1,
//! Figure 11).

use crate::batch::HybridBatch;
use crate::config::AttentionConfig;
use crate::cost::{
    attention_flops_per_head, hbm_bytes_with_l2, kv_bytes_per_head, q_bytes_per_head,
};
use crate::prefill::{PrefillKernel, SplitPolicy};
use crate::tiles::TileShape;
use gpu_sim::{CtaWork, Footprint, GpuConfig, KernelLaunch, OpClass, WorkUnit};

/// Work-model of a prefill-style kernel applied to an entire hybrid batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchedPrefillKernel {
    /// The underlying prefill kernel configuration.
    pub prefill: PrefillKernel,
}

impl BatchedPrefillKernel {
    /// FlashInfer's batched-prefill path (the FI_Batched baseline).
    pub fn flashinfer() -> Self {
        BatchedPrefillKernel {
            prefill: PrefillKernel::flashinfer().with_split_policy(SplitPolicy::None),
        }
    }

    /// The tile used for every sequence in the batch.
    pub fn tile(&self) -> TileShape {
        self.prefill.tile
    }

    /// Per-CTA resource footprint.
    pub fn footprint(&self, cfg: &AttentionConfig) -> Footprint {
        self.prefill.footprint(cfg)
    }

    /// Build the per-CTA work units for a hybrid batch: the prefill chunk
    /// plus one padded query tile per (decode request, query head).
    pub fn build_units(
        &self,
        batch: &HybridBatch,
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> Vec<WorkUnit> {
        let mut units = Vec::new();
        if let Some(chunk) = &batch.prefill {
            units.extend(self.prefill.build_units(chunk, cfg, gpu));
        }
        let q_heads = cfg.q_heads_per_gpu();
        let kv_heads = cfg.kv_heads_per_gpu();
        let group = cfg.group_size();
        let d = cfg.head_dim;
        let eff = self.tile().tensor_efficiency();
        let padded_q = self.tile().q as f64;

        for req in &batch.decodes {
            let kv = req.context_len as f64;
            // One CTA per query head; each pads its single real query row (or
            // GQA group) to the full prefill query tile.
            let flops_cta = attention_flops_per_head(padded_q, kv, d) / eff;
            // Every query head streams its KV head's cache; heads in the same
            // GQA group re-read the same data, partially caught by L2.
            let unique = kv_bytes_per_head(kv, cfg) * kv_heads as f64;
            let logical = kv_bytes_per_head(kv, cfg) * q_heads as f64;
            let hbm = hbm_bytes_with_l2(logical, unique, gpu.l2_cache_bytes as f64)
                + q_bytes_per_head(group as f64, cfg) * q_heads as f64;
            let bytes_cta = hbm / (q_heads as f64 * self.prefill.bandwidth_efficiency);
            for _h in 0..q_heads {
                units.push(WorkUnit::new(OpClass::Decode, flops_cta, bytes_cta));
            }
        }
        units
    }

    /// Build a ready-to-submit kernel launch for the whole hybrid batch.
    pub fn launch(
        &self,
        name: &str,
        batch: &HybridBatch,
        cfg: &AttentionConfig,
        gpu: &GpuConfig,
    ) -> KernelLaunch {
        let ctas: Vec<CtaWork> = self
            .build_units(batch, cfg, gpu)
            .into_iter()
            .map(|u| CtaWork { units: vec![u] })
            .collect();
        KernelLaunch::from_ctas(name, self.footprint(cfg), ctas)
    }
}

impl Default for BatchedPrefillKernel {
    fn default() -> Self {
        BatchedPrefillKernel::flashinfer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::DecodeKernel;
    use gpu_sim::Engine;

    fn cfg() -> AttentionConfig {
        AttentionConfig::llama3_8b()
    }

    fn gpu() -> GpuConfig {
        GpuConfig::a100_80gb()
    }

    #[test]
    fn decode_part_wastes_tensor_work() {
        let batch = HybridBatch::decode_only(32, 8 * 1024);
        let batched = BatchedPrefillKernel::flashinfer();
        let dedicated = DecodeKernel::flashinfer();
        let batched_flops: f64 = batched
            .build_units(&batch, &cfg(), &gpu())
            .iter()
            .map(|u| u.flops)
            .sum();
        let dedicated_flops = dedicated.total_flops(&batch.decodes, &cfg(), &gpu());
        // Padding a 4-row GQA group to a 128-row tile, per query head instead
        // of per KV head, wastes well over an order of magnitude of compute.
        assert!(batched_flops > 10.0 * dedicated_flops);
    }

    #[test]
    fn unit_count_is_prefill_grid_plus_one_cta_per_query_head_per_decode() {
        let batch = HybridBatch::uniform(1024, 1024, 10, 4096);
        let batched = BatchedPrefillKernel::flashinfer();
        let units = batched.build_units(&batch, &cfg(), &gpu());
        let prefill_units = batched
            .prefill
            .build_units(&batch.prefill.unwrap(), &cfg(), &gpu())
            .len();
        assert_eq!(units.len(), prefill_units + 10 * 16);
    }

    /// At long context lengths FI_Batched is slower than running the two
    /// specialized kernels serially — the paper's motivation for rejecting
    /// this "easy" approach.
    #[test]
    fn batched_is_slower_than_serial_at_long_context() {
        let batch = HybridBatch::uniform(1024, 16 * 1024, 64, 16 * 1024);
        let engine = Engine::new(gpu());

        let batched = BatchedPrefillKernel::flashinfer();
        let t_batched = engine
            .run_kernel(batched.launch("fi_batched", &batch, &cfg(), &gpu()))
            .unwrap()
            .makespan;

        let prefill = PrefillKernel::flashinfer();
        let decode = DecodeKernel::flashinfer();
        let t_serial = engine
            .run_serial(vec![
                prefill.launch("fi_prefill", &batch.prefill.unwrap(), &cfg(), &gpu()),
                decode.launch("fi_decode", &batch.decodes, &cfg(), &gpu()),
            ])
            .unwrap()
            .makespan;

        assert!(
            t_batched > t_serial,
            "FI_Batched {t_batched} should be slower than serial {t_serial} at 16K context"
        );
    }

    #[test]
    fn empty_batch_builds_nothing() {
        let batched = BatchedPrefillKernel::flashinfer();
        assert!(batched
            .build_units(&HybridBatch::new(), &cfg(), &gpu())
            .is_empty());
    }
}
