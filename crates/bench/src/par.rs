//! A minimal work-stealing parallel map over OS threads.
//!
//! The figure sweeps run many independent simulator configurations; this
//! module fans them out across `std::thread::scope` workers. The build
//! environment has no access to crates.io, so this is the std-only stand-in
//! for `rayon::par_iter` — same contract (order-preserving results, panics
//! propagate), sized for coarse-grained jobs like "simulate one serving
//! configuration".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on up to [`available_parallelism`] worker threads,
/// returning the results in input order.
///
/// Jobs are pulled from a shared index, so stragglers do not serialize the
/// sweep. Panics in `f` propagate once all workers have stopped.
///
/// [`available_parallelism`]: std::thread::available_parallelism
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = max_workers().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each job index is claimed exactly once");
                let r = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job produced a result")
        })
        .collect()
}

/// Worker count: `POD_BENCH_THREADS` if set, else the machine's available
/// parallelism. `POD_BENCH_THREADS=1` serializes the sweeps (useful when
/// comparing against the pre-parallel baseline).
fn max_workers() -> usize {
    if let Ok(v) = std::env::var("POD_BENCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(items, |x| x * 2);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn handles_empty_and_singleton() {
        assert_eq!(par_map(Vec::<usize>::new(), |x| x), Vec::<usize>::new());
        assert_eq!(par_map(vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn jobs_can_capture_shared_state() {
        let base = 10usize;
        let out = par_map(vec![1, 2, 3], |x| x + base);
        assert_eq!(out, vec![11, 12, 13]);
    }
}
