//! # pod-bench: harnesses that regenerate the paper's tables and figures
//!
//! Every table and figure in the evaluation of *POD-Attention* (ASPLOS 2025)
//! has a corresponding bench target in this crate (see `DESIGN.md` for the
//! experiment index). The targets are registered with `harness = false`, so
//! `cargo bench --workspace` runs them all and prints the same rows/series
//! the paper reports; each can also be run individually, e.g.
//!
//! ```text
//! cargo bench -p pod-bench --bench fig11_speedup_dist
//! ```
//!
//! By default the serving experiments use scaled-down request counts so the
//! full suite finishes in minutes; set `POD_FULL_EVAL=1` to run them at the
//! paper's scale.

#![warn(missing_docs)]

pub mod microbench;
pub mod online;
pub mod par;

pub use par::par_map;

/// Whether the full (paper-scale) evaluation was requested via the
/// `POD_FULL_EVAL` environment variable.
pub fn full_eval() -> bool {
    std::env::var("POD_FULL_EVAL")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// Pick `quick` or `full` depending on [`full_eval`].
pub fn scaled(quick: usize, full: usize) -> usize {
    if full_eval() {
        full
    } else {
        quick
    }
}

/// Print a section header for a figure/table harness.
pub fn heading(title: &str, note: &str) {
    println!();
    println!("==== {title} ====");
    if !note.is_empty() {
        println!("{note}");
    }
    println!();
}

/// Print an aligned table: a header row followed by data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format seconds as milliseconds with two decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

/// Format seconds with two decimals.
pub fn secs(seconds: f64) -> String {
    format!("{seconds:.2}")
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Summary of a sample distribution used by the Figure 11 style outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    /// Smallest sample.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Distribution {
    /// Compute the distribution summary of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "distribution of no samples");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let q = |f: f64| llm_serving::percentile(&sorted, f);
        Distribution {
            min: sorted[0],
            p25: q(0.25),
            median: q(0.5),
            p75: q(0.75),
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_of_known_samples() {
        let d = Distribution::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.max, 5.0);
        assert!((d.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_respects_env() {
        // The env var is not set in tests, so the quick value is used.
        if !full_eval() {
            assert_eq!(scaled(10, 100), 10);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(0.00123), "1.23");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(secs(1.234), "1.23");
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_distribution_panics() {
        let _ = Distribution::of(&[]);
    }
}
