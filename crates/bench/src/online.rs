//! Shared harness for the online-inference latency tables (Tables 5–7).

use crate::{pct, print_table, secs};
use gpu_sim::GpuConfig;
use llm_serving::{ModelConfig, ServingConfig, ServingEngine, ServingReport, Workload};

/// Run the three systems (vLLM, Sarathi, Sarathi+POD) on `workload` at one
/// load level and return their reports in that order.
pub fn run_three_systems(
    workload: &Workload,
    qps: f64,
    num_requests: usize,
    chunk_size: usize,
    seed: u64,
) -> [ServingReport; 3] {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let requests = workload.generate(num_requests, qps, seed);
    let vllm =
        ServingEngine::new(ServingConfig::vllm(model.clone(), gpu.clone())).run(requests.clone());
    let sarathi = ServingEngine::new(ServingConfig::sarathi(
        model.clone(),
        gpu.clone(),
        chunk_size,
    ))
    .run(requests.clone());
    let pod = ServingEngine::new(ServingConfig::sarathi_pod(model, gpu, chunk_size)).run(requests);
    [vllm, sarathi, pod]
}

/// Print one QPS block of a Table 5/6-style latency comparison.
pub fn print_latency_block(qps: f64, reports: &[ServingReport]) {
    println!("QPS {qps}:");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                secs(r.ttft.p50),
                secs(r.ttft.p99),
                format!("{:.3}", r.tbt.p50),
                format!("{:.3}", r.tbt.p99),
                secs(r.request_latency.p50),
                secs(r.request_latency.p99),
                pct(r.stall_fraction_200ms),
                pct(r.stall_fraction_500ms),
            ]
        })
        .collect();
    print_table(
        &[
            "System",
            "TTFT P50",
            "TTFT P99",
            "TBT P50",
            "TBT P99",
            "Latency P50",
            "Latency P99",
            "Stalls>200ms",
            "Stalls>500ms",
        ],
        &rows,
    );
    println!();
}
