//! Shared harness for the online-inference latency tables (Tables 5–7) and
//! the cluster-scaling sweeps (Figure 16).

use crate::{pct, print_table, secs};
use gpu_sim::GpuConfig;
use llm_serving::{
    Cluster, ClusterConfig, ClusterReport, ModelConfig, RequestSpec, RouterPolicy, ServingConfig,
    ServingEngine, ServingReport, Workload,
};

/// Run the three systems (vLLM, Sarathi, Sarathi+POD) on `workload` at one
/// load level and return their reports in that order.
pub fn run_three_systems(
    workload: &Workload,
    qps: f64,
    num_requests: usize,
    chunk_size: usize,
    seed: u64,
) -> [ServingReport; 3] {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let requests = workload.generate(num_requests, qps, seed);
    let vllm =
        ServingEngine::new(ServingConfig::vllm(model.clone(), gpu.clone())).run(requests.clone());
    let sarathi = ServingEngine::new(ServingConfig::sarathi(
        model.clone(),
        gpu.clone(),
        chunk_size,
    ))
    .run(requests.clone());
    let pod = ServingEngine::new(ServingConfig::sarathi_pod(model, gpu, chunk_size)).run(requests);
    [vllm, sarathi, pod]
}

/// Run one fleet configuration over a shared trace and return its report —
/// the unit of work the Figure 16 sweep fans out through `par_map`.
pub fn run_cluster(
    base: ServingConfig,
    replicas: usize,
    router: RouterPolicy,
    trace: &[RequestSpec],
) -> ClusterReport {
    Cluster::new(ClusterConfig::new(base, replicas, router)).run(trace.to_vec())
}

/// One row of a Figure 16-style cluster table: fleet shape, latency
/// percentiles, throughput and replica imbalance.
pub fn cluster_row(r: &ClusterReport) -> Vec<String> {
    vec![
        format!("{}", r.num_replicas()),
        r.router.clone(),
        r.aggregate.system.clone(),
        secs(r.aggregate.makespan),
        secs(r.aggregate.request_latency.mean),
        secs(r.aggregate.request_latency.p99),
        secs(r.aggregate.ttft.p50),
        secs(r.aggregate.ttft.p99),
        format!("{:.1}", r.requests_per_minute()),
        pct(r.aggregate.stall_fraction_200ms),
        format!("{:.2}", r.busy_imbalance),
    ]
}

/// Print a table of cluster reports (rows from [`cluster_row`]).
pub fn print_cluster_table(reports: &[&ClusterReport]) {
    let rows: Vec<Vec<String>> = reports.iter().map(|r| cluster_row(r)).collect();
    print_table(
        &[
            "Replicas",
            "Router",
            "System",
            "Makespan",
            "Lat mean",
            "Lat P99",
            "TTFT P50",
            "TTFT P99",
            "Req/min",
            "Stalls>200ms",
            "Imbalance",
        ],
        &rows,
    );
}

/// Print one QPS block of a Table 5/6-style latency comparison.
pub fn print_latency_block(qps: f64, reports: &[ServingReport]) {
    println!("QPS {qps}:");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                secs(r.ttft.p50),
                secs(r.ttft.p99),
                format!("{:.3}", r.tbt.p50),
                format!("{:.3}", r.tbt.p99),
                secs(r.request_latency.p50),
                secs(r.request_latency.p99),
                pct(r.stall_fraction_200ms),
                pct(r.stall_fraction_500ms),
            ]
        })
        .collect();
    print_table(
        &[
            "System",
            "TTFT P50",
            "TTFT P99",
            "TBT P50",
            "TBT P99",
            "Latency P50",
            "Latency P99",
            "Stalls>200ms",
            "Stalls>500ms",
        ],
        &rows,
    );
    println!();
}
