//! A minimal timing harness for the repo's own hot paths, plus the shared
//! JSON value type for machine-readable results (`BENCH_engine.json`).
//!
//! The build environment has no access to crates.io, so this stands in for
//! `criterion`: warm up, then run timed batches until both a minimum
//! duration and a minimum iteration count are reached, and report the mean
//! per-iteration time. It deliberately avoids criterion's statistical
//! machinery — the consumers are regression *trend* files committed by the
//! bench harness, not microsecond-exact claims.

use std::time::{Duration, Instant};

/// Result of timing one benchmark subject.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Subject name, e.g. `"engine/pod_c0"`.
    pub name: String,
    /// Iterations executed during the timed phase.
    pub iters: u64,
    /// Total wall-clock time of the timed phase.
    pub elapsed: Duration,
}

impl BenchResult {
    /// Mean seconds per iteration.
    pub fn secs_per_iter(&self) -> f64 {
        self.elapsed.as_secs_f64() / self.iters.max(1) as f64
    }

    /// Mean iterations per second.
    pub fn iters_per_sec(&self) -> f64 {
        let s = self.secs_per_iter();
        if s <= 0.0 {
            return 0.0;
        }
        1.0 / s
    }

    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        let per_iter = self.secs_per_iter();
        let (scaled, unit) = if per_iter >= 1.0 {
            (per_iter, "s")
        } else if per_iter >= 1e-3 {
            (per_iter * 1e3, "ms")
        } else if per_iter >= 1e-6 {
            (per_iter * 1e6, "us")
        } else {
            (per_iter * 1e9, "ns")
        };
        format!(
            "{:<44} {:>10.2} {}/iter  ({} iters)",
            self.name, scaled, unit, self.iters
        )
    }
}

/// Time `f`, discarding a warmup phase, until the timed phase has run for at
/// least `min_time` and `min_iters` iterations. The closure's return value is
/// passed through [`std::hint::black_box`] so the work is not optimized away.
pub fn bench<R, F: FnMut() -> R>(
    name: &str,
    min_time: Duration,
    min_iters: u64,
    mut f: F,
) -> BenchResult {
    // Warmup: at least one iteration and ~20% of the timed budget.
    let warm_budget = min_time / 5;
    let warm_start = Instant::now();
    loop {
        std::hint::black_box(f());
        if warm_start.elapsed() >= warm_budget {
            break;
        }
    }
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        std::hint::black_box(f());
        iters += 1;
        if iters >= min_iters && start.elapsed() >= min_time {
            break;
        }
    }
    BenchResult {
        name: name.to_string(),
        iters,
        elapsed: start.elapsed(),
    }
}

/// The JSON value type the trend files are written (and parsed back) with.
/// This is the serving crate's [`llm_serving::JsonValue`] — one wire format
/// shared by serving reports, bench trend files and the CI perf gate.
pub use llm_serving::JsonValue as Json;

/// Resolve a path relative to the repository root (two levels above this
/// crate's manifest), falling back to the current directory.
pub fn repo_root_path(file_name: &str) -> std::path::PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => std::path::Path::new(&dir).join("../..").join(file_name),
        Err(_) => std::path::PathBuf::from(file_name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_at_least_the_minimum() {
        let mut count = 0u64;
        let r = bench("t", Duration::from_millis(5), 10, || {
            count += 1;
            count
        });
        assert!(r.iters >= 10);
        assert!(count > r.iters, "warmup iterations must also run");
        assert!(r.secs_per_iter() > 0.0);
        assert!(r.iters_per_sec() > 0.0);
        assert!(r.summary().contains("t"));
    }

    #[test]
    fn json_alias_serializes_like_the_serving_writer() {
        let j = Json::obj(vec![
            ("a", Json::Num(1.5)),
            ("b", Json::Str("x\"y".to_string())),
            ("c", Json::obj(vec![("d", Json::Num(f64::NAN))])),
        ]);
        let s = j.to_string_pretty();
        assert!(s.contains("\"a\": 1.5"));
        assert!(s.contains("\\\""));
        assert!(s.contains("\"d\": null"));
        // The alias is the serving crate's parser-backed type, so the trend
        // files the benches write are parseable by the perf gate. The NaN
        // comes back as the null it was written as.
        let expected = Json::obj(vec![
            ("a", Json::Num(1.5)),
            ("b", Json::Str("x\"y".to_string())),
            ("c", Json::obj(vec![("d", Json::Null)])),
        ]);
        assert_eq!(Json::parse(&s).expect("round trip"), expected);
    }
}
