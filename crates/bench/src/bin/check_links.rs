//! CI docs gate: verify that every **relative** markdown link in the repo's
//! documentation points at a file (or directory) that actually exists.
//!
//! ```text
//! cargo run -p pod-bench --bin check_links [-- <repo-root>]
//! ```
//!
//! Scans `README.md`, `*.md` at the repository root, and `docs/*.md`.
//! External links (`http://`, `https://`, `mailto:`) and pure in-page
//! anchors (`#...`) are skipped — this gate catches the failure mode CI can
//! actually verify offline: a doc restructure that leaves `[text](docs/X.md)`
//! pointing at a renamed or deleted file. Fragments on relative links
//! (`ARCHITECTURE.md#crate-map`) are checked against the file only.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Extract the targets of inline markdown links `[text](target)` from one
/// document, skipping fenced code blocks and inline code spans (where
/// bracket syntax is code, not a link).
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut in_code = false;
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_code = !in_code,
                b']' if !in_code && i + 1 < bytes.len() && bytes[i + 1] == b'(' => {
                    if let Some(end) = line[i + 2..].find(')') {
                        out.push(line[i + 2..i + 2 + end].to_string());
                        i += 1 + end;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

/// Whether a link target is relative (checkable against the filesystem).
fn is_relative(target: &str) -> bool {
    !(target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
        || target.is_empty())
}

/// Check one markdown file; returns the broken targets.
fn broken_links(doc: &Path, root: &Path) -> Vec<String> {
    let text = match std::fs::read_to_string(doc) {
        Ok(t) => t,
        Err(e) => return vec![format!("(unreadable: {e})")],
    };
    let base = doc.parent().unwrap_or(root);
    link_targets(&text)
        .into_iter()
        .filter(|t| is_relative(t))
        .filter(|t| {
            // Strip an in-page fragment; the file itself must exist.
            let path = t.split('#').next().unwrap_or(t);
            !base.join(path).exists()
        })
        .collect()
}

/// Markdown documents the gate covers: root-level `*.md` plus `docs/*.md`.
fn docs_to_check(root: &Path) -> Vec<PathBuf> {
    let mut docs = Vec::new();
    for dir in [root.to_path_buf(), root.join("docs")] {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                docs.push(path);
            }
        }
    }
    docs.sort();
    docs
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // The bench crate lives two levels below the repository root.
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
        });
    let docs = docs_to_check(&root);
    if docs.is_empty() {
        eprintln!(
            "check_links: no markdown documents found under {}",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for doc in &docs {
        let broken = broken_links(doc, &root);
        if broken.is_empty() {
            println!(
                "  {:<40} ok",
                doc.strip_prefix(&root).unwrap_or(doc).display()
            );
        } else {
            ok = false;
            for target in broken {
                println!(
                    "  {:<40} BROKEN -> {target}",
                    doc.strip_prefix(&root).unwrap_or(doc).display()
                );
            }
        }
    }
    if ok {
        println!(
            "check_links: every relative link resolves ({} documents)",
            docs.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("check_links FAILED: broken relative links found");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_inline_links_only() {
        let text = "See [the docs](docs/ARCHITECTURE.md) and [site](https://x.y).\n\
                    ```\n[not a link](in/code.md)\n```\n\
                    Inline `[code](span.md)` is skipped, [real](README.md#anchor) is not.";
        let targets = link_targets(text);
        assert_eq!(
            targets,
            vec!["docs/ARCHITECTURE.md", "https://x.y", "README.md#anchor"]
        );
    }

    #[test]
    fn relative_filter_skips_external_and_anchors() {
        assert!(is_relative("docs/X.md"));
        assert!(is_relative("../ROADMAP.md"));
        assert!(!is_relative("https://arxiv.org/abs/2409.11155"));
        assert!(!is_relative("#glossary"));
        assert!(!is_relative("mailto:a@b.c"));
    }

    #[test]
    fn broken_and_valid_links_are_distinguished() {
        let dir = std::env::temp_dir().join("check_links_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("target.md"), "# hi\n").expect("write");
        let doc = dir.join("doc.md");
        std::fs::write(
            &doc,
            "[ok](target.md) [ok2](target.md#sec) [bad](missing.md)\n",
        )
        .expect("write");
        let broken = broken_links(&doc, &dir);
        assert_eq!(broken, vec!["missing.md"]);
    }

    #[test]
    fn the_repos_own_docs_have_no_broken_links() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for doc in docs_to_check(&root) {
            let broken = broken_links(&doc, &root);
            assert!(
                broken.is_empty(),
                "{} has broken relative links: {broken:?}",
                doc.display()
            );
        }
    }
}
