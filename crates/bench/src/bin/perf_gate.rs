//! CI perf-regression gate: compare a freshly generated `BENCH_engine.json`
//! against the committed baseline and fail (exit 1) when a gated metric
//! regressed by more than the allowed fraction.
//!
//! ```text
//! cargo run -p pod-bench --bin perf_gate -- <baseline.json> <fresh.json> [--max-drop 0.30]
//! ```
//!
//! The gated metrics are the two headline throughputs of the PR 1
//! optimization work: the contention engine's `engine.intervals_per_sec` and
//! the serving loop's `pricing.batches_priced_per_sec_memoized`. Benchmarks
//! on shared CI runners are noisy, so the default threshold is a deliberately
//! loose 30% — the gate catches "someone accidentally serialized the hot
//! loop", not single-digit drift (the uploaded trend artifact is for that).

use llm_serving::JsonValue;
use std::process::ExitCode;

/// Dotted paths into the trend file that the gate enforces, with the
/// direction "bigger is better".
const GATED_METRICS: &[&str] = &[
    "engine.intervals_per_sec",
    "pricing.batches_priced_per_sec_memoized",
];

/// Default maximum allowed fractional drop (0.30 = 30%).
const DEFAULT_MAX_DROP: f64 = 0.30;

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn metric(doc: &JsonValue, path: &str, file: &str) -> Result<f64, String> {
    let v = doc
        .get_path(path)
        .ok_or_else(|| format!("{file} has no '{path}'"))?
        .as_f64()
        .ok_or_else(|| format!("{file}: '{path}' is not a number"))?;
    if !(v.is_finite() && v > 0.0) {
        return Err(format!("{file}: '{path}' = {v} is not a positive number"));
    }
    Ok(v)
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut max_drop = DEFAULT_MAX_DROP;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-drop" {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--max-drop needs a value".to_string())?;
            max_drop = v
                .parse::<f64>()
                .map_err(|e| format!("invalid --max-drop {v}: {e}"))?;
            if !(0.0..1.0).contains(&max_drop) {
                return Err(format!("--max-drop must be in [0, 1), got {max_drop}"));
            }
            i += 2;
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return Err("usage: perf_gate <baseline.json> <fresh.json> [--max-drop 0.30]".to_string());
    };

    let baseline = load(baseline_path)?;
    let fresh = load(fresh_path)?;

    let mut ok = true;
    println!(
        "perf gate: fresh {fresh_path} vs baseline {baseline_path} (max drop {:.0}%)",
        max_drop * 100.0
    );
    for path in GATED_METRICS {
        let base = metric(&baseline, path, baseline_path)?;
        let now = metric(&fresh, path, fresh_path)?;
        let ratio = now / base;
        let verdict = if ratio >= 1.0 - max_drop {
            "ok"
        } else {
            ok = false;
            "REGRESSED"
        };
        println!(
            "  {path:<44} baseline {base:>14.1}  fresh {now:>14.1}  ({:+.1}%)  {verdict}",
            (ratio - 1.0) * 100.0
        );
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => {
            println!("perf gate passed");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("perf gate FAILED: a gated metric dropped beyond the threshold");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("perf gate error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trend(intervals: f64, priced: f64) -> String {
        JsonValue::obj(vec![
            (
                "engine",
                JsonValue::obj(vec![("intervals_per_sec", JsonValue::Num(intervals))]),
            ),
            (
                "pricing",
                JsonValue::obj(vec![(
                    "batches_priced_per_sec_memoized",
                    JsonValue::Num(priced),
                )]),
            ),
        ])
        .to_string_pretty()
    }

    fn write_tmp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, contents).expect("write temp trend file");
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn passes_when_fresh_is_within_threshold() {
        let base = write_tmp("perf_gate_base_ok.json", &trend(1000.0, 500.0));
        let fresh = write_tmp("perf_gate_fresh_ok.json", &trend(800.0, 450.0));
        assert_eq!(run(&[base, fresh]), Ok(true));
    }

    #[test]
    fn fails_when_a_metric_drops_too_far() {
        let base = write_tmp("perf_gate_base_bad.json", &trend(1000.0, 500.0));
        let fresh = write_tmp("perf_gate_fresh_bad.json", &trend(600.0, 500.0));
        assert_eq!(run(&[base, fresh]), Ok(false));
    }

    #[test]
    fn threshold_is_configurable() {
        let base = write_tmp("perf_gate_base_thr.json", &trend(1000.0, 500.0));
        let fresh = write_tmp("perf_gate_fresh_thr.json", &trend(850.0, 500.0));
        assert_eq!(
            run(&[
                base.clone(),
                fresh.clone(),
                "--max-drop".to_string(),
                "0.10".to_string()
            ]),
            Ok(false)
        );
        assert_eq!(
            run(&[base, fresh, "--max-drop".to_string(), "0.20".to_string()]),
            Ok(true)
        );
    }

    #[test]
    fn missing_metrics_and_files_are_errors() {
        let empty = write_tmp("perf_gate_empty.json", "{}\n");
        let good = write_tmp("perf_gate_good.json", &trend(1.0, 1.0));
        assert!(run(&[empty, good.clone()]).is_err());
        assert!(run(&["/nonexistent/x.json".to_string(), good]).is_err());
        assert!(run(&[]).is_err());
    }
}
