//! CI perf-regression gate: compare freshly generated trend files against
//! the committed baselines and fail (exit 1) when a gated metric regressed
//! by more than the allowed fraction.
//!
//! ```text
//! cargo run -p pod-bench --bin perf_gate -- <baseline.json> <fresh.json> \
//!     [--cluster <cluster_baseline.json> <cluster_fresh.json>] \
//!     [--slo <slo_baseline.json> <slo_fresh.json>] \
//!     [--disagg <disagg_baseline.json> <disagg_fresh.json>] \
//!     [--fairness <fairness_baseline.json> <fairness_fresh.json>] \
//!     [--fleet <fleet_baseline.json> <fleet_fresh.json>] \
//!     [--trace <trace_baseline.json> <trace_fresh.json>] \
//!     [--decode <decode_baseline.json> <decode_fresh.json>] \
//!     [--spec <spec_baseline.json> <spec_fresh.json>] [--max-drop 0.30]
//! ```
//!
//! The positional pair is the engine trend (`BENCH_engine.json`): the two
//! headline throughputs of the PR 1 optimization work, the contention
//! engine's `engine.intervals_per_sec` and the serving loop's
//! `pricing.batches_priced_per_sec_memoized`. The optional `--cluster` pair
//! gates the fleet-level serving metric from `BENCH_cluster.json` — mean
//! completed requests per minute across every sweep cell — so a modeling or
//! scheduling regression that silently slows the simulated fleet fails CI
//! the same way a slow hot loop does. Benchmarks on shared CI runners are
//! noisy, so the default threshold is a deliberately loose 30% — the gate
//! catches "someone accidentally serialized the hot loop" (or "halved fleet
//! throughput"), not single-digit drift (the uploaded trend artifacts are
//! for that).

use llm_serving::JsonValue;
use std::process::ExitCode;

/// Dotted paths into the trend file that the gate enforces, with the
/// direction "bigger is better".
const GATED_METRICS: &[&str] = &[
    "engine.intervals_per_sec",
    "pricing.batches_priced_per_sec_memoized",
];

/// Default maximum allowed fractional drop (0.30 = 30%).
const DEFAULT_MAX_DROP: f64 = 0.30;

/// Hard ceiling on `trace.overhead_ratio` (traced / untraced wall-clock on
/// the fleet replay): tracing must cost under ten percent. Unlike the
/// cross-run throughput gates, this is an intra-run ratio — both legs run
/// in the same process on the same machine — so it is far less noisy and
/// gets a tight absolute bound instead of `--max-drop` slack.
const MAX_TRACE_OVERHEAD: f64 = 1.10;

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn metric(doc: &JsonValue, path: &str, file: &str) -> Result<f64, String> {
    let v = doc
        .get_path(path)
        .ok_or_else(|| format!("{file} has no '{path}'"))?
        .as_f64()
        .ok_or_else(|| format!("{file}: '{path}' is not a number"))?;
    if !(v.is_finite() && v > 0.0) {
        return Err(format!("{file}: '{path}' = {v} is not a positive number"));
    }
    Ok(v)
}

/// Mean of a per-cell metric over every sweep cell of a trend document
/// (`BENCH_cluster.json` / `BENCH_slo.json` share the cells layout).
fn mean_cell_metric(doc: &JsonValue, path: &str, file: &str) -> Result<f64, String> {
    let JsonValue::Arr(cells) = doc
        .get_path("cells")
        .ok_or_else(|| format!("{file} has no 'cells'"))?
    else {
        return Err(format!("{file}: 'cells' is not an array"));
    };
    if cells.is_empty() {
        return Err(format!("{file}: 'cells' is empty"));
    }
    let mut total = 0.0;
    for (i, cell) in cells.iter().enumerate() {
        total += cell
            .get_path(path)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{file}: cell {i} has no {path}"))?;
    }
    let mean = total / cells.len() as f64;
    if !(mean.is_finite() && mean > 0.0) {
        return Err(format!(
            "{file}: mean of {path} ({mean}) is not a positive number"
        ));
    }
    Ok(mean)
}

/// The gated cluster metric: mean fleet requests/min over every sweep cell
/// of a `BENCH_cluster.json` document.
fn fleet_requests_per_minute(doc: &JsonValue, file: &str) -> Result<f64, String> {
    mean_cell_metric(doc, "report.aggregate.requests_per_minute", file)
}

/// The gated SLO metric: mean aggregate goodput (deadline-meeting
/// completions) per minute over every sweep cell of a `BENCH_slo.json`
/// document. `BENCH_disagg.json` and `BENCH_fairness.json` share the
/// layout, so the `--disagg` and `--fairness` gates read the same path.
fn fleet_goodput_per_minute(doc: &JsonValue, file: &str) -> Result<f64, String> {
    mean_cell_metric(doc, "report.aggregate.slo.goodput_per_minute", file)
}

/// The end-of-run recap line: every gated metric's delta, pass or fail —
/// printed in **every** mode (engine-only, `--cluster`, `--slo`,
/// `--disagg`), so green CI logs always show where the trend is heading.
fn recap_line(ok: bool, deltas: &[(String, f64)]) -> String {
    let recap: Vec<String> = deltas
        .iter()
        .map(|(label, pct)| format!("{label} {pct:+.1}%"))
        .collect();
    format!(
        "per-metric deltas ({}): {}",
        if ok {
            "all within threshold"
        } else {
            "REGRESSION"
        },
        recap.join(", ")
    )
}

/// Compare one metric pair, printing the verdict row and recording the
/// delta for the end-of-run recap. Returns whether it passed.
fn check(label: &str, base: f64, now: f64, max_drop: f64, deltas: &mut Vec<(String, f64)>) -> bool {
    let ratio = now / base;
    let ok = ratio >= 1.0 - max_drop;
    println!(
        "  {label:<44} baseline {base:>14.1}  fresh {now:>14.1}  ({:+.1}%)  {}",
        (ratio - 1.0) * 100.0,
        if ok { "ok" } else { "REGRESSED" }
    );
    deltas.push((label.to_string(), (ratio - 1.0) * 100.0));
    ok
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut cluster_paths: Vec<&String> = Vec::new();
    let mut slo_paths: Vec<&String> = Vec::new();
    let mut disagg_paths: Vec<&String> = Vec::new();
    let mut fairness_paths: Vec<&String> = Vec::new();
    let mut fleet_paths: Vec<&String> = Vec::new();
    let mut trace_paths: Vec<&String> = Vec::new();
    let mut decode_paths: Vec<&String> = Vec::new();
    let mut spec_paths: Vec<&String> = Vec::new();
    let mut max_drop = DEFAULT_MAX_DROP;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-drop" {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--max-drop needs a value".to_string())?;
            max_drop = v
                .parse::<f64>()
                .map_err(|e| format!("invalid --max-drop {v}: {e}"))?;
            if !(0.0..1.0).contains(&max_drop) {
                return Err(format!("--max-drop must be in [0, 1), got {max_drop}"));
            }
            i += 2;
        } else if args[i] == "--cluster" {
            let (Some(base), Some(fresh)) = (args.get(i + 1), args.get(i + 2)) else {
                return Err("--cluster needs <baseline.json> <fresh.json>".to_string());
            };
            cluster_paths = vec![base, fresh];
            i += 3;
        } else if args[i] == "--slo" {
            let (Some(base), Some(fresh)) = (args.get(i + 1), args.get(i + 2)) else {
                return Err("--slo needs <baseline.json> <fresh.json>".to_string());
            };
            slo_paths = vec![base, fresh];
            i += 3;
        } else if args[i] == "--disagg" {
            let (Some(base), Some(fresh)) = (args.get(i + 1), args.get(i + 2)) else {
                return Err("--disagg needs <baseline.json> <fresh.json>".to_string());
            };
            disagg_paths = vec![base, fresh];
            i += 3;
        } else if args[i] == "--fairness" {
            let (Some(base), Some(fresh)) = (args.get(i + 1), args.get(i + 2)) else {
                return Err("--fairness needs <baseline.json> <fresh.json>".to_string());
            };
            fairness_paths = vec![base, fresh];
            i += 3;
        } else if args[i] == "--fleet" {
            let (Some(base), Some(fresh)) = (args.get(i + 1), args.get(i + 2)) else {
                return Err("--fleet needs <baseline.json> <fresh.json>".to_string());
            };
            fleet_paths = vec![base, fresh];
            i += 3;
        } else if args[i] == "--trace" {
            let (Some(base), Some(fresh)) = (args.get(i + 1), args.get(i + 2)) else {
                return Err("--trace needs <baseline.json> <fresh.json>".to_string());
            };
            trace_paths = vec![base, fresh];
            i += 3;
        } else if args[i] == "--decode" {
            let (Some(base), Some(fresh)) = (args.get(i + 1), args.get(i + 2)) else {
                return Err("--decode needs <baseline.json> <fresh.json>".to_string());
            };
            decode_paths = vec![base, fresh];
            i += 3;
        } else if args[i] == "--spec" {
            let (Some(base), Some(fresh)) = (args.get(i + 1), args.get(i + 2)) else {
                return Err("--spec needs <baseline.json> <fresh.json>".to_string());
            };
            spec_paths = vec![base, fresh];
            i += 3;
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    if paths.len() != 2 {
        return Err("usage: perf_gate <baseline.json> <fresh.json> \
             [--cluster <baseline.json> <fresh.json>] \
             [--slo <baseline.json> <fresh.json>] \
             [--disagg <baseline.json> <fresh.json>] \
             [--fairness <baseline.json> <fresh.json>] \
             [--fleet <baseline.json> <fresh.json>] \
             [--trace <baseline.json> <fresh.json>] \
             [--decode <baseline.json> <fresh.json>] \
             [--spec <baseline.json> <fresh.json>] [--max-drop 0.30]"
            .to_string());
    }
    let (baseline_path, fresh_path) = (paths[0], paths[1]);

    let baseline = load(baseline_path)?;
    let fresh = load(fresh_path)?;

    let mut ok = true;
    let mut deltas: Vec<(String, f64)> = Vec::new();
    println!(
        "perf gate: fresh {fresh_path} vs baseline {baseline_path} (max drop {:.0}%)",
        max_drop * 100.0
    );
    for path in GATED_METRICS {
        let base = metric(&baseline, path, baseline_path)?;
        let now = metric(&fresh, path, fresh_path)?;
        ok &= check(path, base, now, max_drop, &mut deltas);
    }
    if let [cluster_base_path, cluster_fresh_path] = cluster_paths.as_slice() {
        let base = fleet_requests_per_minute(&load(cluster_base_path)?, cluster_base_path)?;
        let now = fleet_requests_per_minute(&load(cluster_fresh_path)?, cluster_fresh_path)?;
        println!("cluster gate: fresh {cluster_fresh_path} vs baseline {cluster_base_path}");
        ok &= check(
            "cluster.fleet_requests_per_minute",
            base,
            now,
            max_drop,
            &mut deltas,
        );
    }
    if let [slo_base_path, slo_fresh_path] = slo_paths.as_slice() {
        let base = fleet_goodput_per_minute(&load(slo_base_path)?, slo_base_path)?;
        let now = fleet_goodput_per_minute(&load(slo_fresh_path)?, slo_fresh_path)?;
        println!("slo gate: fresh {slo_fresh_path} vs baseline {slo_base_path}");
        ok &= check(
            "slo.mean_goodput_per_minute",
            base,
            now,
            max_drop,
            &mut deltas,
        );
    }
    if let [disagg_base_path, disagg_fresh_path] = disagg_paths.as_slice() {
        let base = fleet_goodput_per_minute(&load(disagg_base_path)?, disagg_base_path)?;
        let now = fleet_goodput_per_minute(&load(disagg_fresh_path)?, disagg_fresh_path)?;
        println!("disagg gate: fresh {disagg_fresh_path} vs baseline {disagg_base_path}");
        ok &= check(
            "disagg.mean_goodput_per_minute",
            base,
            now,
            max_drop,
            &mut deltas,
        );
    }
    if let [fair_base_path, fair_fresh_path] = fairness_paths.as_slice() {
        let base = fleet_goodput_per_minute(&load(fair_base_path)?, fair_base_path)?;
        let now = fleet_goodput_per_minute(&load(fair_fresh_path)?, fair_fresh_path)?;
        println!("fairness gate: fresh {fair_fresh_path} vs baseline {fair_base_path}");
        ok &= check(
            "fairness.mean_goodput_per_minute",
            base,
            now,
            max_drop,
            &mut deltas,
        );
    }
    if let [fleet_base_path, fleet_fresh_path] = fleet_paths.as_slice() {
        // The trace-replay gate is host throughput, not simulated
        // throughput: simulator events processed per wall-clock second while
        // replaying the committed fleet trace (`BENCH_fleet.json`). This is
        // what catches "someone serialized the event-driven core".
        let base = metric(
            &load(fleet_base_path)?,
            "fleet.events_per_sec",
            fleet_base_path,
        )?;
        let now = metric(
            &load(fleet_fresh_path)?,
            "fleet.events_per_sec",
            fleet_fresh_path,
        )?;
        println!("fleet gate: fresh {fleet_fresh_path} vs baseline {fleet_base_path}");
        ok &= check("fleet.events_per_sec", base, now, max_drop, &mut deltas);
    }
    if let [trace_base_path, trace_fresh_path] = trace_paths.as_slice() {
        // The tracing gate is two-sided: traced-replay host throughput must
        // not regress past the threshold (cross-run, noisy, --max-drop
        // slack), and the fresh off→on overhead ratio must stay under the
        // hard ten-percent ceiling (intra-run, tight).
        let trace_base = load(trace_base_path)?;
        let trace_fresh = load(trace_fresh_path)?;
        let base = metric(&trace_base, "trace.events_per_sec_on", trace_base_path)?;
        let now = metric(&trace_fresh, "trace.events_per_sec_on", trace_fresh_path)?;
        println!("trace gate: fresh {trace_fresh_path} vs baseline {trace_base_path}");
        ok &= check("trace.events_per_sec_on", base, now, max_drop, &mut deltas);
        let overhead = metric(&trace_fresh, "trace.overhead_ratio", trace_fresh_path)?;
        let overhead_ok = overhead <= MAX_TRACE_OVERHEAD;
        println!(
            "  {:<44} ceiling {MAX_TRACE_OVERHEAD:>14.2}  fresh {overhead:>14.3}  {}",
            "trace.overhead_ratio",
            if overhead_ok { "ok" } else { "REGRESSED" }
        );
        deltas.push(("trace.overhead_ratio".to_string(), (overhead - 1.0) * 100.0));
        ok &= overhead_ok;
    }
    if let [decode_base_path, decode_fresh_path] = decode_paths.as_slice() {
        // The shared-decode gate is a simulated-model ratio, not host
        // throughput: mean TBT speedup from KV dedup at the highest share
        // ratio of the fig21 sweep (`BENCH_decode.json`). A modeling change
        // that erodes the dedup win fails CI here.
        let base = metric(
            &load(decode_base_path)?,
            "decode.mean_tbt_speedup",
            decode_base_path,
        )?;
        let now = metric(
            &load(decode_fresh_path)?,
            "decode.mean_tbt_speedup",
            decode_fresh_path,
        )?;
        println!("decode gate: fresh {decode_fresh_path} vs baseline {decode_base_path}");
        ok &= check("decode.mean_tbt_speedup", base, now, max_drop, &mut deltas);
    }
    if let [spec_base_path, spec_fresh_path] = spec_paths.as_slice() {
        // The speculative gate is a simulated-model ratio like the decode
        // gate: POD-at-saturation makespan speedup of draft-then-verify
        // decoding at the highest swept acceptance rate (`BENCH_spec.json`).
        // A modeling change that erodes the speculation win fails CI here.
        let base = metric(
            &load(spec_base_path)?,
            "spec.makespan_speedup",
            spec_base_path,
        )?;
        let now = metric(
            &load(spec_fresh_path)?,
            "spec.makespan_speedup",
            spec_fresh_path,
        )?;
        println!("spec gate: fresh {spec_fresh_path} vs baseline {spec_base_path}");
        ok &= check("spec.makespan_speedup", base, now, max_drop, &mut deltas);
    }
    // Recap every metric delta, pass or fail, in every mode — the line a
    // reviewer scans in green CI logs to see where the trend is heading.
    println!("{}", recap_line(ok, &deltas));
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => {
            println!("perf gate passed");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("perf gate FAILED: a gated metric dropped beyond the threshold");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("perf gate error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trend(intervals: f64, priced: f64) -> String {
        JsonValue::obj(vec![
            (
                "engine",
                JsonValue::obj(vec![("intervals_per_sec", JsonValue::Num(intervals))]),
            ),
            (
                "pricing",
                JsonValue::obj(vec![(
                    "batches_priced_per_sec_memoized",
                    JsonValue::Num(priced),
                )]),
            ),
        ])
        .to_string_pretty()
    }

    fn write_tmp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, contents).expect("write temp trend file");
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn passes_when_fresh_is_within_threshold() {
        let base = write_tmp("perf_gate_base_ok.json", &trend(1000.0, 500.0));
        let fresh = write_tmp("perf_gate_fresh_ok.json", &trend(800.0, 450.0));
        assert_eq!(run(&[base, fresh]), Ok(true));
    }

    #[test]
    fn fails_when_a_metric_drops_too_far() {
        let base = write_tmp("perf_gate_base_bad.json", &trend(1000.0, 500.0));
        let fresh = write_tmp("perf_gate_fresh_bad.json", &trend(600.0, 500.0));
        assert_eq!(run(&[base, fresh]), Ok(false));
    }

    #[test]
    fn threshold_is_configurable() {
        let base = write_tmp("perf_gate_base_thr.json", &trend(1000.0, 500.0));
        let fresh = write_tmp("perf_gate_fresh_thr.json", &trend(850.0, 500.0));
        assert_eq!(
            run(&[
                base.clone(),
                fresh.clone(),
                "--max-drop".to_string(),
                "0.10".to_string()
            ]),
            Ok(false)
        );
        assert_eq!(
            run(&[base, fresh, "--max-drop".to_string(), "0.20".to_string()]),
            Ok(true)
        );
    }

    fn cluster_trend(rpms: &[f64]) -> String {
        JsonValue::obj(vec![(
            "cells",
            JsonValue::Arr(
                rpms.iter()
                    .map(|&rpm| {
                        JsonValue::obj(vec![(
                            "report",
                            JsonValue::obj(vec![(
                                "aggregate",
                                JsonValue::obj(vec![("requests_per_minute", JsonValue::Num(rpm))]),
                            )]),
                        )])
                    })
                    .collect(),
            ),
        )])
        .to_string_pretty()
    }

    #[test]
    fn cluster_metric_gates_fleet_throughput() {
        let eng_base = write_tmp("perf_gate_c_eng_base.json", &trend(1000.0, 500.0));
        let eng_fresh = write_tmp("perf_gate_c_eng_fresh.json", &trend(1000.0, 500.0));
        let cl_base = write_tmp("perf_gate_cl_base.json", &cluster_trend(&[10.0, 20.0]));
        // Mean 15 -> 12 is a 20% drop: passes at 30%.
        let cl_ok = write_tmp("perf_gate_cl_ok.json", &cluster_trend(&[8.0, 16.0]));
        // Mean 15 -> 9 is a 40% drop: fails.
        let cl_bad = write_tmp("perf_gate_cl_bad.json", &cluster_trend(&[6.0, 12.0]));
        let args = |fresh: &str| {
            vec![
                eng_base.clone(),
                eng_fresh.clone(),
                "--cluster".to_string(),
                cl_base.clone(),
                fresh.to_string(),
            ]
        };
        assert_eq!(run(&args(&cl_ok)), Ok(true));
        assert_eq!(run(&args(&cl_bad)), Ok(false));
        // A malformed cluster file is an error, not a silent pass.
        let empty = write_tmp("perf_gate_cl_empty.json", "{}\n");
        assert!(run(&args(&empty)).is_err());
    }

    fn slo_trend(goodputs: &[f64]) -> String {
        JsonValue::obj(vec![(
            "cells",
            JsonValue::Arr(
                goodputs
                    .iter()
                    .map(|&g| {
                        JsonValue::obj(vec![(
                            "report",
                            JsonValue::obj(vec![(
                                "aggregate",
                                JsonValue::obj(vec![(
                                    "slo",
                                    JsonValue::obj(vec![("goodput_per_minute", JsonValue::Num(g))]),
                                )]),
                            )]),
                        )])
                    })
                    .collect(),
            ),
        )])
        .to_string_pretty()
    }

    #[test]
    fn slo_metric_gates_mean_goodput() {
        let eng_base = write_tmp("perf_gate_s_eng_base.json", &trend(1000.0, 500.0));
        let eng_fresh = write_tmp("perf_gate_s_eng_fresh.json", &trend(1000.0, 500.0));
        let slo_base = write_tmp("perf_gate_slo_base.json", &slo_trend(&[60.0, 120.0]));
        // Mean 90 -> 72 is a 20% drop: passes at 30%.
        let slo_ok = write_tmp("perf_gate_slo_ok.json", &slo_trend(&[48.0, 96.0]));
        // Mean 90 -> 45 is a 50% drop: fails — the doctored baseline the CI
        // wiring was verified against.
        let slo_bad = write_tmp("perf_gate_slo_bad.json", &slo_trend(&[30.0, 60.0]));
        let args = |fresh: &str| {
            vec![
                eng_base.clone(),
                eng_fresh.clone(),
                "--slo".to_string(),
                slo_base.clone(),
                fresh.to_string(),
            ]
        };
        assert_eq!(run(&args(&slo_ok)), Ok(true));
        assert_eq!(run(&args(&slo_bad)), Ok(false));
        // A malformed SLO file is an error, not a silent pass.
        let empty = write_tmp("perf_gate_slo_empty.json", "{}\n");
        assert!(run(&args(&empty)).is_err());
        // A cells file missing the slo block is an error too.
        let no_slo = write_tmp("perf_gate_slo_noslo.json", &cluster_trend(&[10.0]));
        assert!(run(&args(&no_slo)).is_err());
    }

    #[test]
    fn disagg_metric_gates_mean_goodput() {
        // BENCH_disagg.json shares the slo-cells layout, so the same
        // trend-builder exercises the --disagg flag.
        let eng_base = write_tmp("perf_gate_d_eng_base.json", &trend(1000.0, 500.0));
        let eng_fresh = write_tmp("perf_gate_d_eng_fresh.json", &trend(1000.0, 500.0));
        let dis_base = write_tmp("perf_gate_dis_base.json", &slo_trend(&[80.0, 120.0]));
        // Mean 100 -> 80 is a 20% drop: passes at 30%.
        let dis_ok = write_tmp("perf_gate_dis_ok.json", &slo_trend(&[64.0, 96.0]));
        // Mean 100 -> 50 is a 50% drop: fails.
        let dis_bad = write_tmp("perf_gate_dis_bad.json", &slo_trend(&[40.0, 60.0]));
        let args = |fresh: &str| {
            vec![
                eng_base.clone(),
                eng_fresh.clone(),
                "--disagg".to_string(),
                dis_base.clone(),
                fresh.to_string(),
            ]
        };
        assert_eq!(run(&args(&dis_ok)), Ok(true));
        assert_eq!(run(&args(&dis_bad)), Ok(false));
        let empty = write_tmp("perf_gate_dis_empty.json", "{}\n");
        assert!(run(&args(&empty)).is_err());
    }

    #[test]
    fn fairness_metric_gates_mean_goodput() {
        // BENCH_fairness.json shares the slo-cells layout, so the same
        // trend-builder exercises the --fairness flag.
        let eng_base = write_tmp("perf_gate_fa_eng_base.json", &trend(1000.0, 500.0));
        let eng_fresh = write_tmp("perf_gate_fa_eng_fresh.json", &trend(1000.0, 500.0));
        let fa_base = write_tmp("perf_gate_fa_base.json", &slo_trend(&[90.0, 150.0]));
        // Mean 120 -> 96 is a 20% drop: passes at 30%.
        let fa_ok = write_tmp("perf_gate_fa_ok.json", &slo_trend(&[72.0, 120.0]));
        // Mean 120 -> 60 is a 50% drop: fails — the doctored baseline the CI
        // wiring was verified against.
        let fa_bad = write_tmp("perf_gate_fa_bad.json", &slo_trend(&[45.0, 75.0]));
        let args = |fresh: &str| {
            vec![
                eng_base.clone(),
                eng_fresh.clone(),
                "--fairness".to_string(),
                fa_base.clone(),
                fresh.to_string(),
            ]
        };
        assert_eq!(run(&args(&fa_ok)), Ok(true));
        assert_eq!(run(&args(&fa_bad)), Ok(false));
        // A malformed fairness file is an error, not a silent pass.
        let empty = write_tmp("perf_gate_fa_empty.json", "{}\n");
        assert!(run(&args(&empty)).is_err());
    }

    fn fleet_trend(events_per_sec: f64) -> String {
        JsonValue::obj(vec![(
            "fleet",
            JsonValue::obj(vec![("events_per_sec", JsonValue::Num(events_per_sec))]),
        )])
        .to_string_pretty()
    }

    #[test]
    fn fleet_metric_gates_replay_throughput() {
        let eng_base = write_tmp("perf_gate_f_eng_base.json", &trend(1000.0, 500.0));
        let eng_fresh = write_tmp("perf_gate_f_eng_fresh.json", &trend(1000.0, 500.0));
        let fl_base = write_tmp("perf_gate_fl_base.json", &fleet_trend(200_000.0));
        // 20% drop: passes at the default 30%.
        let fl_ok = write_tmp("perf_gate_fl_ok.json", &fleet_trend(160_000.0));
        // 50% drop: fails — the doctored baseline the CI wiring was
        // verified against.
        let fl_bad = write_tmp("perf_gate_fl_bad.json", &fleet_trend(100_000.0));
        let args = |fresh: &str| {
            vec![
                eng_base.clone(),
                eng_fresh.clone(),
                "--fleet".to_string(),
                fl_base.clone(),
                fresh.to_string(),
            ]
        };
        assert_eq!(run(&args(&fl_ok)), Ok(true));
        assert_eq!(run(&args(&fl_bad)), Ok(false));
        // A malformed fleet file is an error, not a silent pass.
        let empty = write_tmp("perf_gate_fl_empty.json", "{}\n");
        assert!(run(&args(&empty)).is_err());
    }

    fn trace_trend(events_per_sec_on: f64, overhead_ratio: f64) -> String {
        JsonValue::obj(vec![(
            "trace",
            JsonValue::obj(vec![
                ("events_per_sec_on", JsonValue::Num(events_per_sec_on)),
                ("overhead_ratio", JsonValue::Num(overhead_ratio)),
            ]),
        )])
        .to_string_pretty()
    }

    #[test]
    fn trace_metric_gates_traced_throughput_and_overhead() {
        let eng_base = write_tmp("perf_gate_t_eng_base.json", &trend(1000.0, 500.0));
        let eng_fresh = write_tmp("perf_gate_t_eng_fresh.json", &trend(1000.0, 500.0));
        let tr_base = write_tmp("perf_gate_tr_base.json", &trace_trend(180_000.0, 1.05));
        // 20% throughput drop, 4% overhead: passes.
        let tr_ok = write_tmp("perf_gate_tr_ok.json", &trace_trend(144_000.0, 1.04));
        // 50% throughput drop: fails — the doctored baseline the CI wiring
        // was verified against.
        let tr_slow = write_tmp("perf_gate_tr_slow.json", &trace_trend(90_000.0, 1.04));
        // Throughput fine, but tracing now costs 25%: the overhead ceiling
        // fails independently of the cross-run comparison.
        let tr_heavy = write_tmp("perf_gate_tr_heavy.json", &trace_trend(180_000.0, 1.25));
        let args = |fresh: &str| {
            vec![
                eng_base.clone(),
                eng_fresh.clone(),
                "--trace".to_string(),
                tr_base.clone(),
                fresh.to_string(),
            ]
        };
        assert_eq!(run(&args(&tr_ok)), Ok(true));
        assert_eq!(run(&args(&tr_slow)), Ok(false));
        assert_eq!(run(&args(&tr_heavy)), Ok(false));
        // A malformed trace file is an error, not a silent pass.
        let empty = write_tmp("perf_gate_tr_empty.json", "{}\n");
        assert!(run(&args(&empty)).is_err());
    }

    fn decode_trend(mean_tbt_speedup: f64) -> String {
        JsonValue::obj(vec![(
            "decode",
            JsonValue::obj(vec![("mean_tbt_speedup", JsonValue::Num(mean_tbt_speedup))]),
        )])
        .to_string_pretty()
    }

    #[test]
    fn decode_metric_gates_dedup_tbt_speedup() {
        let eng_base = write_tmp("perf_gate_de_eng_base.json", &trend(1000.0, 500.0));
        let eng_fresh = write_tmp("perf_gate_de_eng_fresh.json", &trend(1000.0, 500.0));
        let de_base = write_tmp("perf_gate_de_base.json", &decode_trend(1.20));
        // 1.20 -> 1.02 is a 15% drop: passes at the default 30%.
        let de_ok = write_tmp("perf_gate_de_ok.json", &decode_trend(1.02));
        // 1.20 -> 0.60 is a 50% drop: fails — the doctored baseline the CI
        // wiring was verified against.
        let de_bad = write_tmp("perf_gate_de_bad.json", &decode_trend(0.60));
        let args = |fresh: &str| {
            vec![
                eng_base.clone(),
                eng_fresh.clone(),
                "--decode".to_string(),
                de_base.clone(),
                fresh.to_string(),
            ]
        };
        assert_eq!(run(&args(&de_ok)), Ok(true));
        assert_eq!(run(&args(&de_bad)), Ok(false));
        // A malformed decode file is an error, not a silent pass.
        let empty = write_tmp("perf_gate_de_empty.json", "{}\n");
        assert!(run(&args(&empty)).is_err());
    }

    fn spec_trend(makespan_speedup: f64) -> String {
        JsonValue::obj(vec![(
            "spec",
            JsonValue::obj(vec![("makespan_speedup", JsonValue::Num(makespan_speedup))]),
        )])
        .to_string_pretty()
    }

    #[test]
    fn spec_metric_gates_speculative_makespan_speedup() {
        let eng_base = write_tmp("perf_gate_sp_eng_base.json", &trend(1000.0, 500.0));
        let eng_fresh = write_tmp("perf_gate_sp_eng_fresh.json", &trend(1000.0, 500.0));
        let sp_base = write_tmp("perf_gate_sp_base.json", &spec_trend(1.25));
        // 1.25 -> 1.00 is a 20% drop: passes at the default 30%.
        let sp_ok = write_tmp("perf_gate_sp_ok.json", &spec_trend(1.00));
        // 1.25 -> 0.625 is a 50% drop: fails — the doctored baseline the CI
        // wiring was verified against.
        let sp_bad = write_tmp("perf_gate_sp_bad.json", &spec_trend(0.625));
        let args = |fresh: &str| {
            vec![
                eng_base.clone(),
                eng_fresh.clone(),
                "--spec".to_string(),
                sp_base.clone(),
                fresh.to_string(),
            ]
        };
        assert_eq!(run(&args(&sp_ok)), Ok(true));
        assert_eq!(run(&args(&sp_bad)), Ok(false));
        // A malformed spec file is an error, not a silent pass.
        let empty = write_tmp("perf_gate_sp_empty.json", "{}\n");
        assert!(run(&args(&empty)).is_err());
    }

    #[test]
    fn recap_covers_every_checked_metric_in_every_mode() {
        // The recap is built from whatever deltas accumulated — the
        // engine-only pair, or engine + any optional gates — so no mode can
        // silently drop it.
        let engine_only = recap_line(
            true,
            &[
                ("engine.intervals_per_sec".to_string(), 2.0),
                ("pricing.batches_priced_per_sec_memoized".to_string(), -1.0),
            ],
        );
        assert!(engine_only.contains("all within threshold"));
        assert!(engine_only.contains("engine.intervals_per_sec +2.0%"));
        assert!(engine_only.contains("-1.0%"));
        let failing = recap_line(
            false,
            &[("disagg.mean_goodput_per_minute".to_string(), -45.0)],
        );
        assert!(failing.contains("REGRESSION"));
        assert!(failing.contains("disagg.mean_goodput_per_minute -45.0%"));
    }

    #[test]
    fn missing_metrics_and_files_are_errors() {
        let empty = write_tmp("perf_gate_empty.json", "{}\n");
        let good = write_tmp("perf_gate_good.json", &trend(1.0, 1.0));
        assert!(run(&[empty, good.clone()]).is_err());
        assert!(run(&["/nonexistent/x.json".to_string(), good]).is_err());
        assert!(run(&[]).is_err());
    }
}
