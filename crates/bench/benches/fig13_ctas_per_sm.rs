//! Figure 13: sensitivity of POD-Attention to the number of fused CTAs per
//! SM (2 vs 4) across decode batch sizes and context lengths (Llama-3-8B).
//! Prefill-dominant (long-context) batches prefer 2 CTAs/SM and its larger
//! tiles; decode-dominant batches prefer 4 CTAs/SM and its finer interleave.

use attn_kernels::{AttentionConfig, HybridBatch};
use gpu_sim::GpuConfig;
use pod_attention::{CtasPerSm, PodAttention, PodOptions};
use pod_bench::{heading, print_table};

fn main() {
    let cfg = AttentionConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let chunk = 1024usize;
    let batch_sizes = [16usize, 32, 64, 128, 192];
    let contexts_kib = [1usize, 2, 4, 8, 16];

    let pod_with = |mode: CtasPerSm| {
        PodAttention::with_options(
            cfg,
            gpu.clone(),
            PodOptions::recommended().with_ctas_per_sm(mode),
        )
    };
    let two = pod_with(CtasPerSm::Two);
    let four = pod_with(CtasPerSm::Four);

    heading(
        "Figure 13: runtime of 2 CTAs/SM relative to 4 CTAs/SM",
        "Values < 1.00 mean 2 CTAs/SM is faster (long contexts); > 1.00 mean 4 CTAs/SM is faster.",
    );

    let mut rows = Vec::new();
    for &ctx_kib in &contexts_kib {
        let context = ctx_kib * 1024;
        let mut row = vec![format!("{ctx_kib}K")];
        for &bs in &batch_sizes {
            let batch = HybridBatch::uniform(chunk.min(context), context, bs, context);
            let t2 = two.attention_time(&batch).expect("2 CTAs/SM runs");
            let t4 = four.attention_time(&batch).expect("4 CTAs/SM runs");
            row.push(format!("{:.2}", t2 / t4));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Context".to_string())
        .chain(batch_sizes.iter().map(|b| format!("bs={b}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);

    println!(
        "\nExpected shape (paper): the 2-CTA configuration wins toward the bottom-left (long \
         context, small batch); the 4-CTA configuration wins as decode dominates."
    );
}
