//! Table 6: online inference latency on the arXiv-Summarization-style
//! workload (Llama-3-8B, chunk 1024) at QPS 0.85 and 0.95.

use llm_serving::Workload;
use pod_bench::online::{print_latency_block, run_three_systems};
use pod_bench::{heading, scaled};

fn main() {
    let workload = Workload::arxiv();
    let num_requests = scaled(256, 2048);
    let chunk = 1024usize;

    heading(
        "Table 6: arXiv-based workload (latency in seconds)",
        &format!("Llama-3-8B TP-2, {num_requests} requests, chunk size {chunk}."),
    );

    for qps in [0.85, 0.95] {
        let reports = run_three_systems(&workload, qps, num_requests, chunk, 61);
        print_latency_block(qps, &reports);
    }

    println!(
        "Expected shape (paper): same ordering as Table 5 — Sarathi+POD improves every metric \
         over Sarathi and fixes vLLM's stalls, with the gap growing at the higher load."
    );
}
