//! Figure 7: the fusion-method micro-benchmark. A compute-bound kernel
//! (scalar multiply loop) and a memory-bound kernel (three-array add) are
//! executed with each concurrent-execution method while the compute kernel's
//! iteration count sweeps from memory-heavy to compute-heavy.

use fusion_lab::{ComputeKernel, FusionExecutor, FusionStrategy, MemoryKernel, Operation};
use gpu_sim::GpuConfig;
use pod_bench::{heading, ms, print_table};

fn main() {
    let gpu = GpuConfig::a100_80gb();
    let exec = FusionExecutor::new(gpu.clone());
    let memory = MemoryKernel::figure7(&gpu);
    let mem_op = Operation::new("memory", memory.footprint(), memory.ctas());

    heading(
        "Figure 7: fine-grained fusion versus serial computation",
        "Runtime (ms) versus compute iterations; 100 iterations is the balanced point.",
    );

    let strategies = [
        FusionStrategy::Serial,
        FusionStrategy::Streams,
        FusionStrategy::CtaParallel,
        FusionStrategy::IntraThread,
        FusionStrategy::SmAwareCta,
    ];
    let mut rows = Vec::new();
    for iters in (20..=200).step_by(20) {
        let compute = ComputeKernel::figure7(iters, &gpu);
        let comp_op = Operation::new("compute", compute.footprint(), compute.ctas());
        let mut row = vec![format!("{iters}")];
        for &s in &strategies {
            let t = exec.runtime(&comp_op, &mem_op, s).expect("strategy runs");
            row.push(ms(t));
        }
        row.push(ms(exec.oracle(&comp_op, &mem_op)));
        rows.push(row);
    }
    print_table(
        &[
            "Compute iters",
            "Serial",
            "Kernel (Streams)",
            "CTA",
            "Intra-thread",
            "SM-aware CTA",
            "Optimal",
        ],
        &rows,
    );

    println!(
        "\nExpected shape (paper): streams/CTA give only a marginal gain over serial, intra-thread \
         ~13% on average, SM-aware CTA scheduling tracks the optimal overlap across the sweep."
    );
}
