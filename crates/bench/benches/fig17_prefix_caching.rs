//! Figure 17 (repro-original): prefix-sharing paged KV cache. Sweeps the
//! share ratio of a shared-system-prompt workload × attention backend, with
//! prefix caching on and off, on the paged serving engine.
//!
//! What this answers:
//!
//! 1. How much TTFT and scheduled-prefill work does prefix sharing save as
//!    the share ratio grows (agent fleets and chat products live at the high
//!    end)?
//! 2. Does the saving compose with POD-Attention — i.e. does the fused
//!    kernel keep its win when much of the prefill never runs?
//!
//! Writes `BENCH_prefix.json` at the repository root (uploaded as a CI
//! artifact alongside the other trend files) and asserts the orderings:
//! caching must strictly reduce mean TTFT and scheduled prefill tokens at
//! every positive share ratio, and must be inert at share ratio zero.
//!
//! Run with `cargo bench -p pod-bench --bench fig17_prefix_caching`.

use gpu_sim::GpuConfig;
use llm_serving::{
    JsonValue, ModelConfig, ServingConfig, ServingReport, SharedPrefixWorkload, Workload,
};
use pod_bench::microbench::repo_root_path;
use pod_bench::{heading, par_map, pct, print_table, scaled, secs};

const SHARE_RATIOS: [f64; 4] = [0.0, 0.3, 0.6, 0.9];
const GROUPS: usize = 4;
// Deliberately not a multiple of BLOCK_TOKENS: real system prompts are not
// block-aligned, and the misalignment exercises the copy-on-write path
// (divergence mid-block against a cached block).
const PREFIX_TOKENS: usize = 2043;
const FOLLOWUP_RATIO: f64 = 0.35;

fn backends(model: &ModelConfig, gpu: &GpuConfig) -> [ServingConfig; 2] {
    [
        ServingConfig::sarathi(model.clone(), gpu.clone(), 1024),
        ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1024),
    ]
}

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let num_requests = scaled(96, 480);

    heading(
        "Figure 17: prefix caching — share ratio x backend x caching",
        "Shared-system-prompt workload (4 groups, ~2K-token prefixes, 35% multi-turn); \
         paged KV engine; Llama-3-8B, chunk 1024.",
    );

    // One job per (share ratio, backend, caching); every cell generates the
    // same trace for its ratio, so on/off pairs are directly comparable.
    let jobs: Vec<(usize, usize, bool)> = (0..SHARE_RATIOS.len())
        .flat_map(|si| (0..2).flat_map(move |bi| [true, false].map(move |on| (si, bi, on))))
        .collect();
    let reports: Vec<ServingReport> = par_map(jobs.clone(), |(si, bi, caching)| {
        let workload = SharedPrefixWorkload::new(
            Workload::internal(),
            GROUPS,
            PREFIX_TOKENS,
            SHARE_RATIOS[si],
            FOLLOWUP_RATIO,
        );
        let specs = workload.generate(num_requests, 1.0, 7);
        let config = backends(&model, &gpu)[bi].clone().with_paged_kv(caching);
        llm_serving::ServingEngine::new(config).run(specs)
    });
    let report_of = |si: usize, bi: usize, on: bool| -> &ServingReport {
        let idx = jobs
            .iter()
            .position(|&j| j == (si, bi, on))
            .expect("every sweep cell was simulated");
        &reports[idx]
    };

    let rows: Vec<Vec<String>> = jobs
        .iter()
        .zip(&reports)
        .map(|(&(si, _, _), r)| {
            vec![
                format!("{:.1}", SHARE_RATIOS[si]),
                r.system.clone(),
                secs(r.ttft.mean),
                secs(r.ttft.p99),
                secs(r.request_latency.mean),
                format!("{}", r.prefill_tokens_scheduled),
                pct(r.prefix_hit_rate()),
                format!("{}", r.blocks_reused),
                format!("{}", r.cow_copies),
                format!("{}", r.preemptions),
            ]
        })
        .collect();
    print_table(
        &[
            "Share",
            "System",
            "TTFT mean",
            "TTFT P99",
            "Lat mean",
            "Prefill toks",
            "Hit rate",
            "Blocks reused",
            "CoW",
            "Preempt",
        ],
        &rows,
    );

    // Ordering 1: at every positive share ratio, caching strictly reduces
    // mean TTFT and scheduled prefill tokens, on both backends.
    for (si, &ratio) in SHARE_RATIOS.iter().enumerate() {
        for bi in 0..2 {
            let on = report_of(si, bi, true);
            let off = report_of(si, bi, false);
            assert_eq!(on.completed, num_requests);
            assert_eq!(off.completed, num_requests);
            if ratio > 0.0 {
                assert!(
                    on.ttft.mean < off.ttft.mean,
                    "share {ratio} / {}: caching TTFT {} vs {}",
                    on.system,
                    on.ttft.mean,
                    off.ttft.mean
                );
                assert!(
                    on.prefill_tokens_scheduled < off.prefill_tokens_scheduled,
                    "share {ratio} / {}: prefill {} vs {}",
                    on.system,
                    on.prefill_tokens_scheduled,
                    off.prefill_tokens_scheduled
                );
            } else {
                // Ordering 2: nothing to share — caching must be inert.
                assert_eq!(on.makespan.to_bits(), off.makespan.to_bits());
                assert_eq!(on.prefill_tokens_scheduled, off.prefill_tokens_scheduled);
                assert_eq!(on.cached_prefix_tokens, 0);
            }
        }
    }

    // Ordering 3: the hit rate grows with the share ratio (POD backend).
    for si in 1..SHARE_RATIOS.len() {
        let prev = report_of(si - 1, 1, true).prefix_hit_rate();
        let here = report_of(si, 1, true).prefix_hit_rate();
        assert!(
            here > prev,
            "hit rate must grow with share ratio: {here:.3} vs {prev:.3}"
        );
    }
    println!(
        "\nOrderings hold: caching strictly improves TTFT and scheduled prefill at every \
         positive share ratio, is bit-for-bit inert at ratio 0, and hit rate grows with sharing."
    );

    let cells: Vec<JsonValue> = jobs
        .iter()
        .zip(&reports)
        .map(|(&(si, _, caching), report)| {
            JsonValue::obj(vec![
                ("share_ratio", JsonValue::Num(SHARE_RATIOS[si])),
                ("prefix_caching", JsonValue::Bool(caching)),
                ("report", report.to_json()),
            ])
        })
        .collect();
    let json = JsonValue::obj(vec![
        (
            "workload",
            JsonValue::obj(vec![
                ("trace", JsonValue::str("internal/shared-prefix")),
                ("groups", JsonValue::Num(GROUPS as f64)),
                ("prefix_tokens", JsonValue::Num(PREFIX_TOKENS as f64)),
                ("followup_ratio", JsonValue::Num(FOLLOWUP_RATIO)),
                ("qps", JsonValue::Num(1.0)),
                ("num_requests", JsonValue::Num(num_requests as f64)),
                ("seed", JsonValue::Num(7.0)),
            ]),
        ),
        ("cells", JsonValue::Arr(cells)),
    ]);
    let path = repo_root_path("BENCH_prefix.json");
    std::fs::write(&path, json.to_string_pretty()).expect("write BENCH_prefix.json");
    println!("wrote {}", path.display());
}
