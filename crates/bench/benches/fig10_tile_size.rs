//! Figure 10: impact of the decode tile size on compute utilization and HBM
//! bandwidth utilization (context length 4K, batch sizes 8/16/32). This is
//! the design-space exploration that motivates POD-Attention's choice of the
//! minimum 16-row query tile for decode inside the fused kernel.

use attn_kernels::{AttentionConfig, DecodeKernel, DecodeRequest, TileShape};
use gpu_sim::{Engine, GpuConfig};
use pod_bench::{heading, pct, print_table};

fn main() {
    let cfg = AttentionConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let engine = Engine::new(gpu.clone());
    let tiles = [
        TileShape::new(128, 64),
        TileShape::new(64, 128),
        TileShape::new(32, 64),
        TileShape::new(16, 32),
    ];
    let batch_sizes = [8usize, 16, 32];
    let context = 4 * 1024usize;

    for (title, metric) in [
        (
            "Figure 10a: compute utilization vs decode tile size",
            0usize,
        ),
        (
            "Figure 10b: HBM bandwidth utilization vs decode tile size",
            1usize,
        ),
    ] {
        heading(
            title,
            "Decode kernel padding queries to the full tile, context 4K.",
        );
        let mut rows = Vec::new();
        for tile in tiles {
            let mut row = vec![format!("({}, {})", tile.q, tile.kv)];
            for &bs in &batch_sizes {
                let decodes = vec![DecodeRequest::new(context); bs];
                let kernel = DecodeKernel::flash_attention()
                    .with_tile(tile)
                    .with_full_tile_padding();
                let report = engine
                    .run_kernel(kernel.launch("decode", &decodes, &cfg, &gpu))
                    .expect("decode kernel runs");
                let value = if metric == 0 {
                    report.compute_utilization()
                } else {
                    report.memory_utilization()
                };
                row.push(pct(value));
            }
            rows.push(row);
        }
        print_table(&["Tile (Q, K/V)", "bs=8", "bs=16", "bs=32"], &rows);
    }

    println!(
        "\nExpected shape (paper): compute utilization grows with the query tile (up to ~70% at 128, \
         ~10% at 16) while bandwidth utilization is already saturated at large batch sizes regardless \
         of tile — so a fused kernel should use the smallest tile."
    );
}
