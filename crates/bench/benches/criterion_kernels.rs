//! Criterion micro-benchmarks of the reproduction's own hot paths: the
//! CTA-level contention engine, the POD-Attention launch builder and the
//! closed-form attention estimator used by the serving simulator.

use attn_kernels::{AttentionConfig, AttentionEstimator, AttentionStrategy, HybridBatch};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpu_sim::GpuConfig;
use llm_serving::{ModelConfig, ServingConfig, ServingEngine, RequestSpec};
use pod_attention::PodAttention;
use std::hint::black_box;

fn bench_pod_kernel_simulation(c: &mut Criterion) {
    let pod = PodAttention::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb());
    let batch = HybridBatch::uniform(1024, 12 * 1024, 128, 12 * 1024);
    c.bench_function("pod_attention/simulate_c0_like_batch", |b| {
        b.iter(|| pod.execute(black_box(&batch)).expect("POD executes"))
    });
}

fn bench_serial_kernel_simulation(c: &mut Criterion) {
    let pod = PodAttention::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb());
    let batch = HybridBatch::uniform(1024, 12 * 1024, 128, 12 * 1024);
    c.bench_function("fa_serial/simulate_c0_like_batch", |b| {
        b.iter(|| pod.serial_baseline(black_box(&batch)).expect("serial executes"))
    });
}

fn bench_analytic_estimator(c: &mut Criterion) {
    let est = AttentionEstimator::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb());
    let batch = HybridBatch::uniform(1024, 12 * 1024, 128, 12 * 1024);
    c.bench_function("estimator/pod_hybrid_batch", |b| {
        b.iter(|| est.estimate(black_box(&batch), AttentionStrategy::Pod))
    });
}

fn bench_serving_iterations(c: &mut Criterion) {
    let config = ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 1024);
    c.bench_function("serving/8_requests_end_to_end", |b| {
        b.iter_batched(
            || ServingEngine::new(config.clone()),
            |engine| engine.run(vec![RequestSpec::new(0.0, 4096, 32); 8]),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pod_kernel_simulation,
              bench_serial_kernel_simulation,
              bench_analytic_estimator,
              bench_serving_iterations
);
criterion_main!(benches);
