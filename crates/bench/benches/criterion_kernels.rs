//! Micro-benchmarks of the reproduction's own hot paths: the CTA-level
//! contention engine, the POD-Attention launch builder, the closed-form
//! attention estimator and the serving loop's batch pricing — the paths the
//! whole evaluation's wall-clock hangs on.
//!
//! Besides printing a human-readable summary, this harness writes
//! `BENCH_engine.json` at the repository root with the headline numbers
//! (engine intervals/second, batches priced/second, price-cache hit rate,
//! and the cached-vs-uncached speedup of a quick-mode Figure 12 sweep) so
//! future changes have a perf trajectory to compare against.
//!
//! Run with `cargo bench -p pod-bench --bench criterion_kernels`.

use attn_kernels::{AttentionConfig, AttentionEstimator, AttentionStrategy, HybridBatch};
use gpu_sim::GpuConfig;
use llm_serving::{
    offline_long_context, ModelConfig, QuantileSketch, ServingConfig, ServingEngine, ServingReport,
    SummaryStats,
};
use pod_attention::PodAttention;
use pod_bench::microbench::{bench, repo_root_path, BenchResult, Json};
use pod_bench::{heading, par_map};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timed budget per subject. The numbers feed a trend file, not a paper, so
/// a few hundred milliseconds per subject is plenty.
const BUDGET: Duration = Duration::from_millis(300);

fn fig12_quick_setups() -> Vec<(ModelConfig, usize, usize, usize)> {
    vec![
        (ModelConfig::yi_6b(), 512, 2048, 96),
        (ModelConfig::llama2_7b(), 1024, 256, 128),
        (ModelConfig::llama3_8b(), 1024, 1024, 96),
    ]
}

/// Run the quick-mode Figure 12 sweep (3 models x 3 systems, serialized) and
/// return the wall-clock seconds plus every report.
fn run_fig12_quick(price_cache: bool) -> (f64, Vec<ServingReport>) {
    let gpu = GpuConfig::a100_80gb();
    let start = Instant::now();
    let mut reports = Vec::new();
    for (model, chunk, output_tokens, num_requests) in fig12_quick_setups() {
        let requests = offline_long_context(num_requests, 16 * 1024, output_tokens);
        for mut config in [
            ServingConfig::vllm(model.clone(), gpu.clone()),
            ServingConfig::sarathi(model.clone(), gpu.clone(), chunk),
            ServingConfig::sarathi_pod(model.clone(), gpu.clone(), chunk),
        ] {
            config.price_cache = price_cache;
            reports.push(ServingEngine::new(config).run(requests.clone()));
        }
    }
    (start.elapsed().as_secs_f64(), reports)
}

fn main() {
    let cfg = AttentionConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let c0_like = HybridBatch::uniform(1024, 12 * 1024, 128, 12 * 1024);

    heading(
        "Engine & pricing micro-benchmarks",
        "Hot paths of the reproduction itself; results also written to BENCH_engine.json.",
    );

    let mut results: Vec<BenchResult> = Vec::new();

    // --- contention-engine throughput ---
    let pod = PodAttention::new(cfg, gpu.clone());
    let pod_intervals = pod.execute(&c0_like).expect("POD executes").intervals;
    let r_pod = bench("engine/pod_simulate_c0_like_batch", BUDGET, 10, || {
        pod.execute(black_box(&c0_like)).expect("POD executes")
    });
    let intervals_per_sec = pod_intervals as f64 * r_pod.iters_per_sec();
    results.push(r_pod);
    results.push(bench(
        "engine/fa_serial_simulate_c0_like_batch",
        BUDGET,
        10,
        || {
            pod.serial_baseline(black_box(&c0_like))
                .expect("serial executes")
        },
    ));

    // --- closed-form estimator (memoized and exact) ---
    let est_memo = AttentionEstimator::new(cfg, gpu.clone());
    let est_exact = AttentionEstimator::exact(cfg, gpu.clone());
    results.push(bench(
        "estimator/pod_hybrid_batch_memoized",
        BUDGET,
        100,
        || est_memo.estimate(black_box(&c0_like), AttentionStrategy::Pod),
    ));
    results.push(bench(
        "estimator/pod_hybrid_batch_exact",
        BUDGET,
        100,
        || est_exact.estimate(black_box(&c0_like), AttentionStrategy::Pod),
    ));

    // --- batch pricing through the serving cost model ---
    let mut cached_cfg = ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), gpu.clone(), 1024);
    cached_cfg.price_cache = true;
    let mut exact_cfg = cached_cfg.clone();
    exact_cfg.price_cache = false;
    let cached_engine = ServingEngine::new(cached_cfg);
    let exact_engine = ServingEngine::new(exact_cfg);
    let r_price_memo = bench("pricing/price_batch_memoized", BUDGET, 1000, || {
        cached_engine.price_batch(black_box(&c0_like))
    });
    let r_price_exact = bench("pricing/price_batch_exact", BUDGET, 1000, || {
        exact_engine.price_batch(black_box(&c0_like))
    });
    let priced_per_sec_memo = r_price_memo.iters_per_sec();
    let priced_per_sec_exact = r_price_exact.iters_per_sec();
    results.push(r_price_memo);
    results.push(r_price_exact);

    // --- report summarization: shared-select stats and the quantile sketch ---
    // 500K latency-like samples, the size of a large serving run's token-gap
    // buffer. `from_samples` does one shared O(n) selection pass for p50/p99;
    // the sketch is the streaming (constant-memory) alternative the cluster
    // layer uses at fleet scale.
    let samples: Vec<f64> = {
        let mut x = 0x9e3779b97f4a7c15_u64;
        (0..500_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                1e-3 + (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    };
    let r_stats = bench("metrics/summary_stats_500k_samples", BUDGET, 5, || {
        SummaryStats::from_samples(black_box(&samples))
    });
    let stats_samples_per_sec = samples.len() as f64 * r_stats.iters_per_sec();
    results.push(r_stats);
    let r_sketch = bench("metrics/sketch_observe_500k_samples", BUDGET, 5, || {
        let mut sketch = QuantileSketch::new();
        for &s in black_box(&samples) {
            sketch.observe(s);
        }
        (sketch.quantile(0.5), sketch.quantile(0.99))
    });
    let sketch_samples_per_sec = samples.len() as f64 * r_sketch.iters_per_sec();
    results.push(r_sketch);

    // --- end-to-end serving, small and fixed-size ---
    results.push(bench("serving/8_requests_end_to_end", BUDGET, 5, || {
        ServingEngine::new(ServingConfig::sarathi_pod(
            ModelConfig::llama3_8b(),
            gpu.clone(),
            1024,
        ))
        .run(vec![llm_serving::RequestSpec::new(0.0, 4096, 32); 8])
    }));

    for r in &results {
        println!("{}", r.summary());
    }

    // --- the acceptance headline: quick-mode Figure 12, cached vs naive ---
    println!("\nQuick-mode Figure 12 sweep (3 models x 3 systems, single-threaded):");
    let (uncached_secs, exact_reports) = run_fig12_quick(false);
    let (cached_secs, cached_reports) = run_fig12_quick(true);
    let speedup = uncached_secs / cached_secs.max(1e-12);
    let hits: usize = cached_reports.iter().map(|r| r.price_cache_hits).sum();
    let misses: usize = cached_reports.iter().map(|r| r.price_cache_misses).sum();
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let iterations: usize = cached_reports.iter().map(|r| r.iterations).sum();
    let batches_priced_per_sec = iterations as f64 / cached_secs.max(1e-12);
    let max_rel_diff = cached_reports
        .iter()
        .zip(&exact_reports)
        .map(|(a, b)| (a.makespan - b.makespan).abs() / b.makespan.max(1e-12))
        .fold(0.0_f64, f64::max);
    println!("  cache off (naive): {uncached_secs:.3} s");
    println!("  cache on:          {cached_secs:.3} s  ({speedup:.1}x speedup)");
    println!(
        "  price-cache hit rate: {:.1}%  ({hits} hits / {misses} misses)",
        hit_rate * 100.0
    );
    println!(
        "  max cached-vs-exact makespan deviation: {:.3}%",
        max_rel_diff * 100.0
    );
    assert!(
        max_rel_diff < 0.02,
        "cached and uncached serving makespans must agree within 2%"
    );

    // Demonstrate the parallel sweep helper on the same jobs (what the
    // figure harnesses use), for the summary line only.
    let par_start = Instant::now();
    let _ = par_map(vec![true, true, true], |cache| run_fig12_quick(cache).0);
    let par_secs = par_start.elapsed().as_secs_f64() / 3.0;
    println!("  cached sweep amortized under par_map x3: {par_secs:.3} s");

    // --- trend file ---
    let json = Json::obj(vec![
        (
            "engine",
            Json::obj(vec![
                ("intervals_per_sec", Json::Num(intervals_per_sec)),
                ("pod_c0_intervals", Json::Num(pod_intervals as f64)),
                ("pod_c0_sim_secs", Json::Num(results[0].secs_per_iter())),
                (
                    "fa_serial_c0_sim_secs",
                    Json::Num(results[1].secs_per_iter()),
                ),
            ]),
        ),
        (
            "pricing",
            Json::obj(vec![
                (
                    "batches_priced_per_sec_memoized",
                    Json::Num(priced_per_sec_memo),
                ),
                (
                    "batches_priced_per_sec_exact",
                    Json::Num(priced_per_sec_exact),
                ),
            ]),
        ),
        (
            "metrics",
            Json::obj(vec![
                (
                    "summary_stats_samples_per_sec",
                    Json::Num(stats_samples_per_sec),
                ),
                (
                    "sketch_observe_samples_per_sec",
                    Json::Num(sketch_samples_per_sec),
                ),
            ]),
        ),
        (
            "fig12_quick",
            Json::obj(vec![
                ("uncached_secs", Json::Num(uncached_secs)),
                ("cached_secs", Json::Num(cached_secs)),
                ("speedup", Json::Num(speedup)),
                (
                    "serving_iterations_per_sec_cached",
                    Json::Num(batches_priced_per_sec),
                ),
                ("price_cache_hit_rate", Json::Num(hit_rate)),
                ("max_makespan_rel_diff", Json::Num(max_rel_diff)),
            ]),
        ),
    ]);
    let path = repo_root_path("BENCH_engine.json");
    std::fs::write(&path, json.to_string_pretty()).expect("write BENCH_engine.json");
    println!("\nwrote {}", path.display());
}
