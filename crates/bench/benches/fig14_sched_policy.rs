//! Figure 14: effect of the SM-local scheduling policy (50:50 vs
//! proportional) on POD-Attention latency, for Yi-6B and Llama-3-8B at 8K
//! context and increasing decode batch sizes.

use attn_kernels::{AttentionConfig, HybridBatch};
use gpu_sim::GpuConfig;
use pod_attention::{PodAttention, PodOptions, SchedulingPolicy};
use pod_bench::{heading, ms, par_map, print_table};

fn main() {
    let gpu = GpuConfig::a100_80gb();
    let context = 8 * 1024usize;
    let chunk = 2048usize;
    let batch_sizes = [32usize, 64, 96, 128, 192];
    let models = [
        ("Yi-6B", AttentionConfig::yi_6b()),
        ("Llama-3-8B", AttentionConfig::llama3_8b()),
    ];

    heading(
        "Figure 14: POD-Attention latency (ms) under the 50:50 and proportional policies",
        "8K context, 2K prefill chunk.",
    );

    // One job per (model, batch size): both policies simulate in the job so
    // each row's comparison shares a worker, and the sweep fans out.
    let jobs: Vec<(&str, AttentionConfig, usize)> = models
        .iter()
        .flat_map(|(name, cfg)| batch_sizes.iter().map(move |&bs| (*name, *cfg, bs)))
        .collect();
    let rows = par_map(jobs, |(name, cfg, bs)| {
        let fifty = PodAttention::with_options(
            cfg,
            gpu.clone(),
            PodOptions::recommended().with_policy(SchedulingPolicy::FiftyFifty),
        );
        let proportional = PodAttention::with_options(
            cfg,
            gpu.clone(),
            PodOptions::recommended().with_policy(SchedulingPolicy::Proportional),
        );
        let batch = HybridBatch::uniform(chunk, context, bs, context);
        let t50 = fifty.attention_time(&batch).expect("50:50 runs");
        let tp = proportional
            .attention_time(&batch)
            .expect("proportional runs");
        vec![
            name.to_string(),
            format!("{bs}"),
            ms(t50),
            ms(tp),
            format!("{:+.1}%", (t50 / tp - 1.0) * 100.0),
        ]
    });
    print_table(
        &[
            "Model",
            "Batch size",
            "50:50",
            "Proportional",
            "Proportional gain",
        ],
        &rows,
    );

    println!(
        "\nExpected shape (paper): the two policies are close at small batch sizes; proportional \
         allocation pulls ahead (up to ~14%) as the batch grows and decode CTAs outnumber prefill CTAs."
    );
}
