//! Table 8: limiting the number of KV splits of the chunked prefill inside
//! the fused kernel. Per-layer attention runtime (ms) of the last four chunks
//! of a 16K-token prompt (chunk 512), co-running with 64 decode requests of
//! 16K context (Llama-3-8B).

use attn_kernels::{AttentionConfig, AttentionStrategy, HybridBatch, SplitPolicy};
use fusion_lab::HybridAttentionRunner;
use gpu_sim::GpuConfig;
use pod_attention::{PodAttention, PodOptions};
use pod_bench::{heading, ms, print_table};

fn main() {
    let cfg = AttentionConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let chunk = 512usize;
    let decode_bs = 64usize;
    let context = 16 * 1024usize;
    let chunks = context / chunk;

    let runner = HybridAttentionRunner::new(cfg, gpu.clone());
    let vanilla = PodAttention::with_options(
        cfg,
        gpu.clone(),
        PodOptions::recommended().with_prefill_splits(SplitPolicy::Vanilla),
    );
    let limited = PodAttention::with_options(
        cfg,
        gpu.clone(),
        PodOptions::recommended().with_prefill_splits(SplitPolicy::LimitedToTwoWaves),
    );

    heading(
        "Table 8: per-layer attention runtime (ms) of the last four prefill chunks",
        "Llama-3-8B, 16K context, chunk 512, decode batch 64.",
    );

    let mut rows = Vec::new();
    for chunk_id in (chunks - 4)..chunks {
        let batch = HybridBatch::uniform(chunk, (chunk_id + 1) * chunk, decode_bs, context);
        let fa = runner
            .time(&batch, AttentionStrategy::FaSerial)
            .expect("FA serial runs");
        let t_vanilla = vanilla
            .attention_time(&batch)
            .expect("vanilla-split POD runs");
        let t_limited = limited
            .attention_time(&batch)
            .expect("limited-split POD runs");
        rows.push(vec![
            format!("{chunk_id}"),
            ms(fa),
            format!("{} ({:.2}x)", ms(t_vanilla), t_vanilla / fa),
            format!("{} ({:.2}x)", ms(t_limited), t_limited / fa),
        ]);
    }
    print_table(
        &[
            "Chunk Id",
            "FA_Serial",
            "POD (vanilla split)",
            "POD (limited split)",
        ],
        &rows,
    );

    println!(
        "\nExpected shape (paper): both POD variants beat FA_Serial; limiting the splits to two \
         waves is clearly faster than vanilla splitting (0.73-0.75x vs 0.86-0.87x of serial)."
    );
}
