//! Figure 16 (repro-original): cluster-scale serving. Sweeps fleet size ×
//! router policy × attention backend over a shared bursty trace, each fleet
//! on its own global virtual clock.
//!
//! The questions this answers, none of which the single-GPU figures can:
//!
//! 1. Does Sarathi+POD keep its win over Sarathi when the workload is spread
//!    across a fleet (it could vanish if routing, not the kernel, dominated)?
//! 2. Does routing policy matter under bursty load — specifically, does the
//!    prefill/decode-aware router beat round-robin on tail TTFT?
//!
//! Writes `BENCH_cluster.json` at the repository root (uploaded as a CI
//! artifact alongside `BENCH_engine.json`) and asserts both orderings, so a
//! regression in either fails the bench run.
//!
//! Run with `cargo bench -p pod-bench --bench fig16_cluster_scaling`.

use gpu_sim::GpuConfig;
use llm_serving::{
    ClusterReport, JsonValue, ModelConfig, RateSchedule, RouterPolicy, ServingConfig, Workload,
};
use pod_bench::microbench::repo_root_path;
use pod_bench::online::{print_cluster_table, run_cluster};
use pod_bench::{heading, par_map, scaled};

const REPLICA_COUNTS: [usize; 4] = [1, 2, 4, 8];
const ROUTERS: [RouterPolicy; 3] = [
    RouterPolicy::RoundRobin,
    RouterPolicy::LeastOutstandingTokens,
    RouterPolicy::DecodeAware {
        long_prefill_tokens: 8 * 1024,
    },
];

fn backends(model: &ModelConfig, gpu: &GpuConfig) -> [ServingConfig; 2] {
    [
        ServingConfig::sarathi(model.clone(), gpu.clone(), 1024),
        ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1024),
    ]
}

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    // Flash-crowd load: a low trickle punctuated by 20-second bursts at ~27x
    // the base rate, from the paper's internal workload mix (so it carries
    // both 30K-token prompts and decode-heavy requests — the heterogeneity
    // routing policies exist for).
    let schedule = RateSchedule::bursty(0.3, 8.0, 40.0, 20.0);
    let num_requests = scaled(120, 600);
    let trace = Workload::internal().generate_trace(num_requests, &schedule, 5);

    heading(
        "Figure 16: cluster scaling — replicas x router x attention backend",
        "Bursty trace (0.3 qps base, 20 s bursts at 8 qps); Llama-3-8B, chunk 1024.",
    );

    // One job per (replicas, router, backend): every fleet simulation is
    // independent, so the whole sweep fans out through par_map.
    let jobs: Vec<(usize, usize, usize)> = REPLICA_COUNTS
        .iter()
        .enumerate()
        .flat_map(|(ri, _)| {
            (0..ROUTERS.len()).flat_map(move |pi| (0..2).map(move |bi| (ri, pi, bi)))
        })
        .collect();
    let reports: Vec<ClusterReport> = par_map(jobs.clone(), |(ri, pi, bi)| {
        let base = backends(&model, &gpu)[bi].clone();
        run_cluster(base, REPLICA_COUNTS[ri], ROUTERS[pi], &trace)
    });
    let report_of = |ri: usize, pi: usize, bi: usize| -> &ClusterReport {
        let idx = jobs
            .iter()
            .position(|&j| j == (ri, pi, bi))
            .expect("every sweep cell was simulated");
        &reports[idx]
    };

    for (ri, &replicas) in REPLICA_COUNTS.iter().enumerate() {
        println!("-- {replicas} replica(s), {num_requests} requests --");
        let block: Vec<&ClusterReport> = (0..ROUTERS.len())
            .flat_map(|pi| (0..2).map(move |bi| report_of(ri, pi, bi)))
            .collect();
        print_cluster_table(&block);
        println!();
    }

    // Ordering 1: Sarathi+POD no worse than Sarathi in every cell, on both
    // mean request latency and fleet makespan.
    for (ri, &replicas) in REPLICA_COUNTS.iter().enumerate() {
        for (pi, router) in ROUTERS.iter().enumerate() {
            let sarathi = report_of(ri, pi, 0);
            let pod = report_of(ri, pi, 1);
            assert_eq!(pod.aggregate.completed, num_requests);
            assert!(
                pod.aggregate.request_latency.mean <= sarathi.aggregate.request_latency.mean,
                "{replicas} replicas / {}: POD mean latency {} vs Sarathi {}",
                router.label(),
                pod.aggregate.request_latency.mean,
                sarathi.aggregate.request_latency.mean
            );
            assert!(
                pod.aggregate.makespan <= sarathi.aggregate.makespan * 1.01,
                "{replicas} replicas / {}: POD makespan {} vs Sarathi {}",
                router.label(),
                pod.aggregate.makespan,
                sarathi.aggregate.makespan
            );
        }
    }

    // Ordering 2: under bursty load the decode-aware router beats
    // round-robin on tail TTFT (equal on one replica, where routing is
    // moot), with the POD backend.
    for (ri, &replicas) in REPLICA_COUNTS.iter().enumerate() {
        let rr = report_of(ri, 0, 1);
        let da = report_of(ri, 2, 1);
        assert!(
            da.aggregate.ttft.p99 <= rr.aggregate.ttft.p99,
            "{replicas} replicas: decode-aware TTFT P99 {} vs round-robin {}",
            da.aggregate.ttft.p99,
            rr.aggregate.ttft.p99
        );
    }
    println!(
        "Orderings hold: Sarathi+POD <= Sarathi (mean latency, every cell); \
         decode-aware <= round-robin (TTFT P99, every replica count)."
    );

    // Machine-readable sweep output, one entry per cell, in the shared
    // report JSON format.
    let cells: Vec<JsonValue> = jobs
        .iter()
        .zip(&reports)
        .map(|(&(ri, _, _), report)| {
            JsonValue::obj(vec![
                ("replicas", JsonValue::Num(REPLICA_COUNTS[ri] as f64)),
                ("report", report.to_json()),
            ])
        })
        .collect();
    let json = JsonValue::obj(vec![
        (
            "workload",
            JsonValue::obj(vec![
                ("trace", JsonValue::str("internal/bursty")),
                ("base_qps", JsonValue::Num(0.3)),
                ("burst_qps", JsonValue::Num(8.0)),
                ("calm_secs", JsonValue::Num(40.0)),
                ("burst_secs", JsonValue::Num(20.0)),
                ("num_requests", JsonValue::Num(num_requests as f64)),
                ("seed", JsonValue::Num(5.0)),
            ]),
        ),
        ("cells", JsonValue::Arr(cells)),
    ]);
    let path = repo_root_path("BENCH_cluster.json");
    std::fs::write(&path, json.to_string_pretty()).expect("write BENCH_cluster.json");
    println!("\nwrote {}", path.display());
}
