//! Table 5: online inference latency on the internal-enterprise-style
//! workload (Llama-3-8B, chunk 1536) at QPS 1.1 and 1.2, comparing the
//! original vLLM scheduler, Sarathi and Sarathi+POD on TTFT, TBT, request
//! latency and generation stalls.

use llm_serving::Workload;
use pod_bench::online::{print_latency_block, run_three_systems};
use pod_bench::{heading, scaled};

fn main() {
    let workload = Workload::internal();
    let num_requests = scaled(256, 2048);
    let chunk = 1536usize;

    heading(
        "Table 5: internal workload (latency in seconds)",
        &format!("Llama-3-8B TP-2, {num_requests} requests, chunk size {chunk}."),
    );

    for qps in [1.1, 1.2] {
        let reports = run_three_systems(&workload, qps, num_requests, chunk, 51);
        print_latency_block(qps, &reports);
    }

    println!(
        "Expected shape (paper): vLLM has the lowest TTFT but nearly all requests stall \
         (P99 TBT in the seconds); Sarathi eliminates stalls at the cost of TTFT; Sarathi+POD \
         keeps Sarathi's stall-free TBT while pulling TTFT and request latency back down."
    );
}
