//! Figure 11: distribution of attention speedup over FA_Serial for
//! FA_Streams, FI_Serial, FI_Batched, FA_HFuse and POD across a sweep of
//! hybrid batches (context lengths 4K–20K, chunk sizes 512–2K, all three
//! models), restricted — as in the paper — to batches where both prefill and
//! decode attention are at least 20 % of the serial runtime.

use attn_kernels::{AttentionConfig, AttentionStrategy, HybridBatch};
use fusion_lab::HybridAttentionRunner;
use gpu_sim::GpuConfig;
use pod_bench::{heading, par_map, print_table, scaled, Distribution};

fn sweep_batches(step: usize) -> Vec<(AttentionConfig, HybridBatch)> {
    let models = [
        AttentionConfig::yi_6b(),
        AttentionConfig::llama2_7b(),
        AttentionConfig::llama3_8b(),
    ];
    let mut batches = Vec::new();
    for cfg in models {
        for context_kib in (4..=20).step_by(step) {
            let context = context_kib * 1024;
            for chunk in [512usize, 1024, 2048] {
                for decode_bs in [16usize, 48, 96, 160, 224] {
                    batches.push((
                        cfg,
                        HybridBatch::uniform(chunk, context, decode_bs, context),
                    ));
                }
            }
        }
    }
    batches
}

fn main() {
    let gpu = GpuConfig::a100_80gb();
    // Quick mode: 4K/8K/12K/16K/20K in steps of 8K; full mode: every 4K.
    let step = if pod_bench::full_eval() { 4 } else { 8 };
    let batches = sweep_batches(step);
    let _ = scaled(0, 0);

    heading(
        "Figure 11: distribution of attention speedup over FA_Serial",
        &format!(
            "Sweep of {} hybrid batches across Yi-6B, Llama-2-7B, Llama-3-8B.",
            batches.len()
        ),
    );

    let strategies = [
        AttentionStrategy::FaStreams,
        AttentionStrategy::FiSerial,
        AttentionStrategy::FiBatched,
        AttentionStrategy::FaHFuse,
        AttentionStrategy::Pod,
    ];
    // One job per hybrid batch: each runs the serial baseline (for the 20%
    // inclusion filter) plus all five strategies through the CTA-level
    // simulator. The per-model runners are shared read-only across workers.
    let runners: Vec<(AttentionConfig, HybridAttentionRunner)> = [
        AttentionConfig::yi_6b(),
        AttentionConfig::llama2_7b(),
        AttentionConfig::llama3_8b(),
    ]
    .into_iter()
    .map(|cfg| (cfg, HybridAttentionRunner::new(cfg, gpu.clone())))
    .collect();
    let per_batch: Vec<Option<[f64; 5]>> = par_map(batches, |(cfg, batch)| {
        let runner = &runners
            .iter()
            .find(|(c, _)| *c == cfg)
            .expect("runner for every model")
            .1;
        // Keep only batches where both operations matter (>= 20% of serial).
        let serial = runner
            .execute(&batch, AttentionStrategy::FaSerial)
            .expect("serial runs");
        let prefill_t = serial
            .kernel("fa2_prefill")
            .map(|k| k.duration())
            .unwrap_or(0.0);
        let decode_t = serial
            .kernel("fa_decode")
            .map(|k| k.duration())
            .unwrap_or(0.0);
        let total = prefill_t + decode_t;
        if total <= 0.0 || prefill_t / total < 0.2 || decode_t / total < 0.2 {
            return None;
        }
        let mut speedups = [0.0_f64; 5];
        for (i, &s) in strategies.iter().enumerate() {
            let speedup = runner
                .speedup_over_fa_serial(&batch, s)
                .expect("strategy runs");
            speedups[i] = (speedup - 1.0) * 100.0;
        }
        Some(speedups)
    });

    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
    let mut included = 0usize;
    for speedups in per_batch.into_iter().flatten() {
        included += 1;
        for (i, s) in speedups.into_iter().enumerate() {
            samples[i].push(s);
        }
    }

    let rows: Vec<Vec<String>> = strategies
        .iter()
        .zip(&samples)
        .map(|(s, vals)| {
            let d = Distribution::of(vals);
            vec![
                s.label().to_string(),
                format!("{:.1}%", d.min),
                format!("{:.1}%", d.p25),
                format!("{:.1}%", d.median),
                format!("{:.1}%", d.p75),
                format!("{:.1}%", d.max),
                format!("{:.1}%", d.mean),
            ]
        })
        .collect();
    println!("Included {included} hybrid batches (both operations >= 20% of serial runtime).\n");
    print_table(
        &["Strategy", "min", "p25", "median", "p75", "max", "mean"],
        &rows,
    );

    println!(
        "\nExpected shape (paper): POD reaches up to ~59% speedup with a mean of ~28% and never \
         falls below 0%; FA_HFuse is the strongest baseline but can be negative; FI_Batched \
         degrades sharply at long contexts."
    );
}
