//! Figure 12: offline serving throughput (requests per minute) of
//! vLLM (original scheduler), Sarathi and Sarathi+POD for Yi-6B, Llama-2-7B
//! and Llama-3-8B on 16K-token requests.

use gpu_sim::GpuConfig;
use llm_serving::{offline_long_context, ModelConfig, ServingConfig, ServingEngine};
use pod_bench::{heading, print_table, scaled};

fn main() {
    let gpu = GpuConfig::a100_80gb();
    // Paper: 1K requests for Yi-6B, 2K for the Llama models, ~1 hour per
    // configuration. The quick mode keeps the same shape at a fraction of the
    // requests; set POD_FULL_EVAL=1 for paper-scale counts.
    let setups = [
        (ModelConfig::yi_6b(), 512usize, 2048usize, scaled(96, 1024)),
        (ModelConfig::llama2_7b(), 1024, 256, scaled(128, 2048)),
        (ModelConfig::llama3_8b(), 1024, 1024, scaled(96, 2048)),
    ];

    heading(
        "Figure 12: serving throughput in offline inference (requests/minute)",
        "16K-token prompts; chunk 512 for Yi-6B, 1K for Llama-2-7B and Llama-3-8B.",
    );

    let mut rows = Vec::new();
    for (model, chunk, output_tokens, num_requests) in setups {
        let requests = offline_long_context(num_requests, 16 * 1024, output_tokens);
        let vllm = ServingEngine::new(ServingConfig::vllm(model.clone(), gpu.clone()))
            .run(requests.clone());
        let sarathi =
            ServingEngine::new(ServingConfig::sarathi(model.clone(), gpu.clone(), chunk))
                .run(requests.clone());
        let pod = ServingEngine::new(ServingConfig::sarathi_pod(model.clone(), gpu.clone(), chunk))
            .run(requests);
        rows.push(vec![
            model.name.clone(),
            format!("{num_requests}"),
            format!("{:.1}", vllm.requests_per_minute()),
            format!("{:.1}", sarathi.requests_per_minute()),
            format!("{:.1}", pod.requests_per_minute()),
            format!(
                "+{:.0}%",
                (pod.requests_per_minute() / sarathi.requests_per_minute() - 1.0) * 100.0
            ),
            format!(
                "+{:.0}%",
                (pod.requests_per_minute() / vllm.requests_per_minute() - 1.0) * 100.0
            ),
        ]);
    }
    print_table(
        &[
            "Model",
            "Requests",
            "vLLM (original)",
            "Sarathi",
            "Sarathi+POD",
            "vs Sarathi",
            "vs vLLM",
        ],
        &rows,
    );

    println!(
        "\nExpected shape (paper): Sarathi+POD delivers the highest throughput for every model \
         (paper: +19-22% over Sarathi, +12-27% over vLLM)."
    );
}
