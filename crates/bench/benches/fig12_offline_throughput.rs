//! Figure 12: offline serving throughput (requests per minute) of
//! vLLM (original scheduler), Sarathi and Sarathi+POD for Yi-6B, Llama-2-7B
//! and Llama-3-8B on 16K-token requests.

use gpu_sim::GpuConfig;
use llm_serving::{offline_long_context, ModelConfig, ServingConfig, ServingEngine};
use pod_bench::{heading, par_map, print_table, scaled};

fn main() {
    let gpu = GpuConfig::a100_80gb();
    // Paper: 1K requests for Yi-6B, 2K for the Llama models, ~1 hour per
    // configuration. The quick mode keeps the same shape at a fraction of the
    // requests; set POD_FULL_EVAL=1 for paper-scale counts.
    let setups = [
        (ModelConfig::yi_6b(), 512usize, 2048usize, scaled(96, 1024)),
        (ModelConfig::llama2_7b(), 1024, 256, scaled(128, 2048)),
        (ModelConfig::llama3_8b(), 1024, 1024, scaled(96, 2048)),
    ];

    heading(
        "Figure 12: serving throughput in offline inference (requests/minute)",
        "16K-token prompts; chunk 512 for Yi-6B, 1K for Llama-2-7B and Llama-3-8B.",
    );

    // One job per (model, system): all nine serving simulations run in
    // parallel and the rows are reassembled in model order afterwards.
    let jobs: Vec<(usize, usize)> = (0..setups.len())
        .flat_map(|m| (0..3).map(move |s| (m, s)))
        .collect();
    let rpm = par_map(jobs, |(m, s)| {
        let (model, chunk, output_tokens, num_requests) = &setups[m];
        let requests = offline_long_context(*num_requests, 16 * 1024, *output_tokens);
        let config = match s {
            0 => ServingConfig::vllm(model.clone(), gpu.clone()),
            1 => ServingConfig::sarathi(model.clone(), gpu.clone(), *chunk),
            _ => ServingConfig::sarathi_pod(model.clone(), gpu.clone(), *chunk),
        };
        ServingEngine::new(config)
            .run(requests)
            .requests_per_minute()
    });

    let mut rows = Vec::new();
    for (m, (model, _, _, num_requests)) in setups.iter().enumerate() {
        let (vllm, sarathi, pod) = (rpm[3 * m], rpm[3 * m + 1], rpm[3 * m + 2]);
        rows.push(vec![
            model.name.clone(),
            format!("{num_requests}"),
            format!("{vllm:.1}"),
            format!("{sarathi:.1}"),
            format!("{pod:.1}"),
            format!("+{:.0}%", (pod / sarathi - 1.0) * 100.0),
            format!("+{:.0}%", (pod / vllm - 1.0) * 100.0),
        ]);
    }
    print_table(
        &[
            "Model",
            "Requests",
            "vLLM (original)",
            "Sarathi",
            "Sarathi+POD",
            "vs Sarathi",
            "vs vLLM",
        ],
        &rows,
    );

    println!(
        "\nExpected shape (paper): Sarathi+POD delivers the highest throughput for every model \
         (paper: +19-22% over Sarathi, +12-27% over vLLM)."
    );
}
