//! Figure 4: contribution of each operation to the iteration runtime under
//! hybrid batching (model: Llama-3-8B, batch size 60, chunk size 1K). For
//! each context length the iteration processing the *last* chunk of the
//! prompt is shown.

use attn_kernels::{AttentionStrategy, HybridBatch};
use gpu_sim::GpuConfig;
use llm_serving::{IterationCostModel, ModelConfig};
use pod_bench::{heading, pct, print_table};

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let cost = IterationCostModel::new(model, gpu);
    let chunk = 1024usize;
    let batch_size = 60usize;

    heading(
        "Figure 4: share of iteration time per operation",
        "Llama-3-8B TP-2, decode batch 60, chunk 1K, last chunk of the prompt.",
    );

    let mut rows = Vec::new();
    for kib in [1usize, 8, 16] {
        let context = kib * 1024;
        let chunk_len = chunk.min(context);
        let batch = HybridBatch::uniform(chunk_len, context, batch_size, context);
        let b = cost.breakdown(&batch, AttentionStrategy::FaSerial);
        let total = b.total();
        let mut row = vec![format!("{kib}K"), format!("{:.1} ms", total * 1e3)];
        for (_, t) in b.components() {
            row.push(pct(t / total));
        }
        rows.push(row);
    }
    print_table(
        &[
            "Context",
            "Iteration",
            "Pre Proj",
            "Prefill Attn",
            "Decode Attn",
            "Post Proj",
            "FFN",
            "Others",
        ],
        &rows,
    );

    println!(
        "\nExpected shape (paper): attention grows from ~13% of the iteration at 1K context to >60% at 16K."
    );
}
