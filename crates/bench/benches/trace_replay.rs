//! Fleet-scale trace replay: drives a multi-hour diurnal trace with flash
//! bursts through a 16-replica cluster on the event-driven core, with
//! streaming (constant-memory) metrics, and measures *host* throughput —
//! wall-clock seconds and simulated iterations (events) per second.
//!
//! This is the benchmark behind `perf_gate --fleet`: unlike the figure
//! benches, which assert orderings in *virtual* time, this one gates how fast
//! the simulator itself chews through a fleet trace. Someone serializing the
//! event-driven core, reintroducing the lockstep sweep, or buffering
//! per-request samples again shows up here as an events/sec drop or a
//! `peak_sample_bytes` jump long before any virtual-time metric moves.
//!
//! Three checks ride along:
//!
//! 1. A lockstep-oracle spot check on a trace prefix: `Cluster::run` must
//!    produce the bit-identical report to `Cluster::run_lockstep`.
//! 2. Every request completes — the schedule is tuned below fleet capacity,
//!    so a capacity regression (or a router sending everything to one
//!    replica) fails the bench instead of silently inflating the backlog.
//! 3. Streaming mode's peak resident sample count stays bounded by the
//!    *concurrent* request population, not the trace length.
//!
//! Writes `BENCH_fleet.json` at the repository root (uploaded as a CI
//! artifact, gated by `perf_gate --fleet`).
//!
//! Run with `cargo bench -p pod-bench --bench trace_replay`.

use gpu_sim::GpuConfig;
use llm_serving::{
    Cluster, ClusterConfig, JsonValue, ModelConfig, RateSchedule, RateSegment, RouterPolicy,
    ServingConfig, Workload,
};
use pod_bench::microbench::repo_root_path;
use pod_bench::{heading, scaled};
use std::time::Instant;

const REPLICAS: usize = 16;
const CHUNK: usize = 1024;
const SEED: u64 = 42;

/// Diurnal rate curve with a flash burst spliced into every step: `steps`
/// cosine-shaped segments per `period_secs` cycle, each ending in
/// `burst_secs` at `burst_qps` above the local base rate. The shape of a
/// day of production traffic with periodic flash crowds.
fn diurnal_with_bursts(
    trough_qps: f64,
    peak_qps: f64,
    period_secs: f64,
    steps: usize,
    burst_qps: f64,
    burst_secs: f64,
) -> RateSchedule {
    let step_secs = period_secs / steps as f64;
    assert!(burst_secs < step_secs, "burst must fit inside one step");
    let mut segments = Vec::with_capacity(2 * steps);
    for i in 0..steps {
        let phase = 2.0 * std::f64::consts::PI * (i as f64 + 0.5) / steps as f64;
        let qps = trough_qps + (peak_qps - trough_qps) * 0.5 * (1.0 - phase.cos());
        segments.push(RateSegment {
            duration: step_secs - burst_secs,
            qps,
        });
        segments.push(RateSegment {
            duration: burst_secs,
            qps: qps + burst_qps,
        });
    }
    RateSchedule::new(segments)
}

/// Interactive chat traffic: short prompts, short answers — the request
/// shape where fleet-scale *counts* (not per-request length) dominate host
/// cost, which is exactly what this bench stresses.
fn chat_workload() -> Workload {
    Workload {
        name: "chat-small".to_string(),
        mean_context: 320.0,
        context_range: (64, 2048),
        mean_decode: 8.0,
        min_decode: 2,
    }
}

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let workload = chat_workload();
    // Trough 60 qps, peak 200 qps over a one-hour cycle, plus 10-second
    // bursts at +80 qps — mean ~133 qps, so 2M requests span ~4.2 virtual
    // hours (several full diurnal cycles). Peak-with-burst is ~280 qps
    // across 16 replicas, comfortably below fleet capacity: the backlog
    // drains every cycle instead of compounding.
    let (trough, peak, period, steps, burst_qps, burst_secs) =
        (60.0, 200.0, 3600.0, 12, 80.0, 10.0);
    let schedule = diurnal_with_bursts(trough, peak, period, steps, burst_qps, burst_secs);
    let num_requests = scaled(2_000_000, 4_000_000);

    heading(
        "Fleet trace replay: event-driven core, streaming metrics",
        "16 replicas, diurnal 60-200 qps + 10 s bursts at +80 qps; Llama-3-8B, chunk 1024.",
    );

    println!("generating {num_requests}-request trace ...");
    let trace = workload.generate_trace(num_requests, &schedule, SEED);
    let virtual_span = trace.last().expect("non-empty trace").arrival;
    println!(
        "trace spans {:.2} virtual hours ({:.1} qps mean)",
        virtual_span / 3600.0,
        num_requests as f64 / virtual_span
    );

    let base = ServingConfig::sarathi_pod(model, gpu, CHUNK).with_streaming_metrics(true);
    let router = RouterPolicy::LeastOutstandingTokens;

    // Check 1: lockstep-oracle spot check on a prefix. The event-driven run
    // must be bit-for-bit the lockstep sweep's outcome — the heap changes
    // when host work happens, never what virtual time things happen at.
    let prefix: Vec<_> = trace.iter().take(scaled(20_000, 50_000)).cloned().collect();
    let mut spot = Cluster::new(ClusterConfig::new(base.clone(), 4, router));
    let event = spot.run(prefix.clone());
    let lockstep = spot.run_lockstep(prefix);
    assert_eq!(
        event, lockstep,
        "event-driven replay diverged from the lockstep oracle"
    );
    println!(
        "oracle spot check: {} requests bit-identical under event-driven and lockstep cores",
        event.aggregate.completed
    );

    // The replay itself, wall-clock timed. Trace generation is excluded —
    // the gate measures the cluster core, not the Poisson sampler.
    let mut cluster = Cluster::new(ClusterConfig::new(base, REPLICAS, router));
    let start = Instant::now();
    let report = cluster.run(trace);
    let wall_secs = start.elapsed().as_secs_f64();

    // Check 2: the fleet kept up — every request finished.
    assert_eq!(
        report.aggregate.completed, num_requests,
        "fleet fell behind the trace: {} of {num_requests} completed",
        report.aggregate.completed
    );

    // Check 3: constant-memory reporting. Peak resident samples track the
    // concurrent request population (tens of thousands at 280 qps), not the
    // multi-million-request trace.
    let peak_samples: usize = cluster
        .replicas()
        .iter()
        .map(|r| r.peak_token_samples())
        .sum();
    let peak_sample_bytes = peak_samples * std::mem::size_of::<f64>();
    // Every finished request holds one token time per output token; TBT has
    // one sample per inter-token gap, so this is the exact-mode buffer size.
    let total_token_samples = report.aggregate.tbt.count + report.aggregate.completed;
    let exact_sample_bytes = total_token_samples * std::mem::size_of::<f64>();
    assert!(
        peak_samples * 10 < total_token_samples,
        "streaming mode retained {peak_samples} samples — not constant-memory \
         against {total_token_samples} total output tokens"
    );

    let events = report.aggregate.iterations;
    let events_per_sec = events as f64 / wall_secs;
    let requests_per_sec = num_requests as f64 / wall_secs;
    println!(
        "replayed {num_requests} requests / {:.2} virtual hours in {wall_secs:.2} s wall \
         ({:.0} events/s, {:.0} requests/s)",
        report.aggregate.makespan / 3600.0,
        events_per_sec,
        requests_per_sec
    );
    println!(
        "peak resident samples: {peak_samples} ({:.1} MiB) vs {:.1} MiB buffered exactly",
        peak_sample_bytes as f64 / (1024.0 * 1024.0),
        exact_sample_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "latency mean {:.3} s, TTFT p99 {:.3} s (sketch, rel err <= 1%)",
        report.aggregate.request_latency.mean, report.aggregate.ttft.p99
    );

    let json = JsonValue::obj(vec![
        (
            "workload",
            JsonValue::obj(vec![
                ("trace", JsonValue::str("chat-small/diurnal+bursts")),
                ("trough_qps", JsonValue::Num(trough)),
                ("peak_qps", JsonValue::Num(peak)),
                ("period_secs", JsonValue::Num(period)),
                ("steps", JsonValue::Num(steps as f64)),
                ("burst_qps", JsonValue::Num(burst_qps)),
                ("burst_secs", JsonValue::Num(burst_secs)),
                ("num_requests", JsonValue::Num(num_requests as f64)),
                ("seed", JsonValue::Num(SEED as f64)),
            ]),
        ),
        (
            "fleet",
            JsonValue::obj(vec![
                ("replicas", JsonValue::Num(REPLICAS as f64)),
                ("requests", JsonValue::Num(num_requests as f64)),
                (
                    "virtual_span_secs",
                    JsonValue::Num(report.aggregate.makespan),
                ),
                ("wall_secs", JsonValue::Num(wall_secs)),
                ("events", JsonValue::Num(events as f64)),
                ("events_per_sec", JsonValue::Num(events_per_sec)),
                ("requests_per_sec", JsonValue::Num(requests_per_sec)),
                (
                    "advance_workers",
                    JsonValue::Num(cluster.advance_workers() as f64),
                ),
                (
                    "peak_sample_bytes",
                    JsonValue::Num(peak_sample_bytes as f64),
                ),
                (
                    "exact_sample_bytes",
                    JsonValue::Num(exact_sample_bytes as f64),
                ),
            ]),
        ),
        ("report", report.to_json()),
    ]);
    let path = repo_root_path("BENCH_fleet.json");
    std::fs::write(&path, json.to_string_pretty()).expect("write BENCH_fleet.json");
    println!("\nwrote {}", path.display());
}
