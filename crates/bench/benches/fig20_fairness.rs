//! Figure 20 (repro-original): multi-tenant fairness — per-tenant goodput
//! isolation under adversarial tenant mixes, with and without weighted fair
//! queueing and priority preemption.
//!
//! Three scenarios from [`TenantMix`], each on a single saturable replica:
//!
//! 1. **Noisy neighbor** — steady interactive tenants share the replica
//!    with one tenant whose 4x-heavier prompts arrive in flash-crowd
//!    bursts. The isolation claim: under fair queueing every well-behaved
//!    tenant keeps >= 90% of the goodput it gets with the replica to
//!    itself, while FCFS lets the burst starve at least one of them below
//!    50%.
//! 2. **Prompt bomb** — a trickle of enormous prompts that each stall the
//!    FCFS queue for whole seconds.
//! 3. **Priority inversion** — a low-priority bulk flood in front of a
//!    high-priority interactive trickle; priority-aware selection (and,
//!    under KV pressure, priority preemption of resident bulk decodes)
//!    must invert the inversion.
//!
//! Also asserts the two global contracts: fairness costs < 5% aggregate
//! throughput on the noisy-neighbor mix, and with a single tenant fair
//! queueing is **bit-for-bit** identical to FCFS (the inertness pin behind
//! every existing golden).
//!
//! Writes `BENCH_fairness.json` at the repository root (gated by
//! `perf_gate --fairness` in CI).
//!
//! Run with `cargo bench -p pod-bench --bench fig20_fairness`.

use gpu_sim::GpuConfig;
use llm_serving::{
    Cluster, ClusterConfig, ClusterReport, FairQueueConfig, JsonValue, ModelConfig, RouterPolicy,
    ServingConfig, ServingEngine, TenantId, TenantMix,
};
use pod_bench::microbench::repo_root_path;
use pod_bench::{heading, par_map, pct, print_table, scaled, secs};

const SEED: u64 = 20;
/// Well-behaved tenants in the noisy-neighbor and prompt-bomb mixes.
const WELL_BEHAVED: usize = 3;
/// KV capacity for the priority-inversion cells: tight enough that the bulk
/// tenant's resident decodes create real pressure for preemption to relieve.
const INVERSION_KV_TOKENS: usize = 40_000;

#[derive(Clone, Copy, PartialEq)]
enum Policy {
    Fcfs,
    Fair,
    FairPrio,
}

impl Policy {
    fn label(self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::Fair => "fair",
            Policy::FairPrio => "fair+prio",
        }
    }

    fn apply(self, base: ServingConfig) -> ServingConfig {
        match self {
            Policy::Fcfs => base,
            Policy::Fair => base.with_fair_queue(FairQueueConfig::new()),
            Policy::FairPrio => {
                base.with_fair_queue(FairQueueConfig::new().with_priority_preemption(true))
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
struct Cell {
    scenario: usize, // index into scenarios()
    policy: Policy,
}

fn scenarios(count_each: usize) -> Vec<(&'static str, TenantMix)> {
    vec![
        (
            "noisy-neighbor",
            TenantMix::noisy_neighbor(WELL_BEHAVED, 1.0, 16.0, count_each),
        ),
        (
            "prompt-bomb",
            TenantMix::prompt_bomb(WELL_BEHAVED, 0.5, count_each),
        ),
        (
            "priority-inversion",
            TenantMix::priority_inversion(0.5, count_each),
        ),
    ]
}

fn base_config(model: &ModelConfig, gpu: &GpuConfig, scenario: usize) -> ServingConfig {
    let mut base =
        ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1024).with_paged_kv(false);
    if scenario == 2 {
        base.kv_capacity_tokens = Some(INVERSION_KV_TOKENS);
    }
    base
}

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let count_each = scaled(24, 60);
    let scenarios = scenarios(count_each);

    heading(
        "Figure 20: multi-tenant fairness — scenario x queueing policy",
        "single replica, Llama-3-8B + POD, chunk 1024, paged KV; weighted fair queueing \
         over queued prefill work, priority preemption through the paged preemption path.",
    );

    let mut cells: Vec<Cell> = Vec::new();
    for scenario in 0..scenarios.len() {
        for policy in [Policy::Fcfs, Policy::Fair, Policy::FairPrio] {
            cells.push(Cell { scenario, policy });
        }
    }

    let run_inputs: Vec<(Cell, TenantMix, ServingConfig)> = cells
        .iter()
        .map(|&cell| {
            (
                cell,
                scenarios[cell.scenario].1.clone(),
                cell.policy.apply(base_config(&model, &gpu, cell.scenario)),
            )
        })
        .collect();
    let reports: Vec<ClusterReport> = par_map(run_inputs, |(_, mix, config)| {
        Cluster::new(ClusterConfig::new(config, 1, RouterPolicy::RoundRobin))
            .run(mix.generate(SEED))
    });
    let report_of = |scenario: usize, policy: Policy| -> &ClusterReport {
        let want = Cell { scenario, policy };
        let idx = cells
            .iter()
            .position(|&c| c == want)
            .expect("every sweep cell was simulated");
        &reports[idx]
    };

    // Solo baselines: each well-behaved tenant of the noisy-neighbor mix
    // with the replica to itself, on the FCFS config (one tenant, so fair
    // queueing would be bit-for-bit identical anyway — see the pin below).
    let noisy_mix = &scenarios[0].1;
    let solo_goodput: Vec<usize> = par_map(
        (0..WELL_BEHAVED)
            .map(|t| {
                (
                    noisy_mix.solo(TenantId(t as u32), SEED),
                    base_config(&model, &gpu, 0),
                )
            })
            .collect(),
        |(specs, config)| {
            Cluster::new(ClusterConfig::new(config, 1, RouterPolicy::RoundRobin))
                .run(specs)
                .aggregate
                .goodput_requests()
        },
    );

    let rows: Vec<Vec<String>> = cells
        .iter()
        .zip(&reports)
        .map(|(&cell, r)| {
            let agg = &r.aggregate;
            let worst = agg
                .tenants
                .iter()
                .map(|t| t.attainment())
                .fold(1.0_f64, f64::min);
            vec![
                scenarios[cell.scenario].0.to_string(),
                cell.policy.label().to_string(),
                format!("{}", agg.goodput_requests()),
                format!("{:.1}", agg.requests_per_minute()),
                pct(agg.slo_attainment()),
                pct(worst),
                format!("{}", agg.preemptions),
                secs(agg.ttft.p99),
            ]
        })
        .collect();
    print_table(
        &[
            "Scenario", "Policy", "Goodput", "Req/min", "Attain", "WorstTen", "Preempt", "TTFT P99",
        ],
        &rows,
    );

    let tenant_goodput = |r: &ClusterReport, t: usize| -> usize {
        r.aggregate
            .tenants
            .iter()
            .find(|x| x.tenant == TenantId(t as u32))
            .map(|x| x.goodput_requests())
            .unwrap_or(0)
    };

    // Isolation claim (a): under the noisy-neighbor mix, fair queueing holds
    // every well-behaved tenant at >= 90% of its solo goodput, while FCFS
    // drops at least one below 50%.
    let fcfs = report_of(0, Policy::Fcfs);
    let fair = report_of(0, Policy::Fair);
    let mut fcfs_starved = false;
    for (t, &solo) in solo_goodput.iter().enumerate() {
        assert!(
            solo > 0,
            "tenant {t} must have solo goodput to compare against"
        );
        let fair_share = tenant_goodput(fair, t) as f64 / solo as f64;
        let fcfs_share = tenant_goodput(fcfs, t) as f64 / solo as f64;
        assert!(
            fair_share >= 0.9,
            "tenant {t}: fair goodput {} must be >= 90% of solo {solo}",
            tenant_goodput(fair, t)
        );
        fcfs_starved |= fcfs_share < 0.5;
    }
    assert!(
        fcfs_starved,
        "the burst must starve at least one well-behaved tenant below 50% of solo under FCFS: {:?}",
        (0..WELL_BEHAVED)
            .map(|t| tenant_goodput(fcfs, t))
            .collect::<Vec<_>>()
    );

    // Global contract (b): fairness costs < 5% aggregate throughput.
    assert!(
        fair.aggregate.requests_per_minute() >= 0.95 * fcfs.aggregate.requests_per_minute(),
        "fair queueing must cost < 5% aggregate throughput: {:.1} vs {:.1} req/min",
        fair.aggregate.requests_per_minute(),
        fcfs.aggregate.requests_per_minute()
    );

    // Prompt bomb: fair queueing must not lose aggregate goodput and must
    // lift the worst well-behaved tenant.
    let bomb_fcfs = report_of(1, Policy::Fcfs);
    let bomb_fair = report_of(1, Policy::Fair);
    let worst_wb = |r: &ClusterReport| {
        (0..WELL_BEHAVED)
            .map(|t| tenant_goodput(r, t))
            .min()
            .expect("well-behaved tenants exist")
    };
    assert!(
        worst_wb(bomb_fair) >= worst_wb(bomb_fcfs),
        "fair queueing must not worsen the bombed tenants: {} vs {}",
        worst_wb(bomb_fair),
        worst_wb(bomb_fcfs)
    );

    // Priority inversion: the high-priority tenant's TTFT must improve
    // under priority-aware fair queueing, and further (or at least as much)
    // with preemption; the preemption cell attributes its evictions.
    let inv_fcfs = report_of(2, Policy::Fcfs);
    let inv_fair = report_of(2, Policy::Fair);
    let inv_prio = report_of(2, Policy::FairPrio);
    let high_ttft = |r: &ClusterReport| {
        r.aggregate
            .tenants
            .iter()
            .find(|t| t.tenant == TenantId(0))
            .expect("high-priority tenant served")
            .ttft
            .mean
    };
    assert!(
        high_ttft(inv_fair) < high_ttft(inv_fcfs),
        "priority-aware selection must cut the high-priority TTFT: {} vs {}",
        high_ttft(inv_fair),
        high_ttft(inv_fcfs)
    );
    assert!(
        high_ttft(inv_prio) < high_ttft(inv_fcfs),
        "priority preemption must cut the high-priority TTFT: {} vs {}",
        high_ttft(inv_prio),
        high_ttft(inv_fcfs)
    );

    // Inertness pin (c): with a single tenant (equal weights trivially),
    // fair queueing is bit-for-bit identical to FCFS — only the system
    // label differs, so it is rewritten before comparing.
    let solo_trace = noisy_mix.solo(TenantId(0), SEED);
    let pin_fcfs = ServingEngine::new(base_config(&model, &gpu, 0)).run(solo_trace.clone());
    let mut pin_fair =
        ServingEngine::new(base_config(&model, &gpu, 0).with_fair_queue(FairQueueConfig::new()))
            .run(solo_trace);
    assert!(pin_fair.system.ends_with("+fair"));
    pin_fair.system = pin_fcfs.system.clone();
    assert_eq!(
        pin_fair.to_json().to_string_pretty(),
        pin_fcfs.to_json().to_string_pretty(),
        "single-tenant fair queueing must be bit-for-bit identical to FCFS"
    );

    println!(
        "\nIsolation holds: fair queueing keeps every well-behaved tenant >= 90% of solo \
         goodput (FCFS starves one below 50%), costs < 5% aggregate throughput, fixes the \
         priority inversion, and is bit-for-bit inert with a single tenant."
    );

    // Machine-readable sweep output; the CI perf gate consumes mean
    // aggregate goodput across these cells.
    let cell_json: Vec<JsonValue> = cells
        .iter()
        .zip(&reports)
        .map(|(&cell, report)| {
            JsonValue::obj(vec![
                ("scenario", JsonValue::str(scenarios[cell.scenario].0)),
                ("policy", JsonValue::str(cell.policy.label())),
                ("report", report.to_json()),
            ])
        })
        .collect();
    let json = JsonValue::obj(vec![
        (
            "workload",
            JsonValue::obj(vec![
                ("trace", JsonValue::str("tenant-mix/adversarial")),
                (
                    "scenarios",
                    JsonValue::Arr(
                        scenarios
                            .iter()
                            .map(|(name, _)| JsonValue::str(name))
                            .collect(),
                    ),
                ),
                ("well_behaved", JsonValue::Num(WELL_BEHAVED as f64)),
                ("count_each", JsonValue::Num(count_each as f64)),
                (
                    "solo_goodput",
                    JsonValue::Arr(
                        solo_goodput
                            .iter()
                            .map(|&g| JsonValue::Num(g as f64))
                            .collect(),
                    ),
                ),
                ("seed", JsonValue::Num(SEED as f64)),
            ]),
        ),
        ("cells", JsonValue::Arr(cell_json)),
    ]);
    let path = repo_root_path("BENCH_fairness.json");
    std::fs::write(&path, json.to_string_pretty()).expect("write BENCH_fairness.json");
    println!("wrote {}", path.display());
}
