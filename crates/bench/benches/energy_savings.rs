//! §5.1 (energy): POD-Attention's prefill-decode overlap shortens kernel
//! runtime and therefore reduces attention energy. The paper reports up to
//! 35% savings (mean 20.5%) over FA_Serial, largely proportional to the
//! runtime reduction.

use attn_kernels::{AttentionConfig, AttentionStrategy, HybridBatch};
use fusion_lab::HybridAttentionRunner;
use gpu_sim::GpuConfig;
use pod_bench::{heading, print_table, Distribution};

fn main() {
    let gpu = GpuConfig::a100_80gb();
    let models = [
        ("Yi-6B", AttentionConfig::yi_6b()),
        ("Llama-3-8B", AttentionConfig::llama3_8b()),
    ];

    heading(
        "Energy: POD-Attention energy savings over FA_Serial",
        "Activity-based energy model; sweep of hybrid batches per model.",
    );

    let mut rows = Vec::new();
    for (name, cfg) in models {
        let runner = HybridAttentionRunner::new(cfg, gpu.clone());
        let mut savings = Vec::new();
        for context_kib in [4usize, 8, 12, 16, 20] {
            let context = context_kib * 1024;
            for chunk in [512usize, 1024, 2048] {
                for decode_bs in [32usize, 96, 192] {
                    let batch = HybridBatch::uniform(chunk, context, decode_bs, context);
                    let serial = runner
                        .execute(&batch, AttentionStrategy::FaSerial)
                        .expect("serial runs");
                    let pod = runner
                        .execute(&batch, AttentionStrategy::Pod)
                        .expect("POD runs");
                    savings.push((1.0 - pod.energy_joules / serial.energy_joules) * 100.0);
                }
            }
        }
        let d = Distribution::of(&savings);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", d.min),
            format!("{:.1}%", d.median),
            format!("{:.1}%", d.mean),
            format!("{:.1}%", d.max),
        ]);
    }
    print_table(&["Model", "min", "median", "mean", "max"], &rows);

    println!(
        "\nExpected shape (paper): savings up to ~35% with a mean around ~20%, tracking the \
         runtime reduction of the fused kernel."
    );
}
