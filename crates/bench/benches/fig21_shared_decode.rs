//! Figure 21 (repro-original): prefix-shared batched decode (CoDec-style KV
//! dedup). Sweeps the share ratio of a shared-system-prompt workload ×
//! attention backend, with decode dedup on and off, on the paged
//! prefix-caching engine.
//!
//! What this answers:
//!
//! 1. How much decode cost and TBT does deduplicating the shared-prefix KV
//!    reads save as the share ratio grows? Each co-batched group pays one
//!    pass over its shared blocks per iteration instead of one per member.
//! 2. Is the machinery provably inert when there is nothing to share —
//!    bit-for-bit at share ratio 0, and report-identical under the
//!    conservative KV policy, where no block identity exists to group by?
//!
//! Writes `BENCH_decode.json` at the repository root (uploaded as a CI
//! artifact alongside the other trend files); `perf_gate --decode` gates the
//! mean TBT speedup so a modeling regression that erodes the dedup win
//! fails CI.
//!
//! Run with `cargo bench -p pod-bench --bench fig21_shared_decode`.

use gpu_sim::GpuConfig;
use llm_serving::{
    JsonValue, ModelConfig, ServingConfig, ServingEngine, ServingReport, SharedPrefixWorkload,
    Workload,
};
use pod_bench::microbench::repo_root_path;
use pod_bench::{heading, par_map, pct, print_table, scaled, secs};

const SHARE_RATIOS: [f64; 4] = [0.0, 0.3, 0.6, 0.9];
const GROUPS: usize = 4;
// Not a multiple of BLOCK_TOKENS on purpose: misaligned prefixes exercise
// the partial-block boundary of the shared-chain grouping key.
const PREFIX_TOKENS: usize = 2043;
const FOLLOWUP_RATIO: f64 = 0.35;

fn backends(model: &ModelConfig, gpu: &GpuConfig) -> [ServingConfig; 2] {
    [
        ServingConfig::sarathi(model.clone(), gpu.clone(), 1024),
        ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1024),
    ]
}

fn specs_for(ratio: f64, num_requests: usize) -> Vec<llm_serving::RequestSpec> {
    SharedPrefixWorkload::new(
        Workload::internal(),
        GROUPS,
        PREFIX_TOKENS,
        ratio,
        FOLLOWUP_RATIO,
    )
    .generate(num_requests, 3.0, 7)
}

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let num_requests = scaled(96, 480);

    heading(
        "Figure 21: shared-prefix decode — share ratio x backend x dedup",
        "Shared-system-prompt workload (4 groups, ~2K-token prefixes, 35% multi-turn); \
         paged prefix-caching engine; Llama-3-8B, chunk 1024.",
    );

    // One job per (share ratio, backend, dedup); every cell generates the
    // same trace for its ratio, so on/off pairs are directly comparable.
    let jobs: Vec<(usize, usize, bool)> = (0..SHARE_RATIOS.len())
        .flat_map(|si| (0..2).flat_map(move |bi| [true, false].map(move |on| (si, bi, on))))
        .collect();
    let reports: Vec<ServingReport> = par_map(jobs.clone(), |(si, bi, dedup)| {
        let specs = specs_for(SHARE_RATIOS[si], num_requests);
        let config = backends(&model, &gpu)[bi]
            .clone()
            .with_paged_kv(true)
            .with_decode_dedup(dedup);
        ServingEngine::new(config).run(specs)
    });
    let report_of = |si: usize, bi: usize, on: bool| -> &ServingReport {
        let idx = jobs
            .iter()
            .position(|&j| j == (si, bi, on))
            .expect("every sweep cell was simulated");
        &reports[idx]
    };

    let rows: Vec<Vec<String>> = jobs
        .iter()
        .zip(&reports)
        .map(|(&(si, _, _), r)| {
            vec![
                format!("{:.1}", SHARE_RATIOS[si]),
                r.system.clone(),
                secs(r.tbt.mean),
                secs(r.tbt.p99),
                secs(r.makespan),
                format!("{}", r.decode_kv_tokens_deduped),
                pct(r.prefix_hit_rate()),
                format!("{}", r.preemptions),
            ]
        })
        .collect();
    print_table(
        &[
            "Share",
            "System",
            "TBT mean",
            "TBT P99",
            "Makespan",
            "KV deduped",
            "Hit rate",
            "Preempt",
        ],
        &rows,
    );

    // Ordering 1: at every positive share ratio, dedup strictly reduces
    // makespan (decode cost) and mean TBT, on both backends.
    for (si, &ratio) in SHARE_RATIOS.iter().enumerate() {
        for bi in 0..2 {
            let on = report_of(si, bi, true);
            let off = report_of(si, bi, false);
            assert_eq!(on.completed, num_requests);
            assert_eq!(off.completed, num_requests);
            assert_eq!(off.decode_kv_tokens_deduped, 0, "dedup off never dedups");
            if ratio > 0.0 {
                assert!(
                    on.decode_kv_tokens_deduped > 0,
                    "share {ratio} / {}: shared decodes must dedup",
                    on.system
                );
                assert!(
                    on.makespan < off.makespan,
                    "share {ratio} / {}: makespan {} vs {}",
                    on.system,
                    on.makespan,
                    off.makespan
                );
                assert!(
                    on.tbt.mean < off.tbt.mean,
                    "share {ratio} / {}: mean TBT {} vs {}",
                    on.system,
                    on.tbt.mean,
                    off.tbt.mean
                );
            } else {
                // Ordering 2: nothing shared — dedup must be bit-for-bit
                // inert.
                assert_eq!(on.makespan.to_bits(), off.makespan.to_bits());
                assert_eq!(on.tbt.mean.to_bits(), off.tbt.mean.to_bits());
                assert_eq!(on.decode_kv_tokens_deduped, 0);
            }
        }
    }

    // Ordering 3: deduped KV volume grows with the share ratio (POD backend).
    for si in 1..SHARE_RATIOS.len() {
        let prev = report_of(si - 1, 1, true).decode_kv_tokens_deduped;
        let here = report_of(si, 1, true).decode_kv_tokens_deduped;
        assert!(
            here > prev,
            "deduped KV must grow with share ratio: {here} vs {prev}"
        );
    }

    // Ordering 4: under the conservative KV policy there is no block
    // identity to group by — requesting dedup must change nothing at all.
    let max_share = SHARE_RATIOS[SHARE_RATIOS.len() - 1];
    let conservative = ServingConfig::sarathi(model.clone(), gpu.clone(), 1024);
    let cons_on = ServingEngine::new(conservative.clone().with_decode_dedup(true))
        .run(specs_for(max_share, num_requests));
    let cons_off = ServingEngine::new(conservative).run(specs_for(max_share, num_requests));
    assert_eq!(cons_on, cons_off, "conservative policy must ignore dedup");
    assert_eq!(cons_on.decode_kv_tokens_deduped, 0);

    println!(
        "\nOrderings hold: dedup strictly reduces makespan and mean TBT at every positive \
         share ratio, is bit-for-bit inert at ratio 0 and under the conservative policy, \
         and deduped KV volume grows with sharing."
    );

    // The gated summary: mean TBT speedup (off / on) over both backends at
    // the highest share ratio, plus the deduped-KV volume for the trend.
    let max_si = SHARE_RATIOS.len() - 1;
    let mean_tbt_speedup = (0..2)
        .map(|bi| report_of(max_si, bi, false).tbt.mean / report_of(max_si, bi, true).tbt.mean)
        .sum::<f64>()
        / 2.0;
    let kv_tokens_deduped: usize = (0..2)
        .map(|bi| report_of(max_si, bi, true).decode_kv_tokens_deduped)
        .sum();
    println!(
        "mean TBT speedup at share {max_share}: {mean_tbt_speedup:.4}x \
         ({kv_tokens_deduped} KV tokens deduped)"
    );

    let cells: Vec<JsonValue> = jobs
        .iter()
        .zip(&reports)
        .map(|(&(si, _, dedup), report)| {
            JsonValue::obj(vec![
                ("share_ratio", JsonValue::Num(SHARE_RATIOS[si])),
                ("decode_dedup", JsonValue::Bool(dedup)),
                ("report", report.to_json()),
            ])
        })
        .collect();
    let json = JsonValue::obj(vec![
        (
            "workload",
            JsonValue::obj(vec![
                ("trace", JsonValue::str("internal/shared-prefix")),
                ("groups", JsonValue::Num(GROUPS as f64)),
                ("prefix_tokens", JsonValue::Num(PREFIX_TOKENS as f64)),
                ("followup_ratio", JsonValue::Num(FOLLOWUP_RATIO)),
                ("qps", JsonValue::Num(3.0)),
                ("num_requests", JsonValue::Num(num_requests as f64)),
                ("seed", JsonValue::Num(7.0)),
            ]),
        ),
        (
            "decode",
            JsonValue::obj(vec![
                ("mean_tbt_speedup", JsonValue::Num(mean_tbt_speedup)),
                (
                    "kv_tokens_deduped",
                    JsonValue::Num(kv_tokens_deduped as f64),
                ),
            ]),
        ),
        ("cells", JsonValue::Arr(cells)),
    ]);
    let path = repo_root_path("BENCH_decode.json");
    std::fs::write(&path, json.to_string_pretty()).expect("write BENCH_decode.json");
    println!("wrote {}", path.display());
}
