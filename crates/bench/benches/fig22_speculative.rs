//! Figure 22 (repro-original): speculative draft-then-verify decoding.
//! Sweeps acceptance rate × load × attention backend × draft depth `k` on
//! the serving engine, against plain autoregressive baselines.
//!
//! What this answers:
//!
//! 1. When does speculation pay? Each round drafts `k` tokens on a cheap
//!    draft model and verifies them in one prefill-shaped burst — a batch
//!    shape POD's hybrid kernels price well — so high acceptance turns k
//!    decode iterations into one verify round.
//! 2. Is the accounting honest? Speculation is never priced cheaper than
//!    its own verify work: at acceptance 0 it nets one token per round and
//!    can only lose to autoregressive decode, and a priced draft model can
//!    only cost more than a free one.
//! 3. Is the mode inert when off? The degenerate corner (k=1, free draft,
//!    acceptance 1.0) reproduces the autoregressive schedule bit for bit —
//!    the bench-level echo of the golden pins on `DecodeMode::Autoregressive`.
//!
//! Writes `BENCH_spec.json` at the repository root (uploaded as a CI
//! artifact alongside the other trend files); `perf_gate --spec` gates the
//! POD-at-saturation makespan speedup so a modeling regression that erodes
//! the speculation win fails CI.
//!
//! Run with `cargo bench -p pod-bench --bench fig22_speculative`.

use gpu_sim::GpuConfig;
use llm_serving::{
    AcceptanceModel, DraftModelConfig, JsonValue, ModelConfig, ServingConfig, ServingEngine,
    ServingReport, Workload,
};
use pod_bench::microbench::repo_root_path;
use pod_bench::{heading, par_map, print_table, scaled, secs};

const ACCEPT_RATES: [f64; 4] = [0.0, 0.4, 0.7, 0.95];
const KS: [usize; 2] = [2, 4];
const QPS: [f64; 2] = [2.0, 8.0];
const DRAFT_SCALE: f64 = 0.25;
const SEED: u64 = 21;

/// One sweep cell: load index, backend index, and the speculative shape —
/// `None` is the autoregressive baseline; `Some((ki, ri, free))` drafts at
/// depth `KS[ki]` with acceptance `ACCEPT_RATES[ri]`, on a free draft model
/// when `free` (the pricing-honesty twin of the scaled-draft cell).
type Job = (usize, usize, Option<(usize, usize, bool)>);

fn backends(model: &ModelConfig, gpu: &GpuConfig) -> [ServingConfig; 2] {
    [
        ServingConfig::sarathi(model.clone(), gpu.clone(), 1024),
        ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1024),
    ]
}

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let num_requests = scaled(64, 320);

    heading(
        "Figure 22: speculative decoding — acceptance x load x backend x k",
        "Draft-then-verify serving mode: 0.25-scale draft model, seeded \
         per-request acceptance; internal trace; Llama-3-8B, chunk 1024.",
    );

    // Autoregressive baselines per (load, backend), speculative cells per
    // (load, backend, k, acceptance), plus free-draft twins of the POD
    // saturation cells for the pricing-honesty ordering.
    let mut jobs: Vec<Job> = Vec::new();
    for qi in 0..QPS.len() {
        for bi in 0..2 {
            jobs.push((qi, bi, None));
            for ki in 0..KS.len() {
                for ri in 0..ACCEPT_RATES.len() {
                    jobs.push((qi, bi, Some((ki, ri, false))));
                    if qi == 1 && bi == 1 {
                        jobs.push((qi, bi, Some((ki, ri, true))));
                    }
                }
            }
        }
    }
    let reports: Vec<ServingReport> = par_map(jobs.clone(), |(qi, bi, spec)| {
        let specs = Workload::internal().generate(num_requests, QPS[qi], SEED);
        let mut config = backends(&model, &gpu)[bi].clone();
        if let Some((ki, ri, free)) = spec {
            let draft = if free {
                DraftModelConfig::free()
            } else {
                DraftModelConfig::scaled(DRAFT_SCALE)
            };
            config = config.with_speculative(
                KS[ki],
                draft,
                AcceptanceModel::new(ACCEPT_RATES[ri], SEED),
            );
        }
        ServingEngine::new(config).run(specs)
    });
    let report_of = |job: Job| -> &ServingReport {
        let idx = jobs
            .iter()
            .position(|&j| j == job)
            .expect("every sweep cell was simulated");
        &reports[idx]
    };

    let rows: Vec<Vec<String>> = jobs
        .iter()
        .zip(&reports)
        .map(|(&(qi, _, spec), r)| {
            let (k, rate, draft) = match spec {
                None => ("-".to_string(), "-".to_string(), "-".to_string()),
                Some((ki, ri, free)) => (
                    format!("{}", KS[ki]),
                    format!("{:.2}", ACCEPT_RATES[ri]),
                    if free {
                        "free".into()
                    } else {
                        format!("{DRAFT_SCALE}")
                    },
                ),
            };
            vec![
                format!("{:.0}", QPS[qi]),
                r.system.clone(),
                k,
                rate,
                draft,
                secs(r.makespan),
                secs(r.tbt.mean),
                format!("{}", r.spec_rounds),
                format!("{}", r.draft_tokens_accepted),
                format!("{}", r.draft_tokens_rejected),
            ]
        })
        .collect();
    print_table(
        &[
            "QPS", "System", "k", "Accept", "Draft", "Makespan", "TBT mean", "Rounds", "Accepted",
            "Rejected",
        ],
        &rows,
    );

    for (&job, r) in jobs.iter().zip(&reports) {
        assert_eq!(r.completed, num_requests, "cell {job:?} lost requests");
        match job.2 {
            None => assert_eq!(r.spec_rounds, 0, "AR baseline must not speculate"),
            Some((_, ri, _)) => {
                assert!(r.spec_rounds > 0, "cell {job:?} never speculated");
                if ACCEPT_RATES[ri] == 0.0 {
                    assert_eq!(r.draft_tokens_accepted, 0, "cell {job:?}");
                }
            }
        }
    }

    // Ordering 1 (the headline): at acceptance >= 0.7, speculation strictly
    // beats plain decode on makespan AND mean TBT under POD at saturation,
    // at every draft depth — despite paying for its drafts.
    for (ki, &k) in KS.iter().enumerate() {
        for (ri, &rate) in ACCEPT_RATES.iter().enumerate() {
            if rate < 0.7 {
                continue;
            }
            let ar = report_of((1, 1, None));
            let sp = report_of((1, 1, Some((ki, ri, false))));
            assert!(
                sp.makespan < ar.makespan,
                "k={} accept={}: spec makespan {} vs AR {}",
                k,
                rate,
                sp.makespan,
                ar.makespan
            );
            assert!(
                sp.tbt.mean < ar.tbt.mean,
                "k={} accept={}: spec TBT {} vs AR {}",
                k,
                rate,
                sp.tbt.mean,
                ar.tbt.mean
            );
        }
    }

    // Ordering 2 (pricing honesty, part one): at acceptance 0 every round
    // nets one token but still pays for drafts and verify — speculation can
    // never beat autoregressive decode, on any backend at any load.
    for (qi, &qps) in QPS.iter().enumerate() {
        for bi in 0..2 {
            for (ki, &k) in KS.iter().enumerate() {
                let ar = report_of((qi, bi, None));
                let sp = report_of((qi, bi, Some((ki, 0, false))));
                assert!(
                    sp.makespan >= ar.makespan,
                    "qps={} backend={} k={}: zero-acceptance speculation must \
                     not be priced below plain decode ({} vs {})",
                    qps,
                    bi,
                    k,
                    sp.makespan,
                    ar.makespan
                );
            }
        }
    }

    // Ordering 3 (pricing honesty, part two): a priced draft model can only
    // cost more than a free one — the speculative mode is never cheaper
    // than its own verify work.
    for (ki, &k) in KS.iter().enumerate() {
        for (ri, &rate) in ACCEPT_RATES.iter().enumerate() {
            let real = report_of((1, 1, Some((ki, ri, false))));
            let free = report_of((1, 1, Some((ki, ri, true))));
            assert!(
                real.makespan >= free.makespan,
                "k={} accept={}: priced draft ({}) cheaper than free draft ({})",
                k,
                rate,
                real.makespan,
                free.makespan
            );
        }
    }

    // Ordering 4: more acceptance, more win — the saturated POD makespan at
    // acceptance 0.95 strictly beats the acceptance-0 cell at every depth.
    for (ki, &k) in KS.iter().enumerate() {
        let lo = report_of((1, 1, Some((ki, 0, false))));
        let hi = report_of((1, 1, Some((ki, ACCEPT_RATES.len() - 1, false))));
        assert!(
            hi.makespan < lo.makespan,
            "k={}: acceptance 0.95 ({}) must beat acceptance 0 ({})",
            k,
            hi.makespan,
            lo.makespan
        );
    }

    // Ordering 5 (inertness): the degenerate corner — k=1, free draft,
    // acceptance 1.0 — reproduces the autoregressive schedule bit for bit.
    let specs = Workload::internal().generate(num_requests, QPS[1], SEED);
    let degenerate = ServingEngine::new(backends(&model, &gpu)[1].clone().with_speculative(
        1,
        DraftModelConfig::free(),
        AcceptanceModel::new(1.0, SEED),
    ))
    .run(specs);
    let ar = report_of((1, 1, None));
    assert_eq!(degenerate.makespan.to_bits(), ar.makespan.to_bits());
    assert_eq!(degenerate.tbt.mean.to_bits(), ar.tbt.mean.to_bits());
    assert_eq!(degenerate.ttft.p99.to_bits(), ar.ttft.p99.to_bits());

    println!(
        "\nOrderings hold: acceptance >= 0.7 strictly beats plain decode under POD at \
         saturation, zero acceptance and priced drafts are never under-priced, the win \
         grows with acceptance, and the degenerate corner is bit-for-bit autoregressive."
    );

    // The gated summary: POD-at-saturation makespan speedup (AR / spec) at
    // the highest acceptance, averaged over draft depths, plus the observed
    // fleet-wide acceptance fraction for the trend.
    let max_ri = ACCEPT_RATES.len() - 1;
    let makespan_speedup = (0..KS.len())
        .map(|ki| {
            report_of((1, 1, None)).makespan / report_of((1, 1, Some((ki, max_ri, false)))).makespan
        })
        .sum::<f64>()
        / KS.len() as f64;
    let best = report_of((1, 1, Some((KS.len() - 1, max_ri, false))));
    let acceptance_observed = best.draft_tokens_accepted as f64
        / (best.draft_tokens_accepted + best.draft_tokens_rejected).max(1) as f64;
    println!(
        "POD saturation makespan speedup at acceptance {}: {makespan_speedup:.4}x \
         (observed acceptance {acceptance_observed:.3})",
        ACCEPT_RATES[max_ri]
    );

    let cells: Vec<JsonValue> = jobs
        .iter()
        .zip(&reports)
        .map(|(&(qi, _, spec), report)| {
            let mut fields = vec![("qps", JsonValue::Num(QPS[qi]))];
            match spec {
                None => fields.push(("mode", JsonValue::str("autoregressive"))),
                Some((ki, ri, free)) => {
                    fields.push(("mode", JsonValue::str("speculative")));
                    fields.push(("k", JsonValue::Num(KS[ki] as f64)));
                    fields.push(("acceptance", JsonValue::Num(ACCEPT_RATES[ri])));
                    fields.push((
                        "draft_scale",
                        JsonValue::Num(if free { 0.0 } else { DRAFT_SCALE }),
                    ));
                }
            }
            fields.push(("report", report.to_json()));
            JsonValue::obj(fields)
        })
        .collect();
    let json = JsonValue::obj(vec![
        (
            "workload",
            JsonValue::obj(vec![
                ("trace", JsonValue::str("internal")),
                ("num_requests", JsonValue::Num(num_requests as f64)),
                ("seed", JsonValue::Num(SEED as f64)),
                ("draft_scale", JsonValue::Num(DRAFT_SCALE)),
            ]),
        ),
        (
            "spec",
            JsonValue::obj(vec![
                ("makespan_speedup", JsonValue::Num(makespan_speedup)),
                ("acceptance_observed", JsonValue::Num(acceptance_observed)),
            ]),
        ),
        ("cells", JsonValue::Arr(cells)),
    ]);
    let path = repo_root_path("BENCH_spec.json");
    std::fs::write(&path, json.to_string_pretty()).expect("write BENCH_spec.json");
    println!("wrote {}", path.display());
}
