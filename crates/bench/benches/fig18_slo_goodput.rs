//! Figure 18 (repro-original): SLO-aware serving — goodput under load, with
//! and without cluster autoscaling. Sweeps arrival rate × attention backend
//! × autoscaling over an SLO-tagged trace (70% interactive requests with
//! tight TTFT/TBT targets, 30% batch with loose ones) on a two-replica
//! fleet.
//!
//! What this answers, in the goodput framing the paper's latency targets
//! exist to serve:
//!
//! 1. Do POD-Attention's latency wins convert into *goodput* — requests
//!    served within their TTFT deadline and TBT target — at every load
//!    level, or only into raw-latency deltas nobody promised anyone?
//! 2. Does deadline-shedding admission ([`AdmissionPolicy::DeadlineShed`])
//!    recover goodput under saturation by refusing work that can no longer
//!    meet its deadline?
//! 3. Does the backlog-driven autoscaler hold the SLO through overload at a
//!    lower replica-seconds cost than pinning the fleet at its maximum?
//!
//! Writes `BENCH_slo.json` at the repository root (gated by
//! `perf_gate --slo` in CI) and asserts the orderings: POD goodput >=
//! Sarathi at every load point, shedding never loses goodput on the POD
//! backend, autoscaling improves SLO attainment at the highest load, and a
//! pinned (min == max) autoscaler is **bit-for-bit** identical to no
//! autoscaler at all — the inertness contract the fixed-fleet goldens rely
//! on.
//!
//! Run with `cargo bench -p pod-bench --bench fig18_slo_goodput`.

use gpu_sim::GpuConfig;
use llm_serving::{
    AdmissionPolicy, AutoscalerConfig, Cluster, ClusterConfig, ClusterReport, JsonValue,
    ModelConfig, RouterPolicy, ServingConfig, SloMix, Workload,
};
use pod_bench::microbench::repo_root_path;
use pod_bench::{heading, par_map, pct, print_table, scaled, secs};

/// Arrival rates in queries/second: comfortably under, at, and well past the
/// two-replica fleet's saturation point (~1 req/s per simulated replica).
const LOADS: [f64; 4] = [1.0, 2.5, 4.0, 6.0];
const REPLICAS: usize = 2;
const MAX_REPLICAS: usize = 6;
const SEED: u64 = 18;

#[derive(Clone, Copy, PartialEq)]
struct Cell {
    load: usize,
    backend: usize, // 0 = Sarathi, 1 = Sarathi+POD
    autoscaled: bool,
    shedding: bool,
}

fn backends(model: &ModelConfig, gpu: &GpuConfig) -> [ServingConfig; 2] {
    [
        ServingConfig::sarathi(model.clone(), gpu.clone(), 1024),
        ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1024),
    ]
}

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let num_requests = scaled(96, 480);
    let mix = SloMix::interactive_batch();

    heading(
        "Figure 18: SLO goodput — load x backend x autoscaling",
        "70% interactive (TTFT <= 2 s, TBT <= 200 ms) / 30% batch (30 s, 1 s); \
         2-replica fleet (autoscaler up to 6), decode-aware router; Llama-3-8B, chunk 1024.",
    );

    // The full grid: every load × backend × {fixed, autoscaled} with
    // admit-all admission, plus a shedding variant per load on both
    // backends (fixed fleet) for the admission-control comparison.
    let mut cells: Vec<Cell> = Vec::new();
    for load in 0..LOADS.len() {
        for backend in 0..2 {
            for autoscaled in [false, true] {
                cells.push(Cell {
                    load,
                    backend,
                    autoscaled,
                    shedding: false,
                });
            }
            cells.push(Cell {
                load,
                backend,
                autoscaled: false,
                shedding: true,
            });
        }
    }

    let reports: Vec<ClusterReport> = par_map(cells.clone(), |cell| {
        let specs = mix.apply(
            Workload::internal().generate(num_requests, LOADS[cell.load], SEED),
            SEED,
        );
        let mut base = backends(&model, &gpu)[cell.backend].clone();
        if cell.shedding {
            base = base.with_admission(AdmissionPolicy::DeadlineShed);
        }
        let mut config = ClusterConfig::new(base, REPLICAS, RouterPolicy::decode_aware());
        if cell.autoscaled {
            config = config.with_autoscaler(AutoscalerConfig::new(REPLICAS, MAX_REPLICAS));
        }
        Cluster::new(config).run(specs)
    });
    let report_of = |load: usize, backend: usize, autoscaled: bool, shedding: bool| {
        let want = Cell {
            load,
            backend,
            autoscaled,
            shedding,
        };
        let idx = cells
            .iter()
            .position(|&c| c == want)
            .expect("every sweep cell was simulated");
        &reports[idx]
    };

    let rows: Vec<Vec<String>> = cells
        .iter()
        .zip(&reports)
        .map(|(&cell, r)| {
            vec![
                format!("{:.1}", LOADS[cell.load]),
                r.aggregate.system.clone(),
                if cell.autoscaled { "auto" } else { "fixed" }.to_string(),
                format!("{}", r.aggregate.goodput_requests()),
                format!("{:.1}", r.aggregate.goodput_per_minute()),
                pct(r.aggregate.slo_attainment()),
                format!("{}", r.aggregate.shed_requests),
                format!("{}", r.peak_replicas),
                secs(r.replica_seconds),
                secs(r.aggregate.ttft.p99),
            ]
        })
        .collect();
    print_table(
        &[
            "QPS", "System", "Fleet", "Goodput", "Good/min", "Attain", "Shed", "Peak", "Repl-sec",
            "TTFT P99",
        ],
        &rows,
    );

    // Ordering 1: POD goodput >= Sarathi at every load point, in every fleet
    // mode — the paper's speedups must convert into deadline-meeting
    // completions, not just lower raw latency.
    for (li, &qps) in LOADS.iter().enumerate() {
        for (autoscaled, shedding) in [(false, false), (true, false), (false, true)] {
            let sarathi = report_of(li, 0, autoscaled, shedding);
            let pod = report_of(li, 1, autoscaled, shedding);
            assert!(
                pod.aggregate.goodput_requests() >= sarathi.aggregate.goodput_requests(),
                "qps {qps} (auto={autoscaled}, shed={shedding}): POD goodput {} < Sarathi {}",
                pod.aggregate.goodput_requests(),
                sarathi.aggregate.goodput_requests()
            );
        }
    }

    // Ordering 2: deadline shedding never loses goodput (it sacrifices
    // already-doomed requests for the sake of the rest), and at the highest
    // load it strictly gains on both backends.
    for (li, &qps) in LOADS.iter().enumerate() {
        for backend in 0..2 {
            let served = report_of(li, backend, false, false);
            let shed = report_of(li, backend, false, true);
            assert!(
                shed.aggregate.goodput_requests() >= served.aggregate.goodput_requests(),
                "qps {qps} backend {backend}: shedding lost goodput ({} vs {})",
                shed.aggregate.goodput_requests(),
                served.aggregate.goodput_requests()
            );
        }
    }
    let top = LOADS.len() - 1;
    assert!(
        report_of(top, 1, false, true).aggregate.goodput_requests()
            > report_of(top, 1, false, false).aggregate.goodput_requests(),
        "at saturation, shedding must strictly improve POD goodput"
    );

    // Ordering 3: at the highest load the autoscaler improves attainment on
    // the POD backend, and costs fewer replica-seconds than pinning the
    // fleet at its maximum the whole run.
    let fixed_top = report_of(top, 1, false, false);
    let auto_top = report_of(top, 1, true, false);
    assert!(
        auto_top.scale_out_events > 0,
        "saturation must trigger scale-out"
    );
    assert!(
        auto_top.aggregate.slo_attainment() > fixed_top.aggregate.slo_attainment(),
        "autoscaled attainment {} must beat the fixed fleet's {}",
        auto_top.aggregate.slo_attainment(),
        fixed_top.aggregate.slo_attainment()
    );
    let max_pinned = Cluster::new(ClusterConfig::new(
        backends(&model, &gpu)[1].clone(),
        MAX_REPLICAS,
        RouterPolicy::decode_aware(),
    ))
    .run(mix.apply(
        Workload::internal().generate(num_requests, LOADS[top], SEED),
        SEED,
    ));
    assert!(
        auto_top.replica_seconds < max_pinned.replica_seconds,
        "autoscaled fleet ({:.0} replica-seconds) must cost less than max-pinned ({:.0})",
        auto_top.replica_seconds,
        max_pinned.replica_seconds
    );

    // Ordering 4: a pinned autoscaler (min == max) is bit-for-bit identical
    // to running without one — the inertness contract behind every
    // fixed-fleet golden in the repo.
    for (li, backend) in [(0usize, 0usize), (top, 1)] {
        let specs = mix.apply(
            Workload::internal().generate(num_requests, LOADS[li], SEED),
            SEED,
        );
        let plain = Cluster::new(ClusterConfig::new(
            backends(&model, &gpu)[backend].clone(),
            REPLICAS,
            RouterPolicy::decode_aware(),
        ))
        .run(specs.clone());
        let pinned = Cluster::new(
            ClusterConfig::new(
                backends(&model, &gpu)[backend].clone(),
                REPLICAS,
                RouterPolicy::decode_aware(),
            )
            .with_autoscaler(AutoscalerConfig::new(REPLICAS, REPLICAS)),
        )
        .run(specs);
        assert_eq!(
            plain.to_json().to_string_pretty(),
            pinned.to_json().to_string_pretty(),
            "a pinned autoscaler must be bit-for-bit inert (qps {}, backend {backend})",
            LOADS[li]
        );
    }
    println!(
        "\nOrderings hold: POD goodput >= Sarathi at every load point; shedding never loses \
         goodput (strict gain at saturation); autoscaling lifts attainment at a lower \
         replica-seconds cost than max-pinning; a pinned autoscaler is bit-for-bit inert."
    );

    // Machine-readable sweep output in the shared report JSON format; the
    // CI perf gate consumes mean aggregate goodput across these cells.
    let cell_json: Vec<JsonValue> = cells
        .iter()
        .zip(&reports)
        .map(|(&cell, report)| {
            JsonValue::obj(vec![
                ("qps", JsonValue::Num(LOADS[cell.load])),
                ("autoscaled", JsonValue::Bool(cell.autoscaled)),
                ("shedding", JsonValue::Bool(cell.shedding)),
                ("report", report.to_json()),
            ])
        })
        .collect();
    let json = JsonValue::obj(vec![
        (
            "workload",
            JsonValue::obj(vec![
                ("trace", JsonValue::str("internal/slo-mix")),
                ("slo_mix", JsonValue::str("interactive(70%) + batch(30%)")),
                ("num_requests", JsonValue::Num(num_requests as f64)),
                ("replicas", JsonValue::Num(REPLICAS as f64)),
                ("max_replicas", JsonValue::Num(MAX_REPLICAS as f64)),
                ("seed", JsonValue::Num(SEED as f64)),
            ]),
        ),
        ("cells", JsonValue::Arr(cell_json)),
    ]);
    let path = repo_root_path("BENCH_slo.json");
    std::fs::write(&path, json.to_string_pretty()).expect("write BENCH_slo.json");
    println!("wrote {}", path.display());
}
