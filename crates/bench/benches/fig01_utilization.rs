//! Figure 1 + Table 1: compute and memory-bandwidth utilization of prefill
//! attention, decode attention and POD-Attention, and the normalized runtime
//! of the serial FA/FI kernels versus POD on the three hybrid-batch
//! configurations of Table 1 (model: Llama-3-8B on A100, TP-2).

use attn_kernels::{
    AttentionConfig, AttentionStrategy, DecodeKernel, DecodeRequest, HybridBatch, PrefillChunk,
    PrefillKernel,
};
use fusion_lab::HybridAttentionRunner;
use gpu_sim::{Engine, GpuConfig};
use pod_attention::PodAttention;
use pod_bench::{heading, pct, print_table};

fn main() {
    let cfg = AttentionConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let engine = Engine::new(gpu.clone());

    heading(
        "Figure 1 (left): Prefill attention utilization (batch size = 1)",
        "FlashAttention-2 prefill kernel, full prompt, Llama-3-8B TP-2.",
    );
    let mut rows = Vec::new();
    for kib in [1usize, 2, 4, 8, 16] {
        let context = kib * 1024;
        let launch = PrefillKernel::flash_attention().launch(
            "prefill",
            &PrefillChunk::new(context, 0),
            &cfg,
            &gpu,
        );
        let report = engine.run_kernel(launch).expect("prefill kernel runs");
        rows.push(vec![
            format!("{kib}K"),
            pct(report.compute_utilization()),
            pct(report.memory_utilization()),
        ]);
    }
    print_table(&["Context", "Compute util", "Mem BW util"], &rows);

    heading(
        "Figure 1 (middle): Decode attention utilization (context length = 4K)",
        "FlashAttention decode kernel, Llama-3-8B TP-2.",
    );
    let mut rows = Vec::new();
    for bs in [16usize, 32, 64, 128, 256] {
        let decodes = vec![DecodeRequest::new(4 * 1024); bs];
        let launch = DecodeKernel::flash_attention().launch("decode", &decodes, &cfg, &gpu);
        let report = engine.run_kernel(launch).expect("decode kernel runs");
        rows.push(vec![
            format!("{bs}"),
            pct(report.compute_utilization()),
            pct(report.memory_utilization()),
        ]);
    }
    print_table(&["Batch size", "Compute util", "Mem BW util"], &rows);

    let configs: [(&str, HybridBatch); 3] = [
        ("C0", HybridBatch::config_c0()),
        ("C1", HybridBatch::config_c1()),
        ("C2", HybridBatch::config_c2()),
    ];

    heading(
        "Table 1: hybrid batch configurations",
        "BS: batch size, CS: chunk size, CL: context length.",
    );
    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|(name, b)| {
            let p = b.prefill.expect("table 1 configs have a prefill chunk");
            vec![
                name.to_string(),
                "1".to_string(),
                format!("{}", p.chunk_len),
                format!("{}", p.context_len()),
                format!("{}", b.decode_batch_size()),
                format!("{}", b.decodes[0].context_len),
            ]
        })
        .collect();
    print_table(
        &["Config", "Prefill BS", "CS", "CL", "Decode BS", "Decode CL"],
        &rows,
    );

    heading(
        "Figure 1 (right, top): POD-Attention utilization on hybrid batches",
        "",
    );
    let pod = PodAttention::new(cfg, gpu.clone());
    let mut rows = Vec::new();
    for (name, batch) in &configs {
        let report = pod.execute(batch).expect("POD executes");
        rows.push(vec![
            name.to_string(),
            pct(report.compute_utilization()),
            pct(report.memory_utilization()),
        ]);
    }
    print_table(&["Config", "Compute util", "Mem BW util"], &rows);

    heading(
        "Figure 1 (right, bottom): normalized attention runtime",
        "Serial FA / FI prefill+decode kernels and POD, normalized to FA serial.",
    );
    let runner = HybridAttentionRunner::new(cfg, gpu);
    let mut rows = Vec::new();
    for (name, batch) in &configs {
        let fa = runner
            .time(batch, AttentionStrategy::FaSerial)
            .expect("FA serial runs");
        let fi = runner
            .time(batch, AttentionStrategy::FiSerial)
            .expect("FI serial runs");
        let pod_t = runner
            .time(batch, AttentionStrategy::Pod)
            .expect("POD runs");
        rows.push(vec![
            name.to_string(),
            "1.00".to_string(),
            format!("{:.2}", fi / fa),
            format!("{:.2}", pod_t / fa),
            format!("{:.0}%", (fa / pod_t - 1.0) * 100.0),
        ]);
    }
    print_table(
        &["Config", "FA serial", "FI serial", "POD", "POD speedup"],
        &rows,
    );
}
