//! Figure 15: request processing throughput of Sarathi vs Sarathi+POD as the
//! prefill-to-decode token ratio of the workload varies (Llama-3-8B, requests
//! of ~16.5K total tokens).

use gpu_sim::GpuConfig;
use llm_serving::{pd_ratio_workload, ModelConfig, ServingConfig, ServingEngine};
use pod_bench::{heading, par_map, print_table, scaled};

fn main() {
    let gpu = GpuConfig::a100_80gb();
    let model = ModelConfig::llama3_8b();
    let chunk = 1024usize;
    let num_requests = scaled(40, 2048);
    let total_tokens = 16_500usize;

    heading(
        "Figure 15: throughput under varying P:D token ratio (requests/minute)",
        &format!("Llama-3-8B TP-2, {num_requests} requests of ~16.5K tokens each."),
    );

    // One job per P:D ratio, both systems inside the job; the nine ratios
    // sweep in parallel.
    let ratios: Vec<usize> = (8..=24).step_by(2).collect();
    let rows = par_map(ratios, |pd| {
        let requests = pd_ratio_workload(num_requests, total_tokens, pd as f64);
        let sarathi = ServingEngine::new(ServingConfig::sarathi(model.clone(), gpu.clone(), chunk))
            .run(requests.clone());
        let pod = ServingEngine::new(ServingConfig::sarathi_pod(
            model.clone(),
            gpu.clone(),
            chunk,
        ))
        .run(requests);
        let regime = if pd <= 10 {
            "decode bound"
        } else if pd >= 20 {
            "prefill bound"
        } else {
            "balanced"
        };
        vec![
            format!("{pd}"),
            regime.to_string(),
            format!("{:.1}", sarathi.requests_per_minute()),
            format!("{:.1}", pod.requests_per_minute()),
            format!(
                "+{:.1}%",
                (pod.requests_per_minute() / sarathi.requests_per_minute() - 1.0) * 100.0
            ),
            format!(
                "{:.0}%",
                100.0 * pod.hybrid_iterations as f64 / pod.iterations.max(1) as f64
            ),
        ]
    });
    print_table(
        &[
            "P:D",
            "Regime",
            "Sarathi",
            "Sarathi+POD",
            "Gain",
            "Hybrid iters",
        ],
        &rows,
    );

    println!(
        "\nExpected shape (paper): Sarathi+POD is never worse and its gain peaks in the balanced \
         P:D range (~12-18) where most iterations are hybrid batches."
    );
}
