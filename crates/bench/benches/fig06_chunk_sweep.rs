//! Figure 6: per-layer attention runtime of the 32 hybrid batches formed by
//! the chunked prefill of a 16K-token prompt (chunk size 512, model Yi-6B),
//! each co-scheduled with a batch of 16K-context decodes — with and without
//! wave quantization in the decode grid (decode batch 54 vs 55).

use attn_kernels::{AttentionConfig, AttentionStrategy, HybridBatch};
use fusion_lab::HybridAttentionRunner;
use gpu_sim::GpuConfig;
use pod_bench::{heading, ms, print_table};

fn main() {
    let cfg = AttentionConfig::yi_6b();
    let gpu = GpuConfig::a100_80gb();
    let runner = HybridAttentionRunner::new(cfg, gpu);
    let chunk = 512usize;
    let prompt = 16 * 1024usize;
    let decode_context = 16 * 1024usize;
    let chunks = prompt / chunk;
    let strategies = [
        AttentionStrategy::FaSerial,
        AttentionStrategy::FaStreams,
        AttentionStrategy::FaHFuse,
        AttentionStrategy::Pod,
    ];

    for (title, decode_bs) in [
        (
            "Figure 6 (left): w/o wave quantization (decode batch 54)",
            54usize,
        ),
        (
            "Figure 6 (right): w/ wave quantization (decode batch 55)",
            55usize,
        ),
    ] {
        heading(
            title,
            "Per-layer attention runtime (ms) per chunk id, Yi-6B.",
        );
        let mut rows = Vec::new();
        for chunk_id in 0..chunks {
            // Print a subset of chunk ids to keep the table readable; the
            // sweep itself covers all 32.
            let batch =
                HybridBatch::uniform(chunk, (chunk_id + 1) * chunk, decode_bs, decode_context);
            let times: Vec<f64> = strategies
                .iter()
                .map(|&s| runner.time(&batch, s).expect("strategy runs"))
                .collect();
            if chunk_id % 4 == 0 || chunk_id == chunks - 1 {
                let mut row = vec![format!("{chunk_id}")];
                row.extend(times.iter().map(|t| ms(*t)));
                let fa = times[0];
                let pod = times[3];
                row.push(format!("{:.0}%", (fa / pod - 1.0) * 100.0));
                rows.push(row);
            }
        }
        print_table(
            &[
                "Chunk",
                "FA_Serial",
                "FA_Streams",
                "FA_HFuse",
                "POD",
                "POD vs serial",
            ],
            &rows,
        );
    }

    println!(
        "\nExpected shape (paper): POD is fastest for every chunk; FA_Streams recovers the \
         wave-quantization loss at batch 55; FA_HFuse degrades for the later, prefill-heavy chunks."
    );
}
