//! Table 7: chunk-size sensitivity of Sarathi+POD on the internal workload at
//! QPS 1.1 — larger chunks trade TBT for TTFT — compared against vLLM.

use gpu_sim::GpuConfig;
use llm_serving::{ModelConfig, ServingConfig, ServingEngine, Workload};
use pod_bench::{heading, print_table, scaled, secs};

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let workload = Workload::internal();
    let num_requests = scaled(256, 2048);
    let qps = 1.1;
    let requests = workload.generate(num_requests, qps, 71);

    heading(
        "Table 7: TTFT and TBT of Sarathi+POD with different chunk sizes vs vLLM",
        &format!("Internal workload, QPS {qps}, {num_requests} requests, Llama-3-8B TP-2."),
    );

    let mut systems = vec![(
        "vLLM (original)".to_string(),
        ServingEngine::new(ServingConfig::vllm(model.clone(), gpu.clone())).run(requests.clone()),
    )];
    for chunk in [1024usize, 1536, 2048] {
        let report = ServingEngine::new(ServingConfig::sarathi_pod(
            model.clone(),
            gpu.clone(),
            chunk,
        ))
        .run(requests.clone());
        systems.push((format!("Sarathi+POD (chunk {chunk})"), report));
    }

    let rows: Vec<Vec<String>> = systems
        .iter()
        .map(|(name, r)| {
            vec![
                name.clone(),
                secs(r.ttft.p50),
                secs(r.ttft.p99),
                format!("{:.3}", r.tbt.p50),
                format!("{:.3}", r.tbt.p99),
            ]
        })
        .collect();
    print_table(
        &[
            "System",
            "TTFT P50 (s)",
            "TTFT P99 (s)",
            "TBT P50 (s)",
            "TBT P99 (s)",
        ],
        &rows,
    );

    println!(
        "\nExpected shape (paper): increasing the chunk size lowers Sarathi+POD's TTFT toward \
         vLLM's at the cost of a higher (but still stall-free) tail TBT."
    );
}
