//! Figure 19 (repro-original): colocated vs. disaggregated prefill/decode
//! serving. Sweeps KV-migration bandwidth × arrival rate × attention backend
//! over an SLO-tagged trace, comparing a 4-replica colocated fleet against a
//! 2-prefill + 2-decode disaggregated fleet of the same size.
//!
//! POD-Attention's central claim is that fusing prefill and decode *inside
//! one GPU* beats the alternatives. The strongest alternative — splitting
//! the two phases onto separate replicas and shipping the KV cache between
//! them (Splitwise / DistServe-style) — is exactly what this bench makes
//! comparable: disaggregation buys interference-free decodes, but pays (1)
//! the KV transfer stall between a request's first and second token and (2)
//! a static capacity partition that cannot shift GPUs between phases as the
//! load mix breathes. The migration cost follows ISO (arXiv:2409.11155):
//! per-token transfer over a configurable link, optionally overlapped with
//! the prefill computation that produces the KV.
//!
//! Writes `BENCH_disagg.json` at the repository root (gated by
//! `perf_gate --disagg` in CI) and asserts the two orderings the paper's
//! argument needs:
//!
//! 1. at realistic migration bandwidth, the POD colocated fleet's goodput
//!    is at least the disaggregated fleet's at every load point;
//! 2. with **zero-cost** migration at a load the fleet comfortably absorbs,
//!    disaggregation matches colocation within tolerance — the control that
//!    shows the gap really is migration + partitioning cost, not an
//!    artifact of the disaggregated serving loop.
//!
//! Run with `cargo bench -p pod-bench --bench fig19_disaggregation`.

use gpu_sim::GpuConfig;
use llm_serving::{
    Cluster, ClusterConfig, ClusterReport, JsonValue, KvMigration, ModelConfig, RouterPolicy,
    ServingConfig, SloMix, Workload,
};
use pod_bench::microbench::repo_root_path;
use pod_bench::{heading, par_map, pct, print_table, scaled, secs};

/// Arrival rates in queries/second: comfortably under, near, and past the
/// 4-replica fleet's saturation point.
const LOADS: [f64; 3] = [1.5, 3.0, 5.0];
/// Colocated fleet size; the disaggregated fleet splits the same capacity
/// into `REPLICAS / 2` prefill and `REPLICAS / 2` decode replicas.
const REPLICAS: usize = 4;
const SEED: u64 = 19;

/// Fleet shapes swept per (load, backend) cell: colocated, then
/// disaggregated across three migration links.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Colocated,
    /// Disaggregated with the `migrations()[i]` link.
    Disaggregated(usize),
}

/// The migration links swept: a 2 GB/s commodity link with ISO-style
/// overlap, a 25 GB/s InfiniBand-class link, and the zero-cost ideal.
fn migrations() -> [KvMigration; 3] {
    [
        KvMigration::commodity().with_overlap(),
        KvMigration::infiniband(),
        KvMigration::free(),
    ]
}

#[derive(Clone, Copy, PartialEq)]
struct Cell {
    load: usize,
    backend: usize, // 0 = Sarathi, 1 = Sarathi+POD
    mode: Mode,
}

fn backends(model: &ModelConfig, gpu: &GpuConfig) -> [ServingConfig; 2] {
    [
        ServingConfig::sarathi(model.clone(), gpu.clone(), 1024),
        ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1024),
    ]
}

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let num_requests = scaled(96, 480);
    let mix = SloMix::interactive_batch();

    heading(
        "Figure 19: disaggregated prefill/decode vs POD colocation",
        "4 colocated replicas vs 2 prefill + 2 decode; migration links: 2 GB/s+overlap, \
         25 GB/s IB, free; 70/30 interactive/batch SLO mix; Llama-3-8B, chunk 1024.",
    );

    let mut cells: Vec<Cell> = Vec::new();
    for load in 0..LOADS.len() {
        for backend in 0..2 {
            cells.push(Cell {
                load,
                backend,
                mode: Mode::Colocated,
            });
            for link in 0..migrations().len() {
                cells.push(Cell {
                    load,
                    backend,
                    mode: Mode::Disaggregated(link),
                });
            }
        }
    }

    let reports: Vec<ClusterReport> = par_map(cells.clone(), |cell| {
        let specs = mix.apply(
            Workload::internal().generate(num_requests, LOADS[cell.load], SEED),
            SEED,
        );
        let base = backends(&model, &gpu)[cell.backend].clone();
        let config = match cell.mode {
            Mode::Colocated => ClusterConfig::new(base, REPLICAS, RouterPolicy::decode_aware()),
            Mode::Disaggregated(link) => ClusterConfig::disaggregated(
                base,
                REPLICAS / 2,
                REPLICAS / 2,
                RouterPolicy::decode_aware(),
                migrations()[link],
            ),
        };
        Cluster::new(config).run(specs)
    });
    let report_of = |load: usize, backend: usize, mode: Mode| {
        let want = Cell {
            load,
            backend,
            mode,
        };
        let idx = cells
            .iter()
            .position(|&c| c == want)
            .expect("every sweep cell was simulated");
        &reports[idx]
    };

    let rows: Vec<Vec<String>> = cells
        .iter()
        .zip(&reports)
        .map(|(&cell, r)| {
            vec![
                format!("{:.1}", LOADS[cell.load]),
                r.aggregate.system.clone(),
                match cell.mode {
                    Mode::Colocated => "colocated".to_string(),
                    Mode::Disaggregated(_) => format!("2P+2D {}", r.migration),
                },
                format!("{}", r.aggregate.goodput_requests()),
                format!("{:.1}", r.aggregate.goodput_per_minute()),
                pct(r.aggregate.slo_attainment()),
                secs(r.aggregate.ttft.p99),
                secs(r.aggregate.tbt.max),
                secs(r.aggregate.migration_stall_time),
            ]
        })
        .collect();
    print_table(
        &[
            "QPS",
            "System",
            "Fleet",
            "Goodput",
            "Good/min",
            "Attain",
            "TTFT P99",
            "TBT max",
            "Mig stall",
        ],
        &rows,
    );

    // Ordering 1 — the paper's argument: at realistic migration bandwidth,
    // POD colocation's goodput is at least disaggregation's at every load
    // point. Realistic = both non-free links.
    for (li, &qps) in LOADS.iter().enumerate() {
        for link in 0..2 {
            let colocated = report_of(li, 1, Mode::Colocated);
            let disagg = report_of(li, 1, Mode::Disaggregated(link));
            assert!(
                colocated.aggregate.goodput_requests() >= disagg.aggregate.goodput_requests(),
                "qps {qps}, link {}: POD colocated goodput {} < disaggregated {}",
                disagg.migration,
                colocated.aggregate.goodput_requests(),
                disagg.aggregate.goodput_requests()
            );
        }
    }

    // Ordering 2 — the control: with zero-cost migration at the lightest
    // load (ample replicas for both phases), disaggregation matches
    // colocation within tolerance on both backends. The disaggregated loop
    // itself costs nothing; only the link and the partition do.
    let free = migrations().len() - 1;
    for backend in 0..2 {
        let colocated = report_of(0, backend, Mode::Colocated);
        let disagg = report_of(0, backend, Mode::Disaggregated(free));
        assert_eq!(
            colocated.aggregate.completed, disagg.aggregate.completed,
            "free-migration disaggregation must serve every request"
        );
        let rel = (colocated.aggregate.goodput_per_minute()
            - disagg.aggregate.goodput_per_minute())
        .abs()
            / colocated.aggregate.goodput_per_minute();
        assert!(
            rel < 0.10,
            "backend {backend}: zero-cost disaggregation off colocated goodput by {:.1}% \
             ({:.1} vs {:.1} good/min)",
            rel * 100.0,
            disagg.aggregate.goodput_per_minute(),
            colocated.aggregate.goodput_per_minute()
        );
    }

    // Sanity: the realistic links actually exercised the migration path.
    let exercised = report_of(0, 1, Mode::Disaggregated(0));
    assert!(exercised.aggregate.migrated_out_requests > 0);
    assert!(exercised.aggregate.migration_stall_time > 0.0);

    println!(
        "\nOrderings hold: POD colocated >= disaggregated goodput at realistic bandwidth at \
         every load; zero-cost migration at light load matches colocation within 10%."
    );

    // Machine-readable sweep output in the shared report JSON format; the
    // CI perf gate consumes mean aggregate goodput across these cells.
    let cell_json: Vec<JsonValue> = cells
        .iter()
        .zip(&reports)
        .map(|(&cell, report)| {
            JsonValue::obj(vec![
                ("qps", JsonValue::Num(LOADS[cell.load])),
                (
                    "fleet",
                    JsonValue::str(match cell.mode {
                        Mode::Colocated => "colocated",
                        Mode::Disaggregated(_) => "disaggregated",
                    }),
                ),
                ("migration", JsonValue::str(&report.migration)),
                ("report", report.to_json()),
            ])
        })
        .collect();
    let json = JsonValue::obj(vec![
        (
            "workload",
            JsonValue::obj(vec![
                ("trace", JsonValue::str("internal/slo-mix")),
                ("slo_mix", JsonValue::str("interactive(70%) + batch(30%)")),
                ("num_requests", JsonValue::Num(num_requests as f64)),
                ("replicas", JsonValue::Num(REPLICAS as f64)),
                ("seed", JsonValue::Num(SEED as f64)),
            ]),
        ),
        ("cells", JsonValue::Arr(cell_json)),
    ]);
    let path = repo_root_path("BENCH_disagg.json");
    std::fs::write(&path, json.to_string_pretty()).expect("write BENCH_disagg.json");
    println!("wrote {}", path.display());
}
