//! Tracing overhead on the fleet trace replay: the `trace_replay` fleet
//! (16 replicas, diurnal chat trace, streaming metrics) run twice — flight
//! recorder off, then on — measuring the host-throughput cost of the
//! observability layer.
//!
//! Two properties are asserted in-process, and one is gated in CI:
//!
//! 1. **Inertness**: the traced run's [`ClusterReport`] must be bit-for-bit
//!    identical to the untraced run's — recording observes the simulation,
//!    it never perturbs it. Anyone threading a trace emission through a
//!    code path that changes virtual-time behavior fails here immediately.
//! 2. **Span fidelity**: on a spot-check prefix recorded with a ring large
//!    enough to hold everything, the per-request terminal events
//!    ([`llm_serving::SpanOutcomes`]) must reconstruct exactly the report's
//!    finished/shed/migrated counts.
//! 3. **Overhead**: `perf_gate --trace` fails CI when the traced replay's
//!    `trace.events_per_sec_on` regresses past the threshold or the
//!    off→on `trace.overhead_ratio` exceeds 1.10 — tracing must stay under
//!    ten percent of fleet replay throughput.
//!
//! Writes `BENCH_trace.json` at the repository root (uploaded as a CI
//! artifact, gated by `perf_gate --trace`) and a Chrome `trace_event` file
//! at `target/trace_overhead_chrome.json` — load it in `chrome://tracing`
//! or Perfetto to see the spot-check prefix as per-request spans.
//!
//! Run with `cargo bench -p pod-bench --bench trace_overhead`.

use gpu_sim::GpuConfig;
use llm_serving::{
    Cluster, ClusterConfig, JsonValue, ModelConfig, RateSchedule, RateSegment, RouterPolicy,
    ServingConfig, TraceConfig, Workload,
};
use pod_bench::microbench::repo_root_path;
use pod_bench::{heading, scaled};
use std::time::Instant;

const REPLICAS: usize = 16;
const CHUNK: usize = 1024;
const SEED: u64 = 42;

/// The `trace_replay` diurnal-with-bursts schedule (same constants), so the
/// off-leg of this bench replays the exact fleet the `--fleet` gate times.
fn diurnal_with_bursts(
    trough_qps: f64,
    peak_qps: f64,
    period_secs: f64,
    steps: usize,
    burst_qps: f64,
    burst_secs: f64,
) -> RateSchedule {
    let step_secs = period_secs / steps as f64;
    assert!(burst_secs < step_secs, "burst must fit inside one step");
    let mut segments = Vec::with_capacity(2 * steps);
    for i in 0..steps {
        let phase = 2.0 * std::f64::consts::PI * (i as f64 + 0.5) / steps as f64;
        let qps = trough_qps + (peak_qps - trough_qps) * 0.5 * (1.0 - phase.cos());
        segments.push(RateSegment {
            duration: step_secs - burst_secs,
            qps,
        });
        segments.push(RateSegment {
            duration: burst_secs,
            qps: qps + burst_qps,
        });
    }
    RateSchedule::new(segments)
}

/// Interactive chat traffic, as in `trace_replay`: per-request host cost is
/// dominated by bookkeeping, which is exactly where trace emission overhead
/// would show.
fn chat_workload() -> Workload {
    Workload {
        name: "chat-small".to_string(),
        mean_context: 320.0,
        context_range: (64, 2048),
        mean_decode: 8.0,
        min_decode: 2,
    }
}

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let workload = chat_workload();
    let schedule = diurnal_with_bursts(60.0, 200.0, 3600.0, 12, 80.0, 10.0);
    let num_requests = scaled(2_000_000, 4_000_000);

    heading(
        "Tracing overhead: fleet replay with the flight recorder off vs on",
        "16 replicas, diurnal chat trace; ring capacity 8192/replica, 60 s timeline samples.",
    );

    println!("generating {num_requests}-request trace ...");
    let trace = workload.generate_trace(num_requests, &schedule, SEED);

    let base_off = ServingConfig::sarathi_pod(model, gpu, CHUNK).with_streaming_metrics(true);
    // The flight-recorder configuration under test: a bounded ring per
    // replica (most-recent 8192 events survive) and a timeline sample per
    // virtual minute. Capacity does not change emission cost — every event
    // is filtered and ring-pushed either way — so this measures the steady
    // recording regime, not an unbounded buffer.
    let trace_cfg = TraceConfig::new()
        .with_capacity(8192)
        .with_timeline_interval(60.0);
    let base_on = base_off.clone().with_tracing(trace_cfg);
    let router = RouterPolicy::LeastOutstandingTokens;

    // Span-fidelity spot check on a prefix, with a ring big enough that
    // nothing is overwritten: the recorded terminal events must reconstruct
    // the report's outcome counts exactly, and the traced report must be
    // bit-identical to the untraced one.
    let prefix: Vec<_> = trace.iter().take(scaled(20_000, 50_000)).cloned().collect();
    let spot_cfg = base_off
        .clone()
        .with_tracing(TraceConfig::new().with_capacity(1 << 22));
    let mut spot = Cluster::new(ClusterConfig::new(spot_cfg, 4, router));
    let spot_report = spot.run(prefix.clone());
    let recording = spot
        .flight_recording()
        .expect("traced cluster yields a recording");
    let outcomes = recording.span_outcomes();
    assert_eq!(recording.dropped, 0, "spot-check ring overflowed");
    assert_eq!(outcomes.finished, spot_report.aggregate.completed);
    assert_eq!(outcomes.shed, spot_report.aggregate.shed_requests);
    assert_eq!(
        outcomes.migrated_out,
        spot_report.aggregate.migrated_out_requests
    );
    assert_eq!(
        outcomes.migrated_in,
        spot_report.aggregate.migrated_in_requests
    );
    let mut untraced = Cluster::new(ClusterConfig::new(base_off.clone(), 4, router));
    assert_eq!(
        untraced.run(prefix),
        spot_report,
        "tracing perturbed the simulation on the spot-check prefix"
    );
    println!(
        "spot check: {} finished / {} shed spans reconstruct the report exactly; \
         traced and untraced reports bit-identical",
        outcomes.finished, outcomes.shed
    );
    let chrome = spot
        .flight_recording()
        .expect("traced cluster yields a recording")
        .to_chrome_json();
    let chrome_path = repo_root_path("target/trace_overhead_chrome.json");
    std::fs::write(&chrome_path, chrome.to_string_compact()).expect("write chrome trace");
    println!("wrote {} (load in chrome://tracing)", chrome_path.display());

    // Leg 1: flight recorder off — the `trace_replay` fleet as-is.
    let mut off = Cluster::new(ClusterConfig::new(base_off, REPLICAS, router));
    let start = Instant::now();
    let report_off = off.run(trace.clone());
    let wall_off = start.elapsed().as_secs_f64();

    // Leg 2: flight recorder on.
    let mut on = Cluster::new(ClusterConfig::new(base_on, REPLICAS, router));
    let start = Instant::now();
    let report_on = on.run(trace);
    let wall_on = start.elapsed().as_secs_f64();

    // Inertness at fleet scale: identical virtual-time outcomes.
    assert_eq!(
        report_off, report_on,
        "tracing perturbed the fleet replay outcome"
    );
    assert_eq!(report_on.aggregate.completed, num_requests);

    let recording = on.flight_recording().expect("traced fleet recording");
    let events = report_on.aggregate.iterations;
    let events_per_sec_off = events as f64 / wall_off;
    let events_per_sec_on = events as f64 / wall_on;
    let overhead_ratio = wall_on / wall_off;
    println!(
        "off: {wall_off:.2} s ({events_per_sec_off:.0} events/s)  \
         on: {wall_on:.2} s ({events_per_sec_on:.0} events/s)  \
         overhead x{overhead_ratio:.3}",
    );
    println!(
        "recorder retained {} events ({} overwritten), {} timeline samples",
        recording.event_count(),
        recording.dropped,
        recording.timeline.samples
    );

    let json = JsonValue::obj(vec![(
        "trace",
        JsonValue::obj(vec![
            ("replicas", JsonValue::Num(REPLICAS as f64)),
            ("requests", JsonValue::Num(num_requests as f64)),
            ("seed", JsonValue::Num(SEED as f64)),
            ("ring_capacity", JsonValue::Num(8192.0)),
            ("timeline_interval_secs", JsonValue::Num(60.0)),
            ("events", JsonValue::Num(events as f64)),
            ("wall_secs_off", JsonValue::Num(wall_off)),
            ("wall_secs_on", JsonValue::Num(wall_on)),
            ("events_per_sec_off", JsonValue::Num(events_per_sec_off)),
            ("events_per_sec_on", JsonValue::Num(events_per_sec_on)),
            ("overhead_ratio", JsonValue::Num(overhead_ratio)),
            (
                "events_retained",
                JsonValue::Num(recording.event_count() as f64),
            ),
            ("events_dropped", JsonValue::Num(recording.dropped as f64)),
            ("timeline", recording.timeline.to_json()),
        ]),
    )]);
    let path = repo_root_path("BENCH_trace.json");
    std::fs::write(&path, json.to_string_pretty()).expect("write BENCH_trace.json");
    println!("\nwrote {}", path.display());
}
