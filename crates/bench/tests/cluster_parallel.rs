//! Cluster sweeps fanned out through `par_map` must be bitwise independent
//! of worker-thread count: each fleet simulation is deterministic and shares
//! nothing mutable, so the only way parallelism could change results is a
//! bug (shared state, order dependence) — which this test would catch.

use gpu_sim::GpuConfig;
use llm_serving::{
    ClusterReport, ModelConfig, RateSchedule, RouterPolicy, ServingConfig, Workload,
};
use pod_bench::online::run_cluster;
use pod_bench::par_map;

fn sweep_jobs() -> Vec<(usize, RouterPolicy)> {
    [1usize, 2, 3]
        .into_iter()
        .flat_map(|replicas| {
            [
                RouterPolicy::RoundRobin,
                RouterPolicy::LeastOutstandingTokens,
                RouterPolicy::decode_aware(),
            ]
            .into_iter()
            .map(move |router| (replicas, router))
        })
        .collect()
}

#[test]
fn cluster_sweep_results_are_independent_of_thread_count() {
    let base = ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 1024);
    let schedule = RateSchedule::bursty(0.5, 5.0, 30.0, 10.0);
    let trace = Workload::internal().generate_trace(30, &schedule, 99);

    // Serial reference: plain iterator, no worker threads at all.
    let serial: Vec<ClusterReport> = sweep_jobs()
        .into_iter()
        .map(|(replicas, router)| run_cluster(base.clone(), replicas, router, &trace))
        .collect();

    // The same sweep through the work-stealing pool, twice (job-claim order
    // differs run to run; results must not).
    for round in 0..2 {
        let parallel = par_map(sweep_jobs(), |(replicas, router)| {
            run_cluster(base.clone(), replicas, router, &trace)
        });
        assert_eq!(parallel.len(), serial.len());
        for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
            assert_eq!(p, s, "round {round}, job {i}: parallel result diverged");
            // Bitwise, not just PartialEq-equal: the JSON rendering encodes
            // every f64 digit the writer prints.
            assert_eq!(
                p.to_json().to_string_pretty(),
                s.to_json().to_string_pretty(),
                "round {round}, job {i}: serialized results diverged"
            );
        }
    }
}
