//! Deterministic streaming quantile sketch for constant-memory reports.
//!
//! [`QuantileSketch`] is a DDSketch-style relative-error histogram: values
//! are binned into exponentially sized buckets keyed by
//! `ceil(log_gamma(|v| / m))` with `gamma = (1 + alpha) / (1 - alpha)`, so
//! every bucket's representative value is within a factor `alpha` of every
//! sample it holds. Quantile queries walk the bucket counters to the
//! requested rank and return that bucket's representative, clamped into the
//! exact observed `[min, max]`.
//!
//! # Error bound
//!
//! For a sketch built with relative accuracy `alpha` (default
//! [`DEFAULT_RELATIVE_ERROR`]), `quantile(q)` over `n` samples returns a
//! value within `alpha * |x|` of `x`, where `x` is the sample at rank
//! `round(q * (n - 1))` of the sorted samples — an adjacent rank of the
//! exact interpolated percentile. (Magnitudes at or below the zero band
//! `1e-12` collapse to exactly `0.0`.) Unlike the exact
//! [`crate::metrics::percentile`], no interpolation between adjacent ranks
//! happens; with one sample per bucket the clamp makes small-n queries
//! exact at the extremes.
//!
//! # Determinism and merging
//!
//! Buckets are plain `u64` counters in a `BTreeMap`, so
//! [`QuantileSketch::merge`] is bucket-wise integer addition: exactly
//! associative and commutative. Merging per-replica sketches in any order
//! yields bit-identical bucket contents, hence bit-identical quantiles,
//! regardless of replica ordering or worker-thread count. (Only the running
//! `sum` used for the mean is a float accumulation; the cluster always
//! merges in replica-index order, so means are deterministic for a fixed
//! fleet too.)

use crate::metrics::SummaryStats;
use std::collections::BTreeMap;

/// Default relative accuracy of a [`QuantileSketch`]: 1%.
pub const DEFAULT_RELATIVE_ERROR: f64 = 0.01;

/// Magnitudes at or below this collapse into the sketch's zero band and are
/// reported as exactly `0.0`. Latency samples are in seconds; a picosecond
/// resolution floor is far below anything the cost model produces.
const ZERO_BAND: f64 = 1e-12;

/// Error returned by [`QuantileSketch::try_merge`] when the two sketches
/// were built with different relative-error accuracies: their exponential
/// bucket bases differ, so their counters cannot be meaningfully added.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchMergeError {
    /// `alpha` of the sketch being merged into.
    pub ours: f64,
    /// `alpha` of the sketch being merged from.
    pub theirs: f64,
}

impl std::fmt::Display for SketchMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sketch accuracies differ (alpha {} vs {})",
            self.ours, self.theirs
        )
    }
}

impl std::error::Error for SketchMergeError {}

/// A mergeable, deterministic quantile sketch with a relative error bound.
///
/// Handles negative samples (TTFT slack can be negative) via a mirrored
/// bucket store, and tracks exact `count` / `sum` / `min` / `max` alongside
/// the approximate buckets, so means and extremes stay exact.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    gamma: f64,
    ln_gamma: f64,
    /// Bucket counters for positive magnitudes, keyed by
    /// `ceil(log_gamma(v / ZERO_BAND))`.
    pos: BTreeMap<i32, u64>,
    /// Bucket counters for negative magnitudes (same keying on `|v|`).
    neg: BTreeMap<i32, u64>,
    /// Samples with `|v| <= ZERO_BAND`.
    zero: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// A sketch with the default relative accuracy
    /// ([`DEFAULT_RELATIVE_ERROR`]).
    pub fn new() -> Self {
        Self::with_relative_error(DEFAULT_RELATIVE_ERROR)
    }

    /// A sketch guaranteeing `alpha` relative accuracy per bucket.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    pub fn with_relative_error(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "relative error must be in (0, 1)"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma,
            ln_gamma: gamma.ln(),
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured relative accuracy.
    pub fn relative_error(&self) -> f64 {
        self.alpha
    }

    /// Number of samples observed.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Whether no samples have been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all observed samples (accumulated in observation order).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Exact minimum observed sample (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact maximum observed sample (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Number of buckets currently resident — the memory footprint is
    /// O(buckets), independent of sample count.
    pub fn buckets(&self) -> usize {
        self.pos.len() + self.neg.len() + usize::from(self.zero > 0)
    }

    /// Record one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite (a NaN or infinity would silently
    /// poison percentiles, exactly like the NaN check in
    /// [`SummaryStats::from_samples`]).
    pub fn observe(&mut self, value: f64) {
        assert!(value.is_finite(), "sketch samples must be finite");
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let magnitude = value.abs();
        if magnitude <= ZERO_BAND {
            self.zero += 1;
        } else {
            let key = self.key_for(magnitude);
            let store = if value > 0.0 {
                &mut self.pos
            } else {
                &mut self.neg
            };
            *store.entry(key).or_insert(0) += 1;
        }
    }

    /// Fold another sketch into this one: bucket-wise counter addition, so
    /// the result is independent of merge order (see module docs).
    ///
    /// # Panics
    ///
    /// Panics if the two sketches were built with different accuracies
    /// (their buckets would not line up). Use
    /// [`QuantileSketch::try_merge`] where a mismatch should be handled
    /// instead of aborting.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.try_merge(other).unwrap_or_else(|e| {
            panic!("cannot merge sketches with different relative errors: {e}")
        });
    }

    /// Fallible [`QuantileSketch::merge`]: rejects a merge between sketches
    /// built with different relative-error accuracies. Their bucket keys are
    /// computed against different `gamma` bases, so adding the counters
    /// would silently misplace every sample of the finer sketch — this
    /// returns the mismatch instead, leaving `self` untouched.
    pub fn try_merge(&mut self, other: &QuantileSketch) -> Result<(), SketchMergeError> {
        if self.alpha != other.alpha {
            return Err(SketchMergeError {
                ours: self.alpha,
                theirs: other.alpha,
            });
        }
        for (&k, &c) in &other.pos {
            *self.pos.entry(k).or_insert(0) += c;
        }
        for (&k, &c) in &other.neg {
            *self.neg.entry(k).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Approximate quantile: the representative of the bucket holding the
    /// sample at rank `round(q * (count - 1))`, clamped into the observed
    /// `[min, max]`. Returns 0.0 when empty (matching
    /// [`crate::metrics::percentile`] on an empty slice).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut cum = 0u64;
        // Ascending value order: most-negative first (descending |v| keys),
        // then the zero band, then positives (ascending |v| keys).
        for (&k, &c) in self.neg.iter().rev() {
            cum += c;
            if cum > rank {
                return (-self.representative(k)).clamp(self.min, self.max);
            }
        }
        cum += self.zero;
        if cum > rank {
            return 0.0f64.clamp(self.min, self.max);
        }
        for (&k, &c) in self.pos.iter() {
            cum += c;
            if cum > rank {
                return self.representative(k).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Summarize as [`SummaryStats`]: exact count/mean/max, sketch-derived
    /// p50/p99.
    pub fn summary(&self) -> SummaryStats {
        if self.count == 0 {
            return SummaryStats::default();
        }
        SummaryStats {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }

    /// Bucket key for a positive magnitude above the zero band. Bucket `k`
    /// covers `(ZERO_BAND * gamma^(k-1), ZERO_BAND * gamma^k]`.
    fn key_for(&self, magnitude: f64) -> i32 {
        ((magnitude / ZERO_BAND).ln() / self.ln_gamma).ceil() as i32
    }

    /// Midpoint representative of bucket `k`: within `alpha` relative error
    /// of every magnitude the bucket covers.
    fn representative(&self, k: i32) -> f64 {
        ZERO_BAND * self.gamma.powi(k) * 2.0 / (1.0 + self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::mix64;

    /// Deterministic uniform f64 in [0, 1) from a counter.
    fn unit(seed: u64, i: u64) -> f64 {
        (mix64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Assert the sketch quantile is within its documented bound of the
    /// adjacent-rank order statistic of the exact samples.
    fn assert_within_bound(sketch: &QuantileSketch, sorted: &[f64], q: f64) {
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        let exact = sorted[rank];
        let got = sketch.quantile(q);
        let tol = sketch.relative_error() * exact.abs() + ZERO_BAND;
        assert!(
            (got - exact).abs() <= tol,
            "q={q}: sketch {got} vs exact rank-{rank} sample {exact} (tol {tol})"
        );
    }

    fn check_distribution(samples: Vec<f64>) {
        let mut sketch = QuantileSketch::new();
        for &v in &samples {
            sketch.observe(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for q in [0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
            assert_within_bound(&sketch, &sorted, q);
        }
        assert_eq!(sketch.count(), samples.len());
        assert_eq!(sketch.max(), *sorted.last().unwrap());
        assert_eq!(sketch.min(), sorted[0]);
        let exact_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((sketch.mean() - exact_mean).abs() <= 1e-12 * exact_mean.abs().max(1.0));
    }

    #[test]
    fn uniform_distribution_within_bound() {
        check_distribution((0..10_001).map(|i| 0.001 + 10.0 * unit(1, i)).collect());
    }

    #[test]
    fn bimodal_distribution_within_bound() {
        // Interactive-vs-batch shaped: tight cluster near 10ms, far cluster
        // near 100s — the case where interpolated percentiles sit in the gap
        // between modes and only an order-statistic bound is meaningful.
        check_distribution(
            (0..8_000)
                .map(|i| {
                    if i % 4 == 0 {
                        100.0 + unit(2, i)
                    } else {
                        0.010 + 0.002 * unit(3, i)
                    }
                })
                .collect(),
        );
    }

    #[test]
    fn heavy_tail_distribution_within_bound() {
        // Pareto-ish tail: u^-2 over a 0.05s scale, spanning ~6 decades.
        check_distribution(
            (0..20_000)
                .map(|i| 0.05 * (1.0 - unit(4, i)).powi(-2).min(1e6))
                .collect(),
        );
    }

    #[test]
    fn negative_samples_supported() {
        // TTFT slack distributions cross zero.
        check_distribution((0..5_000).map(|i| 20.0 * unit(5, i) - 10.0).collect());
    }

    #[test]
    fn merge_is_order_independent() {
        let shards: Vec<QuantileSketch> = (0..8)
            .map(|s| {
                let mut sk = QuantileSketch::new();
                for i in 0..2_000u64 {
                    sk.observe(0.001 + 5.0 * unit(100 + s, i));
                }
                sk
            })
            .collect();
        let mut forward = QuantileSketch::new();
        for s in &shards {
            forward.merge(s);
        }
        let mut reverse = QuantileSketch::new();
        for s in shards.iter().rev() {
            reverse.merge(s);
        }
        // Pairwise tree merge, as a parallel reduction would do it.
        let mut tree: Vec<QuantileSketch> = shards.clone();
        while tree.len() > 1 {
            let mut next = Vec::new();
            for pair in tree.chunks(2) {
                let mut m = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    m.merge(b);
                }
                next.push(m);
            }
            tree = next;
        }
        let tree = tree.pop().unwrap();
        assert_eq!(forward.count(), reverse.count());
        assert_eq!(forward.count(), tree.count());
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
            // Bucket counters are integers, so quantiles are bit-identical
            // whatever the merge order.
            assert_eq!(forward.quantile(q).to_bits(), reverse.quantile(q).to_bits());
            assert_eq!(forward.quantile(q).to_bits(), tree.quantile(q).to_bits());
        }
        assert_eq!(forward.max().to_bits(), tree.max().to_bits());
        assert_eq!(forward.min().to_bits(), tree.min().to_bits());
        // Only the float mean depends (at ULP scale) on merge order.
        assert!((forward.mean() - reverse.mean()).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_single_sketch_quantiles() {
        let mut whole = QuantileSketch::new();
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        for i in 0..4_000u64 {
            let v = 0.01 + 3.0 * unit(7, i);
            whole.observe(v);
            if i % 2 == 0 {
                left.observe(v);
            } else {
                right.observe(v);
            }
        }
        left.merge(&right);
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(whole.quantile(q).to_bits(), left.quantile(q).to_bits());
        }
    }

    #[test]
    fn empty_and_single_sample_edge_cases() {
        let empty = QuantileSketch::new();
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.summary(), SummaryStats::default());

        let mut one = QuantileSketch::new();
        one.observe(42.0);
        // The [min, max] clamp makes single-sample queries exact.
        assert_eq!(one.quantile(0.0), 42.0);
        assert_eq!(one.quantile(0.5), 42.0);
        assert_eq!(one.quantile(1.0), 42.0);
        assert_eq!(one.summary().count, 1);
        assert_eq!(one.summary().mean, 42.0);
        assert_eq!(one.summary().max, 42.0);

        let mut zero = QuantileSketch::new();
        zero.observe(0.0);
        assert_eq!(zero.quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_rejected() {
        QuantileSketch::new().observe(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "different relative errors")]
    fn mismatched_accuracy_merge_rejected() {
        let mut a = QuantileSketch::with_relative_error(0.01);
        let b = QuantileSketch::with_relative_error(0.02);
        a.merge(&b);
    }

    #[test]
    fn try_merge_rejects_mismatch_without_mutating() {
        let mut a = QuantileSketch::with_relative_error(0.01);
        a.observe(1.0);
        a.observe(2.0);
        let baseline = a.clone();
        let mut b = QuantileSketch::with_relative_error(0.02);
        b.observe(100.0);
        let err = a
            .try_merge(&b)
            .expect_err("alpha mismatch must be rejected");
        assert_eq!(
            err,
            SketchMergeError {
                ours: 0.01,
                theirs: 0.02
            }
        );
        assert!(err.to_string().contains("0.01"));
        assert_eq!(a, baseline, "a failed try_merge must leave self untouched");

        // And a matching merge through the fallible path behaves like merge.
        let mut c = QuantileSketch::with_relative_error(0.01);
        c.observe(3.0);
        a.try_merge(&c).expect("matching accuracies merge fine");
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn bucket_count_is_bounded_by_value_range_not_sample_count() {
        let mut sketch = QuantileSketch::new();
        for i in 0..100_000u64 {
            sketch.observe(0.001 + unit(9, i));
        }
        assert_eq!(sketch.count(), 100_000);
        // Buckets are bounded by the magnitude range (here 0.001..1.001,
        // about log_gamma(1000) ~ 346 buckets), independent of sample count.
        let key_span = ((1.001f64 / 0.001).ln() / sketch.ln_gamma).ceil() as usize + 2;
        assert!(
            sketch.buckets() <= key_span,
            "{} buckets exceeds range bound {key_span}",
            sketch.buckets()
        );
        // Doubling the sample count stays under the same range bound: the
        // footprint converges to the occupied key range, not to n.
        for i in 100_000..200_000u64 {
            sketch.observe(0.001 + unit(9, i));
        }
        assert!(sketch.buckets() <= key_span);
    }
}
