//! Workload generators for the paper's offline and online experiments.
//!
//! The paper's two online traces (an internal enterprise workload and one
//! derived from arXiv-Summarization) are not available, so we generate
//! synthetic traces matched to their published statistics: mean context
//! length (10.5K / 9.5K tokens), prefill-to-decode token ratio ranges
//! (0–40 / 0–50) and mean decode length (331 / 470 tokens), with Poisson
//! arrivals at a configurable queries-per-second rate.

use crate::request::RequestSpec;
use crate::rng::SplitMix64;

/// Named workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Human-readable name used in reports.
    pub name: String,
    /// Mean total context length (prompt + output tokens).
    pub mean_context: f64,
    /// Minimum / maximum total context length.
    pub context_range: (usize, usize),
    /// Mean number of decode (output) tokens.
    pub mean_decode: f64,
    /// Minimum decode tokens.
    pub min_decode: usize,
}

impl Workload {
    /// The internal enterprise workload of §5: mean context 10.5K tokens,
    /// mean 331 decode tokens, P:D ratios up to ~40.
    pub fn internal() -> Self {
        Workload {
            name: "internal".to_string(),
            mean_context: 10_500.0,
            context_range: (4 * 1024, 32 * 1024),
            mean_decode: 331.0,
            min_decode: 32,
        }
    }

    /// The arXiv-Summarization-based workload of §5: mean context 9.5K
    /// tokens, mean 470 decode tokens (42 % more decodes than the internal
    /// workload), P:D ratios up to ~50.
    pub fn arxiv() -> Self {
        Workload {
            name: "arxiv".to_string(),
            mean_context: 9_500.0,
            context_range: (4 * 1024, 32 * 1024),
            mean_decode: 470.0,
            min_decode: 48,
        }
    }

    /// Generate `count` requests with Poisson arrivals at `qps` queries per
    /// second, deterministically from `seed`.
    pub fn generate(&self, count: usize, qps: f64, seed: u64) -> Vec<RequestSpec> {
        assert!(qps > 0.0, "queries-per-second must be positive");
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut arrival = 0.0_f64;
        let mut requests = Vec::with_capacity(count);
        for _ in 0..count {
            // Exponential inter-arrival times give a Poisson process.
            let u: f64 = rng.next_f64().max(1e-12);
            arrival += -u.ln() / qps;
            requests.push(self.sample_request(arrival, &mut rng));
        }
        requests
    }

    /// Generate `count` requests that all arrive at time zero (offline
    /// serving).
    pub fn generate_offline(&self, count: usize, seed: u64) -> Vec<RequestSpec> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..count)
            .map(|_| self.sample_request(0.0, &mut rng))
            .collect()
    }

    fn sample_request(&self, arrival: f64, rng: &mut SplitMix64) -> RequestSpec {
        // Context length: log-normal-ish around the mean, clamped to the
        // published range.
        let (lo, hi) = self.context_range;
        let spread = 0.45;
        let z: f64 = standard_normal(rng);
        let context = (self.mean_context * (spread * z).exp())
            .clamp(lo as f64, hi as f64)
            .round() as usize;
        // Decode length: exponential around the mean, at least min_decode,
        // and at most the context itself (P:D >= ~1).
        let u: f64 = rng.next_f64().max(1e-12);
        let decode = ((-u.ln() * self.mean_decode) as usize)
            .max(self.min_decode)
            .min(context / 2);
        let prompt = context.saturating_sub(decode).max(1);
        RequestSpec::new(arrival, prompt, decode)
    }
}

/// Offline workload used by Figure 12: `count` identical long-context
/// requests (16K prompt tokens, model-specific output length), all arriving
/// at time zero.
pub fn offline_long_context(
    count: usize,
    prompt_tokens: usize,
    output_tokens: usize,
) -> Vec<RequestSpec> {
    (0..count)
        .map(|_| RequestSpec::new(0.0, prompt_tokens, output_tokens))
        .collect()
}

/// The Figure 15 workload: `count` requests of ~16.5K total tokens each with
/// a fixed prefill-to-decode token ratio.
pub fn pd_ratio_workload(count: usize, total_tokens: usize, pd_ratio: f64) -> Vec<RequestSpec> {
    assert!(pd_ratio > 0.0, "P:D ratio must be positive");
    let decode = ((total_tokens as f64) / (1.0 + pd_ratio)).round().max(1.0) as usize;
    let prompt = total_tokens.saturating_sub(decode).max(1);
    (0..count)
        .map(|_| RequestSpec::new(0.0, prompt, decode))
        .collect()
}

/// Sample a standard normal variate using the Box-Muller transform.
fn standard_normal(rng: &mut SplitMix64) -> f64 {
    let u1: f64 = rng.next_f64().max(1e-12);
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_workloads_match_published_statistics() {
        for (w, mean_ctx, mean_dec) in [
            (Workload::internal(), 10_500.0, 331.0),
            (Workload::arxiv(), 9_500.0, 470.0),
        ] {
            let reqs = w.generate(2000, 1.0, 42);
            let avg_ctx: f64 =
                reqs.iter().map(|r| r.total_tokens() as f64).sum::<f64>() / reqs.len() as f64;
            let avg_dec: f64 =
                reqs.iter().map(|r| r.output_tokens as f64).sum::<f64>() / reqs.len() as f64;
            assert!(
                (avg_ctx - mean_ctx).abs() / mean_ctx < 0.25,
                "{}: mean context {avg_ctx} vs target {mean_ctx}",
                w.name
            );
            assert!(
                (avg_dec - mean_dec).abs() / mean_dec < 0.35,
                "{}: mean decode {avg_dec} vs target {mean_dec}",
                w.name
            );
        }
    }

    #[test]
    fn arxiv_has_more_decode_tokens_than_internal() {
        let internal = Workload::internal().generate(1000, 1.0, 7);
        let arxiv = Workload::arxiv().generate(1000, 1.0, 7);
        let mean = |rs: &[RequestSpec]| {
            rs.iter().map(|r| r.output_tokens as f64).sum::<f64>() / rs.len() as f64
        };
        assert!(mean(&arxiv) > 1.2 * mean(&internal));
    }

    #[test]
    fn poisson_arrivals_have_the_right_rate() {
        let reqs = Workload::internal().generate(4000, 2.0, 3);
        let duration = reqs.last().unwrap().arrival;
        let rate = reqs.len() as f64 / duration;
        assert!((rate - 2.0).abs() < 0.2, "observed rate {rate}");
        // Arrivals are sorted by construction.
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Workload::internal().generate(50, 1.0, 9);
        let b = Workload::internal().generate(50, 1.0, 9);
        let c = Workload::internal().generate(50, 1.0, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn offline_workload_is_uniform() {
        let reqs = offline_long_context(10, 16 * 1024, 1024);
        assert_eq!(reqs.len(), 10);
        assert!(reqs.iter().all(|r| r.arrival == 0.0));
        assert!(reqs.iter().all(|r| r.prompt_tokens == 16 * 1024));
    }

    #[test]
    fn pd_ratio_workload_hits_the_ratio() {
        for ratio in [8.0, 16.0, 24.0] {
            let reqs = pd_ratio_workload(5, 16_500, ratio);
            let r = &reqs[0];
            assert!(
                (r.pd_ratio() - ratio).abs() / ratio < 0.05,
                "requested {ratio}, got {}",
                r.pd_ratio()
            );
            assert!((r.total_tokens() as i64 - 16_500).abs() <= 1);
        }
    }

    #[test]
    fn context_lengths_stay_in_range() {
        let reqs = Workload::internal().generate(500, 1.0, 11);
        assert!(reqs
            .iter()
            .all(|r| r.total_tokens() >= 4 * 1024 && r.total_tokens() <= 32 * 1024 + 1));
    }
}
