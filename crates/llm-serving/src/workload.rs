//! Workload generators for the paper's offline and online experiments.
//!
//! The paper's two online traces (an internal enterprise workload and one
//! derived from arXiv-Summarization) are not available, so we generate
//! synthetic traces matched to their published statistics: mean context
//! length (10.5K / 9.5K tokens), prefill-to-decode token ratio ranges
//! (0–40 / 0–50) and mean decode length (331 / 470 tokens), with Poisson
//! arrivals at a configurable queries-per-second rate.

use crate::request::{Priority, PromptContent, RequestSpec, SloSpec, TenantId};
use crate::rng::SplitMix64;

/// Named workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Human-readable name used in reports.
    pub name: String,
    /// Mean total context length (prompt + output tokens).
    pub mean_context: f64,
    /// Minimum / maximum total context length.
    pub context_range: (usize, usize),
    /// Mean number of decode (output) tokens.
    pub mean_decode: f64,
    /// Minimum decode tokens.
    pub min_decode: usize,
}

impl Workload {
    /// The internal enterprise workload of §5: mean context 10.5K tokens,
    /// mean 331 decode tokens, P:D ratios up to ~40.
    pub fn internal() -> Self {
        Workload {
            name: "internal".to_string(),
            mean_context: 10_500.0,
            context_range: (4 * 1024, 32 * 1024),
            mean_decode: 331.0,
            min_decode: 32,
        }
    }

    /// The arXiv-Summarization-based workload of §5: mean context 9.5K
    /// tokens, mean 470 decode tokens (42 % more decodes than the internal
    /// workload), P:D ratios up to ~50.
    pub fn arxiv() -> Self {
        Workload {
            name: "arxiv".to_string(),
            mean_context: 9_500.0,
            context_range: (4 * 1024, 32 * 1024),
            mean_decode: 470.0,
            min_decode: 48,
        }
    }

    /// Generate `count` requests with Poisson arrivals at `qps` queries per
    /// second, deterministically from `seed`.
    pub fn generate(&self, count: usize, qps: f64, seed: u64) -> Vec<RequestSpec> {
        assert!(qps > 0.0, "queries-per-second must be positive");
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut arrival = 0.0_f64;
        let mut requests = Vec::with_capacity(count);
        for _ in 0..count {
            // Exponential inter-arrival times give a Poisson process.
            let u: f64 = rng.next_f64().max(1e-12);
            arrival += -u.ln() / qps;
            requests.push(self.sample_request(arrival, &mut rng));
        }
        requests
    }

    /// Generate `count` requests that all arrive at time zero (offline
    /// serving).
    pub fn generate_offline(&self, count: usize, seed: u64) -> Vec<RequestSpec> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..count)
            .map(|_| self.sample_request(0.0, &mut rng))
            .collect()
    }

    /// Generate `count` requests whose arrivals follow a **time-varying**
    /// Poisson process with the piecewise-constant rate of `schedule`
    /// (repeating cyclically), deterministically from `seed`. With a
    /// single-segment schedule this reproduces [`Workload::generate`]
    /// exactly.
    ///
    /// This is the trace generator for the cluster experiments: bursty and
    /// diurnal load is exactly the regime where routing policy and
    /// prefill-decode overlap interact.
    pub fn generate_trace(
        &self,
        count: usize,
        schedule: &RateSchedule,
        seed: u64,
    ) -> Vec<RequestSpec> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut t = 0.0_f64;
        let mut requests = Vec::with_capacity(count);
        for _ in 0..count {
            // Draw a unit-rate exponential "area" and integrate the rate
            // function until it is consumed — the standard exact method for
            // piecewise-constant non-homogeneous Poisson processes.
            let u: f64 = rng.next_f64().max(1e-12);
            let mut area = -u.ln();
            loop {
                let (rate, to_boundary) = schedule.rate_and_boundary(t);
                if rate <= 0.0 {
                    t += to_boundary;
                    continue;
                }
                let segment_area = rate * to_boundary;
                if area <= segment_area {
                    t += area / rate;
                    break;
                }
                area -= segment_area;
                t += to_boundary;
            }
            requests.push(self.sample_request(t, &mut rng));
        }
        requests
    }

    fn sample_request(&self, arrival: f64, rng: &mut SplitMix64) -> RequestSpec {
        // Context length: log-normal-ish around the mean, clamped to the
        // published range.
        let (lo, hi) = self.context_range;
        let spread = 0.45;
        let z: f64 = standard_normal(rng);
        let context = (self.mean_context * (spread * z).exp())
            .clamp(lo as f64, hi as f64)
            .round() as usize;
        // Decode length: exponential around the mean, at least min_decode,
        // and at most the context itself (P:D >= ~1).
        let u: f64 = rng.next_f64().max(1e-12);
        let decode = ((-u.ln() * self.mean_decode) as usize)
            .max(self.min_decode)
            .min(context / 2);
        let prompt = context.saturating_sub(decode).max(1);
        RequestSpec::new(arrival, prompt, decode)
    }
}

/// A workload whose requests share token prefixes: system-prompt groups
/// (agent fleets, chat products where every request opens with the same
/// instructions) and multi-turn conversations that re-submit their whole
/// history as the next prompt.
///
/// Built on top of a base [`Workload`] for sizes and arrivals; this layer
/// only decides each request's [`PromptContent`] — which is what the
/// prefix-sharing paged KV cache and the prefix-affinity router act on. With
/// `share_ratio = 0` the generated sizes are identical to the base workload
/// and every stream is unique, so prefix caching finds nothing to share.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedPrefixWorkload {
    /// Base generator for arrivals and request sizes.
    pub base: Workload,
    /// Number of distinct system-prompt groups.
    pub groups: usize,
    /// Length of each group's shared system prompt, in tokens.
    pub prefix_tokens: usize,
    /// Fraction of requests that belong to a system-prompt group (the rest
    /// have fully unique prompts).
    pub share_ratio: f64,
    /// Among shared requests, the probability of being a *follow-up turn* of
    /// an existing conversation: its prompt embeds the full prior context
    /// (including the previous response), so a prefix cache can skip
    /// everything but the new user turn.
    pub followup_ratio: f64,
    /// Cap on follow-up prompt growth; a conversation that would exceed it
    /// starts over as a new one (keeps multi-turn traces within the KV
    /// capacities the benches configure).
    pub max_prompt_tokens: usize,
}

impl SharedPrefixWorkload {
    /// A shared-prefix workload over `base`.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero, `prefix_tokens` is zero, or either ratio
    /// is outside `[0, 1]`.
    pub fn new(
        base: Workload,
        groups: usize,
        prefix_tokens: usize,
        share_ratio: f64,
        followup_ratio: f64,
    ) -> Self {
        assert!(groups > 0, "need at least one system-prompt group");
        assert!(
            prefix_tokens > 0,
            "a shared prefix needs at least one token"
        );
        assert!(
            (0.0..=1.0).contains(&share_ratio),
            "share_ratio must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&followup_ratio),
            "followup_ratio must be in [0, 1]"
        );
        SharedPrefixWorkload {
            base,
            groups,
            prefix_tokens,
            share_ratio,
            followup_ratio,
            max_prompt_tokens: 24 * 1024,
        }
    }

    /// Generate `count` requests with Poisson arrivals at `qps` queries per
    /// second, deterministically from `seed`. Sizes and arrivals come from
    /// the base workload; this pass assigns content identities and stretches
    /// follow-up prompts to embed their conversation history.
    pub fn generate(&self, count: usize, qps: f64, seed: u64) -> Vec<RequestSpec> {
        let specs = self.base.generate(count, qps, seed);
        self.assign_content(specs, seed)
    }

    fn assign_content(&self, specs: Vec<RequestSpec>, seed: u64) -> Vec<RequestSpec> {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5EED_50F1_C5A7);
        // Live conversations: (lineage tag, group, context tokens so far).
        let mut convs: Vec<(u64, usize, usize)> = Vec::new();
        let mut lineage_counter = 0u64;
        let mut fresh_lineage = |rng: &mut SplitMix64| {
            lineage_counter += 1;
            // Mix the seed in so different traces never collide by lineage.
            seed ^ rng.next_u64() ^ lineage_counter.rotate_left(32)
        };
        specs
            .into_iter()
            .map(|spec| {
                let shared = rng.next_f64() < self.share_ratio;
                if !shared {
                    let lineage = fresh_lineage(&mut rng);
                    return spec.with_content(PromptContent::unique(lineage));
                }
                let followup = !convs.is_empty() && rng.next_f64() < self.followup_ratio;
                let mut retired = None;
                if followup {
                    let idx = rng.next_usize(convs.len());
                    let (lineage, group, history) = convs[idx];
                    // New user turn appended to the full prior context.
                    let turn = 64 + rng.next_usize(448);
                    let prompt = history + turn;
                    if prompt <= self.max_prompt_tokens {
                        convs[idx].2 = prompt + spec.output_tokens;
                        return RequestSpec::new(spec.arrival, prompt, spec.output_tokens)
                            .with_content(PromptContent::shared(
                                self.group_tag(seed, group),
                                self.prefix_tokens,
                                lineage,
                            ));
                    }
                    // Conversation too long: retire it (its slot is reused by
                    // the fresh conversation below) so dead entries do not
                    // accumulate and dilute the realized follow-up ratio.
                    retired = Some(idx);
                }
                let group = rng.next_usize(self.groups);
                let lineage = fresh_lineage(&mut rng);
                // First turn: the system prompt plus the base prompt body.
                let prompt = spec.prompt_tokens.max(self.prefix_tokens + 64);
                let conv = (lineage, group, prompt + spec.output_tokens);
                match retired {
                    Some(idx) => convs[idx] = conv,
                    None => convs.push(conv),
                }
                RequestSpec::new(spec.arrival, prompt, spec.output_tokens).with_content(
                    PromptContent::shared(self.group_tag(seed, group), self.prefix_tokens, lineage),
                )
            })
            .collect()
    }

    /// Tag of a system-prompt group (trace-scoped: different seeds get
    /// different system prompts).
    fn group_tag(&self, seed: u64, group: usize) -> u64 {
        (seed.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15).wrapping_add(group as u64 + 1)
    }
}

/// A mix of SLO classes to stamp onto a generated trace: each request draws
/// a class by weight (e.g. 70% `"interactive"` with tight deadlines, 30%
/// `"batch"` with loose ones), deterministically from a seed.
///
/// Layered *after* size/arrival generation — it never changes a request's
/// tokens or timing, only its [`SloSpec`] — so the same base trace is
/// directly comparable with and without SLOs, and across mixes.
#[derive(Debug, Clone, PartialEq)]
pub struct SloMix {
    /// `(weight, slo)` pairs; weights are relative (not necessarily summing
    /// to 1). A `None` slo entry leaves that share of requests SLO-free.
    entries: Vec<(f64, Option<SloSpec>)>,
    total_weight: f64,
}

impl SloMix {
    /// A mix from `(weight, slo)` entries. `None` entries leave their share
    /// of the trace SLO-free (best-effort traffic).
    ///
    /// # Panics
    ///
    /// Panics if no entry is given or any weight is not positive and finite.
    pub fn new(entries: Vec<(f64, Option<SloSpec>)>) -> Self {
        assert!(!entries.is_empty(), "an SLO mix needs at least one class");
        for (w, _) in &entries {
            assert!(
                *w > 0.0 && w.is_finite(),
                "SLO mix weights must be positive and finite"
            );
        }
        let total_weight = entries.iter().map(|(w, _)| w).sum();
        SloMix {
            entries,
            total_weight,
        }
    }

    /// The canonical two-class mix the SLO benches use: 70% `"interactive"`
    /// traffic with tight targets and 30% `"batch"` traffic with loose ones.
    /// Targets are calibrated to the simulated Llama-3-8B/A100 replica
    /// (TTFT p50 ~0.5 s, TBT p99 ~0.05 s unloaded): an unloaded replica
    /// holds them easily, a saturated one does not.
    pub fn interactive_batch() -> Self {
        SloMix::new(vec![
            (0.7, Some(SloSpec::new("interactive", 2.0, 0.2))),
            (0.3, Some(SloSpec::new("batch", 30.0, 1.0))),
        ])
    }

    /// Stamp each request of `specs` with a class drawn by weight,
    /// deterministically from `seed`. Sizes, arrivals and content are
    /// untouched.
    pub fn apply(&self, specs: Vec<RequestSpec>, seed: u64) -> Vec<RequestSpec> {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0051_0C1A_55E5);
        specs
            .into_iter()
            .map(|spec| {
                let mut draw = rng.next_f64() * self.total_weight;
                for (w, slo) in &self.entries {
                    if draw < *w {
                        return match slo {
                            Some(s) => spec.with_slo(*s),
                            None => spec,
                        };
                    }
                    draw -= w;
                }
                // Floating-point edge: the draw landed exactly on the total.
                let last = &self.entries[self.entries.len() - 1];
                match last.1 {
                    Some(s) => spec.with_slo(s),
                    None => spec,
                }
            })
            .collect()
    }
}

/// One tenant's traffic stream within a [`TenantMix`]: its own request
/// shape, arrival schedule, volume, priority class and SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTraffic {
    /// The tenant every request of this stream is stamped with.
    pub tenant: TenantId,
    /// Size/shape generator for this tenant's requests.
    pub workload: Workload,
    /// Arrival-rate schedule for this tenant's requests.
    pub schedule: RateSchedule,
    /// Number of requests this tenant submits.
    pub count: usize,
    /// Priority class stamped onto every request of this stream.
    pub priority: Priority,
    /// SLO stamped onto every request (`None` = best-effort).
    pub slo: Option<SloSpec>,
}

/// Multi-tenant trace generator: each tenant is an independent
/// [`TenantTraffic`] stream, and the mix interleaves the streams by arrival
/// time into one trace.
///
/// The property the fairness benches build on: each tenant's stream is
/// drawn from its *own* seed (derived from the trace seed and the tenant
/// id), so [`TenantMix::solo`] — one tenant's stream alone, the isolation
/// baseline — is request-for-request identical to that tenant's share of
/// the full [`TenantMix::generate`] trace. Comparing a tenant's goodput
/// solo vs. mixed therefore measures interference and nothing else.
///
/// The named constructors build the adversarial scenarios of
/// `fig20_fairness`: [`TenantMix::noisy_neighbor`],
/// [`TenantMix::prompt_bomb`] and [`TenantMix::priority_inversion`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMix {
    tenants: Vec<TenantTraffic>,
}

impl TenantMix {
    /// A mix from explicit per-tenant streams.
    ///
    /// # Panics
    ///
    /// Panics if no stream is given, a stream is empty, or two streams
    /// share a tenant id.
    pub fn new(tenants: Vec<TenantTraffic>) -> Self {
        assert!(
            !tenants.is_empty(),
            "a tenant mix needs at least one tenant"
        );
        for t in &tenants {
            assert!(
                t.count > 0,
                "every tenant stream needs at least one request"
            );
        }
        let mut ids: Vec<TenantId> = tenants.iter().map(|t| t.tenant).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(
            ids.len(),
            tenants.len(),
            "tenant ids must be unique within a mix"
        );
        TenantMix { tenants }
    }

    /// The per-tenant streams of this mix.
    pub fn tenants(&self) -> &[TenantTraffic] {
        &self.tenants
    }

    /// The noisy-neighbor scenario: `well_behaved` tenants each send
    /// `count_each` interactive requests at a steady `qps_each`, while one
    /// extra tenant (the highest id) sends `2 * count_each` requests with
    /// 4x-heavier prompts in flash-crowd bursts at `burst_qps`. Under FCFS
    /// the bursts monopolize the chunked-prefill slots; fair queueing is
    /// supposed to contain the damage to the noisy tenant itself.
    pub fn noisy_neighbor(
        well_behaved: usize,
        qps_each: f64,
        burst_qps: f64,
        count_each: usize,
    ) -> Self {
        assert!(well_behaved > 0, "need at least one well-behaved tenant");
        let mut tenants: Vec<TenantTraffic> = (0..well_behaved)
            .map(|i| TenantTraffic {
                tenant: TenantId(i as u32),
                workload: fair_bench_workload(1.0),
                schedule: RateSchedule::constant(qps_each),
                count: count_each,
                priority: Priority::Normal,
                slo: Some(interactive_slo()),
            })
            .collect();
        tenants.push(TenantTraffic {
            tenant: TenantId(well_behaved as u32),
            workload: fair_bench_workload(4.0),
            schedule: RateSchedule::bursty(qps_each, burst_qps, 5.0, 15.0),
            count: 3 * count_each,
            priority: Priority::Normal,
            slo: Some(interactive_slo()),
        });
        TenantMix::new(tenants)
    }

    /// The prompt-bomb scenario: `well_behaved` steady interactive tenants
    /// plus one tenant (the highest id) that submits a trickle of enormous
    /// prompts — each one a multi-iteration prefill that, under FCFS,
    /// stalls every queue position behind it.
    pub fn prompt_bomb(well_behaved: usize, qps_each: f64, count_each: usize) -> Self {
        assert!(well_behaved > 0, "need at least one well-behaved tenant");
        let mut tenants: Vec<TenantTraffic> = (0..well_behaved)
            .map(|i| TenantTraffic {
                tenant: TenantId(i as u32),
                workload: fair_bench_workload(1.0),
                schedule: RateSchedule::constant(qps_each),
                count: count_each,
                priority: Priority::Normal,
                slo: Some(interactive_slo()),
            })
            .collect();
        tenants.push(TenantTraffic {
            tenant: TenantId(well_behaved as u32),
            workload: fair_bench_workload(12.0),
            schedule: RateSchedule::constant((qps_each / 4.0).max(0.05)),
            count: (count_each / 4).max(1),
            priority: Priority::Normal,
            slo: None,
        });
        TenantMix::new(tenants)
    }

    /// The priority-inversion scenario: tenant 0 is a high-priority
    /// interactive trickle, tenant 1 a low-priority bulk flood with
    /// 6x-heavier prompts and four times the volume. Without priority
    /// preemption the bulk tenant's queued prefills and resident decodes
    /// invert the priorities — the high-priority tenant waits behind work
    /// the operator declared less important.
    pub fn priority_inversion(qps_each: f64, count_each: usize) -> Self {
        TenantMix::new(vec![
            TenantTraffic {
                tenant: TenantId(0),
                workload: fair_bench_workload(1.0),
                schedule: RateSchedule::constant(qps_each),
                count: count_each,
                priority: Priority::High,
                slo: Some(interactive_slo()),
            },
            TenantTraffic {
                tenant: TenantId(1),
                workload: fair_bench_workload(6.0),
                schedule: RateSchedule::constant(4.0 * qps_each),
                count: 4 * count_each,
                priority: Priority::Low,
                slo: None,
            },
        ])
    }

    /// Generate the full mixed trace: every tenant's stream, interleaved by
    /// arrival time (ties broken by tenant id; within a tenant, stream
    /// order). Each stream draws from its own tenant-derived seed, so the
    /// result is request-for-request the union of the [`TenantMix::solo`]
    /// traces.
    pub fn generate(&self, seed: u64) -> Vec<RequestSpec> {
        let mut all: Vec<RequestSpec> = Vec::new();
        for t in &self.tenants {
            all.extend(stream(t, seed));
        }
        all.sort_by(|a, b| {
            a.arrival
                .total_cmp(&b.arrival)
                .then(a.tenant.cmp(&b.tenant))
        });
        all
    }

    /// One tenant's stream alone — the solo baseline an isolation claim
    /// compares against.
    ///
    /// # Panics
    ///
    /// Panics if the tenant is not part of this mix.
    pub fn solo(&self, tenant: TenantId, seed: u64) -> Vec<RequestSpec> {
        let t = self
            .tenants
            .iter()
            .find(|t| t.tenant == tenant)
            .unwrap_or_else(|| panic!("{tenant} is not part of this mix"));
        stream(t, seed)
    }
}

/// One tenant's stamped stream, from its own tenant-derived seed.
fn stream(t: &TenantTraffic, seed: u64) -> Vec<RequestSpec> {
    let stream_seed = seed ^ (u64::from(t.tenant.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    t.workload
        .generate_trace(t.count, &t.schedule, stream_seed)
        .into_iter()
        .map(|spec| {
            let spec = spec.with_tenant(t.tenant).with_priority(t.priority);
            match t.slo {
                Some(s) => spec.with_slo(s),
                None => spec,
            }
        })
        .collect()
}

/// The request shape the fairness scenarios use: small enough that a quick
/// sweep stays fast, with `scale` stretching the prompt side for the heavy
/// (noisy / bombing / bulk) tenants.
fn fair_bench_workload(scale: f64) -> Workload {
    Workload {
        name: "fair".to_string(),
        mean_context: 1_536.0 * scale,
        context_range: (256, (6_144.0 * scale) as usize),
        mean_decode: 96.0,
        min_decode: 16,
    }
}

/// The deadline the fairness scenarios grade against (loose enough for an
/// unloaded replica, tight enough that queueing behind a flash crowd blows
/// it).
fn interactive_slo() -> SloSpec {
    SloSpec::new("interactive", 2.5, 0.5)
}

/// One segment of a piecewise-constant arrival-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSegment {
    /// How long this segment lasts, in seconds.
    pub duration: f64,
    /// Arrival rate during the segment, in queries per second (may be zero).
    pub qps: f64,
}

/// A piecewise-constant arrival-rate schedule that repeats cyclically —
/// the rate function of a non-homogeneous Poisson arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSchedule {
    segments: Vec<RateSegment>,
    cycle: f64,
}

impl RateSchedule {
    /// A schedule from explicit segments.
    ///
    /// # Panics
    ///
    /// Panics if no segment is given, a duration is not positive and finite,
    /// a rate is negative, or every rate is zero (arrivals would never occur).
    pub fn new(segments: Vec<RateSegment>) -> Self {
        assert!(
            !segments.is_empty(),
            "a schedule needs at least one segment"
        );
        for s in &segments {
            assert!(
                s.duration > 0.0 && s.duration.is_finite(),
                "segment durations must be positive and finite"
            );
            assert!(s.qps >= 0.0, "segment rates must not be negative");
        }
        assert!(
            segments.iter().any(|s| s.qps > 0.0),
            "at least one segment must have a positive rate"
        );
        let cycle = segments.iter().map(|s| s.duration).sum();
        RateSchedule { segments, cycle }
    }

    /// A constant-rate schedule: [`Workload::generate_trace`] with this
    /// schedule reproduces [`Workload::generate`] exactly.
    pub fn constant(qps: f64) -> Self {
        assert!(qps > 0.0, "queries-per-second must be positive");
        RateSchedule::new(vec![RateSegment { duration: 1.0, qps }])
    }

    /// A bursty schedule: `calm_secs` at `base_qps`, then `burst_secs` at
    /// `burst_qps`, repeating. The shape of flash-crowd traffic against a
    /// fleet.
    pub fn bursty(base_qps: f64, burst_qps: f64, calm_secs: f64, burst_secs: f64) -> Self {
        RateSchedule::new(vec![
            RateSegment {
                duration: calm_secs,
                qps: base_qps,
            },
            RateSegment {
                duration: burst_secs,
                qps: burst_qps,
            },
        ])
    }

    /// A diurnal schedule: a sinusoid between `trough_qps` and `peak_qps`
    /// over `period_secs`, discretized into `steps` piecewise-constant
    /// segments.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2` (the sinusoid would degenerate to a constant).
    pub fn diurnal(trough_qps: f64, peak_qps: f64, period_secs: f64, steps: usize) -> Self {
        assert!(steps >= 2, "a diurnal schedule needs at least two steps");
        let segments = (0..steps)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * (i as f64 + 0.5) / steps as f64;
                RateSegment {
                    duration: period_secs / steps as f64,
                    qps: trough_qps + (peak_qps - trough_qps) * 0.5 * (1.0 - phase.cos()),
                }
            })
            .collect();
        RateSchedule::new(segments)
    }

    /// Duration of one full cycle in seconds.
    pub fn cycle_secs(&self) -> f64 {
        self.cycle
    }

    /// Arrival rate at time `t` (cyclic).
    pub fn rate_at(&self, t: f64) -> f64 {
        self.rate_and_boundary(t).0
    }

    /// The rate at `t` and the time remaining until the next segment
    /// boundary.
    fn rate_and_boundary(&self, t: f64) -> (f64, f64) {
        let mut pos = t % self.cycle;
        if pos < 0.0 {
            pos += self.cycle;
        }
        for s in &self.segments {
            if pos < s.duration {
                return (s.qps, s.duration - pos);
            }
            pos -= s.duration;
        }
        // Floating-point edge: `pos` landed exactly on the cycle boundary.
        let first = &self.segments[0];
        (first.qps, first.duration)
    }
}

/// Offline workload used by Figure 12: `count` identical long-context
/// requests (16K prompt tokens, model-specific output length), all arriving
/// at time zero.
pub fn offline_long_context(
    count: usize,
    prompt_tokens: usize,
    output_tokens: usize,
) -> Vec<RequestSpec> {
    (0..count)
        .map(|_| RequestSpec::new(0.0, prompt_tokens, output_tokens))
        .collect()
}

/// The Figure 15 workload: `count` requests of ~16.5K total tokens each with
/// a fixed prefill-to-decode token ratio.
pub fn pd_ratio_workload(count: usize, total_tokens: usize, pd_ratio: f64) -> Vec<RequestSpec> {
    assert!(pd_ratio > 0.0, "P:D ratio must be positive");
    let decode = ((total_tokens as f64) / (1.0 + pd_ratio)).round().max(1.0) as usize;
    let prompt = total_tokens.saturating_sub(decode).max(1);
    (0..count)
        .map(|_| RequestSpec::new(0.0, prompt, decode))
        .collect()
}

/// Sample a standard normal variate using the Box-Muller transform.
fn standard_normal(rng: &mut SplitMix64) -> f64 {
    let u1: f64 = rng.next_f64().max(1e-12);
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_workloads_match_published_statistics() {
        for (w, mean_ctx, mean_dec) in [
            (Workload::internal(), 10_500.0, 331.0),
            (Workload::arxiv(), 9_500.0, 470.0),
        ] {
            let reqs = w.generate(2000, 1.0, 42);
            let avg_ctx: f64 =
                reqs.iter().map(|r| r.total_tokens() as f64).sum::<f64>() / reqs.len() as f64;
            let avg_dec: f64 =
                reqs.iter().map(|r| r.output_tokens as f64).sum::<f64>() / reqs.len() as f64;
            assert!(
                (avg_ctx - mean_ctx).abs() / mean_ctx < 0.25,
                "{}: mean context {avg_ctx} vs target {mean_ctx}",
                w.name
            );
            assert!(
                (avg_dec - mean_dec).abs() / mean_dec < 0.35,
                "{}: mean decode {avg_dec} vs target {mean_dec}",
                w.name
            );
        }
    }

    #[test]
    fn arxiv_has_more_decode_tokens_than_internal() {
        let internal = Workload::internal().generate(1000, 1.0, 7);
        let arxiv = Workload::arxiv().generate(1000, 1.0, 7);
        let mean = |rs: &[RequestSpec]| {
            rs.iter().map(|r| r.output_tokens as f64).sum::<f64>() / rs.len() as f64
        };
        assert!(mean(&arxiv) > 1.2 * mean(&internal));
    }

    #[test]
    fn poisson_arrivals_have_the_right_rate() {
        let reqs = Workload::internal().generate(4000, 2.0, 3);
        let duration = reqs.last().unwrap().arrival;
        let rate = reqs.len() as f64 / duration;
        assert!((rate - 2.0).abs() < 0.2, "observed rate {rate}");
        // Arrivals are sorted by construction.
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Workload::internal().generate(50, 1.0, 9);
        let b = Workload::internal().generate(50, 1.0, 9);
        let c = Workload::internal().generate(50, 1.0, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn offline_workload_is_uniform() {
        let reqs = offline_long_context(10, 16 * 1024, 1024);
        assert_eq!(reqs.len(), 10);
        assert!(reqs.iter().all(|r| r.arrival == 0.0));
        assert!(reqs.iter().all(|r| r.prompt_tokens == 16 * 1024));
    }

    #[test]
    fn pd_ratio_workload_hits_the_ratio() {
        for ratio in [8.0, 16.0, 24.0] {
            let reqs = pd_ratio_workload(5, 16_500, ratio);
            let r = &reqs[0];
            assert!(
                (r.pd_ratio() - ratio).abs() / ratio < 0.05,
                "requested {ratio}, got {}",
                r.pd_ratio()
            );
            assert!((r.total_tokens() as i64 - 16_500).abs() <= 1);
        }
    }

    #[test]
    fn constant_schedule_reproduces_the_homogeneous_generator() {
        let w = Workload::internal();
        let plain = w.generate(200, 1.5, 21);
        let traced = w.generate_trace(200, &RateSchedule::constant(1.5), 21);
        assert_eq!(plain, traced);
    }

    #[test]
    fn bursty_schedule_concentrates_arrivals_in_bursts() {
        let schedule = RateSchedule::bursty(0.2, 8.0, 50.0, 10.0);
        let reqs = Workload::internal().generate_trace(600, &schedule, 4);
        // Arrivals are nondecreasing.
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Most arrivals land inside the 10-second burst windows even though
        // they cover only 1/6 of each cycle.
        let in_burst = reqs.iter().filter(|r| (r.arrival % 60.0) >= 50.0).count() as f64;
        let frac = in_burst / reqs.len() as f64;
        assert!(
            frac > 0.75,
            "expected most arrivals inside bursts, got {frac:.2}"
        );
        // The empirical rate inside bursts is far above the base rate.
        assert!(schedule.rate_at(55.0) > schedule.rate_at(5.0) * 10.0);
        assert_eq!(schedule.cycle_secs(), 60.0);
    }

    #[test]
    fn zero_rate_segments_produce_no_arrivals() {
        let schedule = RateSchedule::new(vec![
            RateSegment {
                duration: 30.0,
                qps: 0.0,
            },
            RateSegment {
                duration: 30.0,
                qps: 2.0,
            },
        ]);
        let reqs = Workload::internal().generate_trace(300, &schedule, 9);
        assert!(reqs.iter().all(|r| (r.arrival % 60.0) >= 30.0));
    }

    #[test]
    fn diurnal_schedule_peaks_mid_cycle() {
        let schedule = RateSchedule::diurnal(0.5, 4.0, 3600.0, 24);
        // Trough at the cycle edges, peak half-way through.
        assert!(schedule.rate_at(10.0) < 1.0);
        assert!(schedule.rate_at(1800.0) > 3.5);
        let reqs = Workload::arxiv().generate_trace(500, &schedule, 13);
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Deterministic per seed.
        assert_eq!(reqs, Workload::arxiv().generate_trace(500, &schedule, 13));
        assert_ne!(reqs, Workload::arxiv().generate_trace(500, &schedule, 14));
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn all_zero_schedule_is_rejected() {
        let _ = RateSchedule::new(vec![RateSegment {
            duration: 1.0,
            qps: 0.0,
        }]);
    }

    #[test]
    fn shared_prefix_workload_marks_groups_and_followups() {
        let w = SharedPrefixWorkload::new(Workload::internal(), 3, 2048, 0.7, 0.4);
        let reqs = w.generate(400, 1.0, 11);
        assert_eq!(reqs.len(), 400);
        let shared: Vec<_> = reqs
            .iter()
            .filter_map(|r| match r.content {
                PromptContent::Tokens {
                    prefix_tag,
                    prefix_tokens,
                    lineage_tag,
                } if prefix_tokens > 0 => Some((prefix_tag, lineage_tag)),
                _ => None,
            })
            .collect();
        let frac = shared.len() as f64 / reqs.len() as f64;
        assert!(
            (frac - 0.7).abs() < 0.1,
            "share ratio {frac} should be near 0.7"
        );
        // At most three distinct system-prompt tags.
        let mut tags: Vec<u64> = shared.iter().map(|&(t, _)| t).collect();
        tags.sort_unstable();
        tags.dedup();
        assert!(tags.len() <= 3 && !tags.is_empty());
        // Follow-up turns exist: some lineage appears more than once.
        let mut lineages: Vec<u64> = shared.iter().map(|&(_, l)| l).collect();
        lineages.sort_unstable();
        let repeats = lineages.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 0, "expected multi-turn re-submissions");
        // Every shared prompt is long enough to contain its system prompt.
        assert!(reqs
            .iter()
            .filter(
                |r| matches!(r.content, PromptContent::Tokens { prefix_tokens: p, .. } if p > 0)
            )
            .all(|r| r.prompt_tokens > 2048));
        // Deterministic per seed.
        assert_eq!(reqs, w.generate(400, 1.0, 11));
        assert_ne!(reqs, w.generate(400, 1.0, 12));
    }

    #[test]
    fn followup_prompts_embed_their_history() {
        let w = SharedPrefixWorkload::new(Workload::internal(), 1, 1024, 1.0, 1.0);
        let reqs = w.generate(20, 1.0, 3);
        // With followup_ratio 1, every request after the first extends the
        // single conversation (until the length cap): prompts grow.
        let mut by_lineage: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for r in &reqs {
            if let PromptContent::Tokens { lineage_tag, .. } = r.content {
                by_lineage
                    .entry(lineage_tag)
                    .or_default()
                    .push(r.prompt_tokens);
            }
        }
        let longest = by_lineage.values().map(|v| v.len()).max().unwrap();
        assert!(longest >= 3, "expected a conversation with several turns");
        let chain = by_lineage.values().find(|v| v.len() == longest).unwrap();
        assert!(
            chain.windows(2).all(|w| w[1] > w[0]),
            "follow-up prompts must strictly grow: {chain:?}"
        );
        assert!(chain.iter().all(|&p| p <= w.max_prompt_tokens));
    }

    #[test]
    fn zero_share_ratio_reproduces_base_sizes_with_unique_streams() {
        let base = Workload::internal();
        let w = SharedPrefixWorkload::new(base.clone(), 4, 2048, 0.0, 0.5);
        let plain = base.generate(100, 1.2, 9);
        let traced = w.generate(100, 1.2, 9);
        for (a, b) in plain.iter().zip(&traced) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.prompt_tokens, b.prompt_tokens);
            assert_eq!(a.output_tokens, b.output_tokens);
            assert!(matches!(
                b.content,
                PromptContent::Tokens {
                    prefix_tokens: 0,
                    ..
                }
            ));
        }
        // All lineages distinct: nothing to share.
        let mut lineages: Vec<u64> = traced
            .iter()
            .filter_map(|r| match r.content {
                PromptContent::Tokens { lineage_tag, .. } => Some(lineage_tag),
                _ => None,
            })
            .collect();
        let n = lineages.len();
        lineages.sort_unstable();
        lineages.dedup();
        assert_eq!(lineages.len(), n);
    }

    #[test]
    fn slo_mix_stamps_classes_without_touching_sizes() {
        let base = Workload::internal().generate(400, 1.0, 3);
        let mix = SloMix::interactive_batch();
        let tagged = mix.apply(base.clone(), 3);
        assert_eq!(tagged.len(), base.len());
        for (a, b) in base.iter().zip(&tagged) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.prompt_tokens, b.prompt_tokens);
            assert_eq!(a.output_tokens, b.output_tokens);
            assert_eq!(a.content, b.content);
        }
        // The realized class shares match the 70/30 weights.
        let interactive = tagged
            .iter()
            .filter(|r| r.slo.is_some_and(|s| s.class == "interactive"))
            .count();
        let batch = tagged
            .iter()
            .filter(|r| r.slo.is_some_and(|s| s.class == "batch"))
            .count();
        assert_eq!(interactive + batch, tagged.len(), "every request tagged");
        let frac = interactive as f64 / tagged.len() as f64;
        assert!((frac - 0.7).abs() < 0.08, "interactive share {frac}");
        // Deterministic per seed.
        assert_eq!(tagged, mix.apply(base.clone(), 3));
        assert_ne!(tagged, mix.apply(base, 4));
    }

    #[test]
    fn slo_mix_supports_slo_free_shares() {
        use crate::request::SloSpec;
        let mix = SloMix::new(vec![
            (1.0, Some(SloSpec::new("strict", 1.0, 0.1))),
            (1.0, None),
        ]);
        let tagged = mix.apply(Workload::arxiv().generate(300, 2.0, 8), 8);
        let with = tagged.iter().filter(|r| r.slo.is_some()).count();
        assert!(with > 100 && with < 200, "roughly half tagged: {with}");
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_slo_mix_rejected() {
        let _ = SloMix::new(Vec::new());
    }

    /// The isolation-baseline property `fig20_fairness` builds on: a
    /// tenant's solo trace is request-for-request identical to its share of
    /// the mixed trace — only the interleaving with other tenants differs.
    #[test]
    fn tenant_mix_solo_matches_the_tenants_share_of_the_mixed_trace() {
        let mix = TenantMix::noisy_neighbor(3, 0.5, 8.0, 40);
        let full = mix.generate(11);
        let total: usize = mix.tenants().iter().map(|t| t.count).sum();
        assert_eq!(full.len(), total);
        assert!(
            full.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "mixed trace must be sorted by arrival"
        );
        for t in mix.tenants() {
            let solo = mix.solo(t.tenant, 11);
            assert_eq!(solo.len(), t.count);
            let share: Vec<&RequestSpec> = full.iter().filter(|r| r.tenant == t.tenant).collect();
            assert_eq!(share.len(), solo.len());
            for (a, b) in solo.iter().zip(share) {
                assert_eq!(a, b);
            }
        }
        // Deterministic per seed, distinct across seeds.
        assert_eq!(full, mix.generate(11));
        assert_ne!(full, mix.generate(12));
    }

    #[test]
    fn tenant_mix_scenarios_stamp_tenancy_priorities_and_slos() {
        let noisy = TenantMix::noisy_neighbor(2, 0.5, 6.0, 30).generate(5);
        assert!(noisy.iter().all(|r| r.priority == Priority::Normal));
        assert!(noisy.iter().any(|r| r.tenant == TenantId(2)));
        let noisy_share = noisy.iter().filter(|r| r.tenant == TenantId(2)).count();
        assert_eq!(noisy_share, 90, "the noisy tenant sends 3x volume");

        let bomb = TenantMix::prompt_bomb(2, 0.5, 40);
        let bombs = bomb.solo(TenantId(2), 5);
        let polite = bomb.solo(TenantId(0), 5);
        let mean = |v: &[RequestSpec]| {
            v.iter().map(|r| r.prompt_tokens).sum::<usize>() as f64 / v.len() as f64
        };
        assert!(
            mean(&bombs) > 4.0 * mean(&polite),
            "bomb prompts ({}) must dwarf polite prompts ({})",
            mean(&bombs),
            mean(&polite)
        );

        let inverted = TenantMix::priority_inversion(0.4, 25).generate(5);
        assert!(inverted
            .iter()
            .all(|r| (r.tenant == TenantId(0)) == (r.priority == Priority::High)));
        assert!(inverted
            .iter()
            .filter(|r| r.tenant == TenantId(1))
            .all(|r| r.priority == Priority::Low && r.slo.is_none()));
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn tenant_mix_rejects_duplicate_tenants() {
        let t = TenantTraffic {
            tenant: TenantId(1),
            workload: Workload::internal(),
            schedule: RateSchedule::constant(1.0),
            count: 5,
            priority: Priority::Normal,
            slo: None,
        };
        let _ = TenantMix::new(vec![t.clone(), t]);
    }

    #[test]
    fn context_lengths_stay_in_range() {
        let reqs = Workload::internal().generate(500, 1.0, 11);
        assert!(reqs
            .iter()
            .all(|r| r.total_tokens() >= 4 * 1024 && r.total_tokens() <= 32 * 1024 + 1));
    }
}
