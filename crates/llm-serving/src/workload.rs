//! Workload generators for the paper's offline and online experiments.
//!
//! The paper's two online traces (an internal enterprise workload and one
//! derived from arXiv-Summarization) are not available, so we generate
//! synthetic traces matched to their published statistics: mean context
//! length (10.5K / 9.5K tokens), prefill-to-decode token ratio ranges
//! (0–40 / 0–50) and mean decode length (331 / 470 tokens), with Poisson
//! arrivals at a configurable queries-per-second rate.

use crate::request::RequestSpec;
use crate::rng::SplitMix64;

/// Named workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Human-readable name used in reports.
    pub name: String,
    /// Mean total context length (prompt + output tokens).
    pub mean_context: f64,
    /// Minimum / maximum total context length.
    pub context_range: (usize, usize),
    /// Mean number of decode (output) tokens.
    pub mean_decode: f64,
    /// Minimum decode tokens.
    pub min_decode: usize,
}

impl Workload {
    /// The internal enterprise workload of §5: mean context 10.5K tokens,
    /// mean 331 decode tokens, P:D ratios up to ~40.
    pub fn internal() -> Self {
        Workload {
            name: "internal".to_string(),
            mean_context: 10_500.0,
            context_range: (4 * 1024, 32 * 1024),
            mean_decode: 331.0,
            min_decode: 32,
        }
    }

    /// The arXiv-Summarization-based workload of §5: mean context 9.5K
    /// tokens, mean 470 decode tokens (42 % more decodes than the internal
    /// workload), P:D ratios up to ~50.
    pub fn arxiv() -> Self {
        Workload {
            name: "arxiv".to_string(),
            mean_context: 9_500.0,
            context_range: (4 * 1024, 32 * 1024),
            mean_decode: 470.0,
            min_decode: 48,
        }
    }

    /// Generate `count` requests with Poisson arrivals at `qps` queries per
    /// second, deterministically from `seed`.
    pub fn generate(&self, count: usize, qps: f64, seed: u64) -> Vec<RequestSpec> {
        assert!(qps > 0.0, "queries-per-second must be positive");
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut arrival = 0.0_f64;
        let mut requests = Vec::with_capacity(count);
        for _ in 0..count {
            // Exponential inter-arrival times give a Poisson process.
            let u: f64 = rng.next_f64().max(1e-12);
            arrival += -u.ln() / qps;
            requests.push(self.sample_request(arrival, &mut rng));
        }
        requests
    }

    /// Generate `count` requests that all arrive at time zero (offline
    /// serving).
    pub fn generate_offline(&self, count: usize, seed: u64) -> Vec<RequestSpec> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..count)
            .map(|_| self.sample_request(0.0, &mut rng))
            .collect()
    }

    /// Generate `count` requests whose arrivals follow a **time-varying**
    /// Poisson process with the piecewise-constant rate of `schedule`
    /// (repeating cyclically), deterministically from `seed`. With a
    /// single-segment schedule this reproduces [`Workload::generate`]
    /// exactly.
    ///
    /// This is the trace generator for the cluster experiments: bursty and
    /// diurnal load is exactly the regime where routing policy and
    /// prefill-decode overlap interact.
    pub fn generate_trace(
        &self,
        count: usize,
        schedule: &RateSchedule,
        seed: u64,
    ) -> Vec<RequestSpec> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut t = 0.0_f64;
        let mut requests = Vec::with_capacity(count);
        for _ in 0..count {
            // Draw a unit-rate exponential "area" and integrate the rate
            // function until it is consumed — the standard exact method for
            // piecewise-constant non-homogeneous Poisson processes.
            let u: f64 = rng.next_f64().max(1e-12);
            let mut area = -u.ln();
            loop {
                let (rate, to_boundary) = schedule.rate_and_boundary(t);
                if rate <= 0.0 {
                    t += to_boundary;
                    continue;
                }
                let segment_area = rate * to_boundary;
                if area <= segment_area {
                    t += area / rate;
                    break;
                }
                area -= segment_area;
                t += to_boundary;
            }
            requests.push(self.sample_request(t, &mut rng));
        }
        requests
    }

    fn sample_request(&self, arrival: f64, rng: &mut SplitMix64) -> RequestSpec {
        // Context length: log-normal-ish around the mean, clamped to the
        // published range.
        let (lo, hi) = self.context_range;
        let spread = 0.45;
        let z: f64 = standard_normal(rng);
        let context = (self.mean_context * (spread * z).exp())
            .clamp(lo as f64, hi as f64)
            .round() as usize;
        // Decode length: exponential around the mean, at least min_decode,
        // and at most the context itself (P:D >= ~1).
        let u: f64 = rng.next_f64().max(1e-12);
        let decode = ((-u.ln() * self.mean_decode) as usize)
            .max(self.min_decode)
            .min(context / 2);
        let prompt = context.saturating_sub(decode).max(1);
        RequestSpec::new(arrival, prompt, decode)
    }
}

/// One segment of a piecewise-constant arrival-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSegment {
    /// How long this segment lasts, in seconds.
    pub duration: f64,
    /// Arrival rate during the segment, in queries per second (may be zero).
    pub qps: f64,
}

/// A piecewise-constant arrival-rate schedule that repeats cyclically —
/// the rate function of a non-homogeneous Poisson arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSchedule {
    segments: Vec<RateSegment>,
    cycle: f64,
}

impl RateSchedule {
    /// A schedule from explicit segments.
    ///
    /// # Panics
    ///
    /// Panics if no segment is given, a duration is not positive and finite,
    /// a rate is negative, or every rate is zero (arrivals would never occur).
    pub fn new(segments: Vec<RateSegment>) -> Self {
        assert!(
            !segments.is_empty(),
            "a schedule needs at least one segment"
        );
        for s in &segments {
            assert!(
                s.duration > 0.0 && s.duration.is_finite(),
                "segment durations must be positive and finite"
            );
            assert!(s.qps >= 0.0, "segment rates must not be negative");
        }
        assert!(
            segments.iter().any(|s| s.qps > 0.0),
            "at least one segment must have a positive rate"
        );
        let cycle = segments.iter().map(|s| s.duration).sum();
        RateSchedule { segments, cycle }
    }

    /// A constant-rate schedule: [`Workload::generate_trace`] with this
    /// schedule reproduces [`Workload::generate`] exactly.
    pub fn constant(qps: f64) -> Self {
        assert!(qps > 0.0, "queries-per-second must be positive");
        RateSchedule::new(vec![RateSegment { duration: 1.0, qps }])
    }

    /// A bursty schedule: `calm_secs` at `base_qps`, then `burst_secs` at
    /// `burst_qps`, repeating. The shape of flash-crowd traffic against a
    /// fleet.
    pub fn bursty(base_qps: f64, burst_qps: f64, calm_secs: f64, burst_secs: f64) -> Self {
        RateSchedule::new(vec![
            RateSegment {
                duration: calm_secs,
                qps: base_qps,
            },
            RateSegment {
                duration: burst_secs,
                qps: burst_qps,
            },
        ])
    }

    /// A diurnal schedule: a sinusoid between `trough_qps` and `peak_qps`
    /// over `period_secs`, discretized into `steps` piecewise-constant
    /// segments.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2` (the sinusoid would degenerate to a constant).
    pub fn diurnal(trough_qps: f64, peak_qps: f64, period_secs: f64, steps: usize) -> Self {
        assert!(steps >= 2, "a diurnal schedule needs at least two steps");
        let segments = (0..steps)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * (i as f64 + 0.5) / steps as f64;
                RateSegment {
                    duration: period_secs / steps as f64,
                    qps: trough_qps + (peak_qps - trough_qps) * 0.5 * (1.0 - phase.cos()),
                }
            })
            .collect();
        RateSchedule::new(segments)
    }

    /// Duration of one full cycle in seconds.
    pub fn cycle_secs(&self) -> f64 {
        self.cycle
    }

    /// Arrival rate at time `t` (cyclic).
    pub fn rate_at(&self, t: f64) -> f64 {
        self.rate_and_boundary(t).0
    }

    /// The rate at `t` and the time remaining until the next segment
    /// boundary.
    fn rate_and_boundary(&self, t: f64) -> (f64, f64) {
        let mut pos = t % self.cycle;
        if pos < 0.0 {
            pos += self.cycle;
        }
        for s in &self.segments {
            if pos < s.duration {
                return (s.qps, s.duration - pos);
            }
            pos -= s.duration;
        }
        // Floating-point edge: `pos` landed exactly on the cycle boundary.
        let first = &self.segments[0];
        (first.qps, first.duration)
    }
}

/// Offline workload used by Figure 12: `count` identical long-context
/// requests (16K prompt tokens, model-specific output length), all arriving
/// at time zero.
pub fn offline_long_context(
    count: usize,
    prompt_tokens: usize,
    output_tokens: usize,
) -> Vec<RequestSpec> {
    (0..count)
        .map(|_| RequestSpec::new(0.0, prompt_tokens, output_tokens))
        .collect()
}

/// The Figure 15 workload: `count` requests of ~16.5K total tokens each with
/// a fixed prefill-to-decode token ratio.
pub fn pd_ratio_workload(count: usize, total_tokens: usize, pd_ratio: f64) -> Vec<RequestSpec> {
    assert!(pd_ratio > 0.0, "P:D ratio must be positive");
    let decode = ((total_tokens as f64) / (1.0 + pd_ratio)).round().max(1.0) as usize;
    let prompt = total_tokens.saturating_sub(decode).max(1);
    (0..count)
        .map(|_| RequestSpec::new(0.0, prompt, decode))
        .collect()
}

/// Sample a standard normal variate using the Box-Muller transform.
fn standard_normal(rng: &mut SplitMix64) -> f64 {
    let u1: f64 = rng.next_f64().max(1e-12);
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_workloads_match_published_statistics() {
        for (w, mean_ctx, mean_dec) in [
            (Workload::internal(), 10_500.0, 331.0),
            (Workload::arxiv(), 9_500.0, 470.0),
        ] {
            let reqs = w.generate(2000, 1.0, 42);
            let avg_ctx: f64 =
                reqs.iter().map(|r| r.total_tokens() as f64).sum::<f64>() / reqs.len() as f64;
            let avg_dec: f64 =
                reqs.iter().map(|r| r.output_tokens as f64).sum::<f64>() / reqs.len() as f64;
            assert!(
                (avg_ctx - mean_ctx).abs() / mean_ctx < 0.25,
                "{}: mean context {avg_ctx} vs target {mean_ctx}",
                w.name
            );
            assert!(
                (avg_dec - mean_dec).abs() / mean_dec < 0.35,
                "{}: mean decode {avg_dec} vs target {mean_dec}",
                w.name
            );
        }
    }

    #[test]
    fn arxiv_has_more_decode_tokens_than_internal() {
        let internal = Workload::internal().generate(1000, 1.0, 7);
        let arxiv = Workload::arxiv().generate(1000, 1.0, 7);
        let mean = |rs: &[RequestSpec]| {
            rs.iter().map(|r| r.output_tokens as f64).sum::<f64>() / rs.len() as f64
        };
        assert!(mean(&arxiv) > 1.2 * mean(&internal));
    }

    #[test]
    fn poisson_arrivals_have_the_right_rate() {
        let reqs = Workload::internal().generate(4000, 2.0, 3);
        let duration = reqs.last().unwrap().arrival;
        let rate = reqs.len() as f64 / duration;
        assert!((rate - 2.0).abs() < 0.2, "observed rate {rate}");
        // Arrivals are sorted by construction.
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Workload::internal().generate(50, 1.0, 9);
        let b = Workload::internal().generate(50, 1.0, 9);
        let c = Workload::internal().generate(50, 1.0, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn offline_workload_is_uniform() {
        let reqs = offline_long_context(10, 16 * 1024, 1024);
        assert_eq!(reqs.len(), 10);
        assert!(reqs.iter().all(|r| r.arrival == 0.0));
        assert!(reqs.iter().all(|r| r.prompt_tokens == 16 * 1024));
    }

    #[test]
    fn pd_ratio_workload_hits_the_ratio() {
        for ratio in [8.0, 16.0, 24.0] {
            let reqs = pd_ratio_workload(5, 16_500, ratio);
            let r = &reqs[0];
            assert!(
                (r.pd_ratio() - ratio).abs() / ratio < 0.05,
                "requested {ratio}, got {}",
                r.pd_ratio()
            );
            assert!((r.total_tokens() as i64 - 16_500).abs() <= 1);
        }
    }

    #[test]
    fn constant_schedule_reproduces_the_homogeneous_generator() {
        let w = Workload::internal();
        let plain = w.generate(200, 1.5, 21);
        let traced = w.generate_trace(200, &RateSchedule::constant(1.5), 21);
        assert_eq!(plain, traced);
    }

    #[test]
    fn bursty_schedule_concentrates_arrivals_in_bursts() {
        let schedule = RateSchedule::bursty(0.2, 8.0, 50.0, 10.0);
        let reqs = Workload::internal().generate_trace(600, &schedule, 4);
        // Arrivals are nondecreasing.
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Most arrivals land inside the 10-second burst windows even though
        // they cover only 1/6 of each cycle.
        let in_burst = reqs.iter().filter(|r| (r.arrival % 60.0) >= 50.0).count() as f64;
        let frac = in_burst / reqs.len() as f64;
        assert!(
            frac > 0.75,
            "expected most arrivals inside bursts, got {frac:.2}"
        );
        // The empirical rate inside bursts is far above the base rate.
        assert!(schedule.rate_at(55.0) > schedule.rate_at(5.0) * 10.0);
        assert_eq!(schedule.cycle_secs(), 60.0);
    }

    #[test]
    fn zero_rate_segments_produce_no_arrivals() {
        let schedule = RateSchedule::new(vec![
            RateSegment {
                duration: 30.0,
                qps: 0.0,
            },
            RateSegment {
                duration: 30.0,
                qps: 2.0,
            },
        ]);
        let reqs = Workload::internal().generate_trace(300, &schedule, 9);
        assert!(reqs.iter().all(|r| (r.arrival % 60.0) >= 30.0));
    }

    #[test]
    fn diurnal_schedule_peaks_mid_cycle() {
        let schedule = RateSchedule::diurnal(0.5, 4.0, 3600.0, 24);
        // Trough at the cycle edges, peak half-way through.
        assert!(schedule.rate_at(10.0) < 1.0);
        assert!(schedule.rate_at(1800.0) > 3.5);
        let reqs = Workload::arxiv().generate_trace(500, &schedule, 13);
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Deterministic per seed.
        assert_eq!(reqs, Workload::arxiv().generate_trace(500, &schedule, 13));
        assert_ne!(reqs, Workload::arxiv().generate_trace(500, &schedule, 14));
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn all_zero_schedule_is_rejected() {
        let _ = RateSchedule::new(vec![RateSegment {
            duration: 1.0,
            qps: 0.0,
        }]);
    }

    #[test]
    fn context_lengths_stay_in_range() {
        let reqs = Workload::internal().generate(500, 1.0, 11);
        assert!(reqs
            .iter()
            .all(|r| r.total_tokens() >= 4 * 1024 && r.total_tokens() <= 32 * 1024 + 1));
    }
}
