//! A minimal JSON value type with a writer and a parser — the one wire format
//! the serving reports, the bench trend files and the CI perf gate share.
//!
//! The build environment has no access to crates.io, so this stands in for
//! `serde_json`. It supports exactly what those consumers need: finite
//! numbers (non-finite serialize as `null`), strings, booleans, arrays and
//! insertion-ordered objects, plus dotted-path lookup for the perf gate.

use std::fmt;
use std::io;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

/// Error produced when [`JsonValue::parse`] rejects its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

impl JsonValue {
    /// Convenience constructor for object values.
    pub fn obj(entries: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for string values.
    pub fn str(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize with no whitespace at all — the one-line form JSONL event
    /// dumps use. Parses back to the same value as the pretty form.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_fmt_value(&mut out, None)
            .expect("writing to a String cannot fail");
        out
    }

    /// Stream the pretty serialization (byte-identical to
    /// [`JsonValue::to_string_pretty`], trailing newline included) straight
    /// into an [`io::Write`] sink, so multi-MB trace and bench files never
    /// build one giant in-memory `String`.
    pub fn write_pretty<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        use fmt::Write as _;
        let mut adapter = IoFmt {
            inner: w,
            err: None,
        };
        let done = self
            .write_fmt_value(&mut adapter, Some(0))
            .and_then(|()| adapter.write_char('\n'));
        match (done, adapter.err) {
            (_, Some(e)) => Err(e),
            (Err(_), None) => unreachable!("fmt failure without an io error"),
            (Ok(()), None) => Ok(()),
        }
    }

    /// Stream the compact serialization (byte-identical to
    /// [`JsonValue::to_string_compact`], no trailing newline) into an
    /// [`io::Write`] sink.
    pub fn write_compact<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        let mut adapter = IoFmt {
            inner: w,
            err: None,
        };
        match (self.write_fmt_value(&mut adapter, None), adapter.err) {
            (_, Some(e)) => Err(e),
            (Err(_), None) => unreachable!("fmt failure without an io error"),
            (Ok(()), None) => Ok(()),
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Member of an object by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Lookup through nested objects by a dotted path, e.g.
    /// `"engine.intervals_per_sec"`.
    pub fn get_path(&self, path: &str) -> Option<&JsonValue> {
        let mut v = self;
        for key in path.split('.') {
            v = v.get(key)?;
        }
        Some(v)
    }

    /// Every dotted field path reachable in this document, sorted and
    /// deduplicated. Array elements collapse under a `[]` segment, so the
    /// *shape* of a report is captured independent of how many entries an
    /// array happens to hold — e.g. a cluster report yields paths like
    /// `per_replica[].ttft.p99`. Leaves contribute their own path; an empty
    /// object or array contributes its container path.
    ///
    /// This is what the golden snapshot tests pin: a serialization refactor
    /// that drops or renames a metric changes the path set even when every
    /// value changes too.
    pub fn field_paths(&self) -> Vec<String> {
        fn walk(v: &JsonValue, prefix: &str, out: &mut Vec<String>) {
            match v {
                JsonValue::Obj(entries) if !entries.is_empty() => {
                    for (k, child) in entries {
                        let path = if prefix.is_empty() {
                            k.clone()
                        } else {
                            format!("{prefix}.{k}")
                        };
                        walk(child, &path, out);
                    }
                }
                JsonValue::Arr(items) if !items.is_empty() => {
                    let path = format!("{prefix}[]");
                    for item in items {
                        walk(item, &path, out);
                    }
                }
                _ => out.push(prefix.to_string()),
            }
        }
        let mut out = Vec::new();
        walk(self, "", &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        self.write_fmt_value(out, Some(indent))
            .expect("writing to a String cannot fail");
    }

    /// The one serializer both string and streaming paths share.
    /// `indent: Some(level)` is the pretty form (two-space indentation,
    /// `": "` after keys); `None` is the compact form (no whitespace).
    fn write_fmt_value<W: fmt::Write>(&self, out: &mut W, indent: Option<usize>) -> fmt::Result {
        match self {
            JsonValue::Null => out.write_str("null"),
            JsonValue::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    write!(out, "{x}")
                } else {
                    out.write_str("null")
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    return out.write_str("[]");
                }
                match indent {
                    Some(level) => {
                        out.write_str("[\n")?;
                        for (i, v) in items.iter().enumerate() {
                            write_indent(out, level + 1)?;
                            v.write_fmt_value(out, Some(level + 1))?;
                            if i + 1 < items.len() {
                                out.write_char(',')?;
                            }
                            out.write_char('\n')?;
                        }
                        write_indent(out, level)?;
                        out.write_char(']')
                    }
                    None => {
                        out.write_char('[')?;
                        for (i, v) in items.iter().enumerate() {
                            if i > 0 {
                                out.write_char(',')?;
                            }
                            v.write_fmt_value(out, None)?;
                        }
                        out.write_char(']')
                    }
                }
            }
            JsonValue::Obj(entries) => {
                if entries.is_empty() {
                    return out.write_str("{}");
                }
                match indent {
                    Some(level) => {
                        out.write_str("{\n")?;
                        for (i, (k, v)) in entries.iter().enumerate() {
                            write_indent(out, level + 1)?;
                            write_escaped(out, k)?;
                            out.write_str(": ")?;
                            v.write_fmt_value(out, Some(level + 1))?;
                            if i + 1 < entries.len() {
                                out.write_char(',')?;
                            }
                            out.write_char('\n')?;
                        }
                        write_indent(out, level)?;
                        out.write_char('}')
                    }
                    None => {
                        out.write_char('{')?;
                        for (i, (k, v)) in entries.iter().enumerate() {
                            if i > 0 {
                                out.write_char(',')?;
                            }
                            write_escaped(out, k)?;
                            out.write_char(':')?;
                            v.write_fmt_value(out, None)?;
                        }
                        out.write_char('}')
                    }
                }
            }
        }
    }

    /// Parse a JSON document. Accepts everything this writer emits and
    /// standard JSON generally, including `\uXXXX` surrogate pairs (decoded
    /// to the astral code point they encode; lone surrogates are a parse
    /// error, as in RFC 8259 §8.2).
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

/// Write `s` as a quoted, escaped JSON string — used for both string values
/// and object keys, so a key containing quotes or control characters still
/// produces a parseable document.
fn write_escaped<W: fmt::Write>(out: &mut W, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Two spaces per level — the only indentation the pretty form uses.
fn write_indent<W: fmt::Write>(out: &mut W, level: usize) -> fmt::Result {
    for _ in 0..level {
        out.write_str("  ")?;
    }
    Ok(())
}

/// Adapter from [`fmt::Write`] (the serializer core's bound) onto an
/// [`io::Write`] sink, parking the first io error so the caller can return
/// it instead of the unit [`fmt::Error`].
struct IoFmt<'a, W: io::Write> {
    inner: &'a mut W,
    err: Option<io::Error>,
}

impl<W: io::Write> fmt::Write for IoFmt<'_, W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.inner.write_all(s.as_bytes()).map_err(|e| {
            self.err = Some(e);
            fmt::Error
        })
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    /// Consume exactly four hex digits of a `\u` escape and return their
    /// value. The caller has already consumed the `\u` prefix.
    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = &self.bytes[self.pos..self.pos + 4];
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = match code {
                                // High surrogate: must be immediately followed
                                // by a `\uDC00..=\uDFFF` low surrogate; the
                                // pair decodes to one astral code point.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                                    {
                                        return Err(self.err("lone high surrogate in \\u escape"));
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err(
                                            "high surrogate not followed by a low surrogate",
                                        ));
                                    }
                                    let astral = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(astral)
                                        .expect("surrogate pairs always decode to a scalar")
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err("lone low surrogate in \\u escape"))
                                }
                                _ => char::from_u32(code)
                                    .expect("non-surrogate BMP code points are scalars"),
                            };
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_round_trips_through_parser() {
        let v = JsonValue::obj(vec![
            ("a", JsonValue::Num(1.5)),
            ("b", JsonValue::str("x\"y\nz")),
            (
                "c",
                JsonValue::Arr(vec![
                    JsonValue::Bool(true),
                    JsonValue::Null,
                    JsonValue::Num(-3.25e-2),
                ]),
            ),
            ("d", JsonValue::obj(vec![("nested", JsonValue::Num(42.0))])),
            ("empty_obj", JsonValue::Obj(Vec::new())),
            ("empty_arr", JsonValue::Arr(Vec::new())),
        ]);
        let text = v.to_string_pretty();
        let back = JsonValue::parse(&text).expect("round trip parses");
        assert_eq!(back, v);
    }

    #[test]
    fn object_keys_are_escaped_like_values() {
        let v = JsonValue::Obj(vec![("a\"b\nc".to_string(), JsonValue::Num(1.0))]);
        let text = v.to_string_pretty();
        let back = JsonValue::parse(&text).expect("escaped keys keep the document parseable");
        assert_eq!(back, v);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let v = JsonValue::obj(vec![("nan", JsonValue::Num(f64::NAN))]);
        let text = v.to_string_pretty();
        assert!(text.contains("\"nan\": null"));
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back.get("nan"), Some(&JsonValue::Null));
    }

    #[test]
    fn dotted_path_lookup() {
        let v = JsonValue::obj(vec![(
            "engine",
            JsonValue::obj(vec![("intervals_per_sec", JsonValue::Num(123.0))]),
        )]);
        assert_eq!(
            v.get_path("engine.intervals_per_sec")
                .and_then(JsonValue::as_f64),
            Some(123.0)
        );
        assert_eq!(v.get_path("engine.missing"), None);
        assert_eq!(v.get_path("missing.intervals_per_sec"), None);
    }

    #[test]
    fn field_paths_capture_document_shape() {
        let doc = JsonValue::obj(vec![
            ("b", JsonValue::Num(1.0)),
            (
                "a",
                JsonValue::obj(vec![("x", JsonValue::Num(2.0)), ("y", JsonValue::str("s"))]),
            ),
            (
                "cells",
                JsonValue::Arr(vec![
                    JsonValue::obj(vec![("v", JsonValue::Num(1.0))]),
                    JsonValue::obj(vec![
                        ("v", JsonValue::Num(2.0)),
                        ("extra", JsonValue::Bool(true)),
                    ]),
                ]),
            ),
            ("empty_obj", JsonValue::obj(vec![])),
            ("empty_arr", JsonValue::Arr(vec![])),
        ]);
        assert_eq!(
            doc.field_paths(),
            vec![
                "a.x",
                "a.y",
                "b",
                "cells[].extra",
                "cells[].v",
                "empty_arr",
                "empty_obj",
            ]
        );
        // Paths are value-independent: same shape, different numbers.
        let other = JsonValue::obj(vec![("b", JsonValue::Num(99.0))]);
        assert_eq!(other.field_paths(), vec!["b"]);
        // A bare leaf yields its (empty) root path.
        assert_eq!(JsonValue::Num(1.0).field_paths(), vec![""]);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} trailing",
            "\"unterminated",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn every_escape_sequence_round_trips() {
        // All escapes the parser knows, as values and as keys.
        let s = "quote:\" back:\\ slash:/ nl:\n tab:\t cr:\r bs:\u{0008} ff:\u{000c}";
        let v = JsonValue::Obj(vec![(s.to_string(), JsonValue::str(s))]);
        let text = v.to_string_pretty();
        assert_eq!(JsonValue::parse(&text).expect("escapes parse"), v);
        // Explicit escape spellings parse to the same characters.
        let spelled = "\"quote:\\\" back:\\\\ slash:\\/ nl:\\n tab:\\t cr:\\r bs:\\b ff:\\f\"";
        assert_eq!(
            JsonValue::parse(spelled).unwrap(),
            JsonValue::str("quote:\" back:\\ slash:/ nl:\n tab:\t cr:\r bs:\u{0008} ff:\u{000c}")
        );
        // \uXXXX escapes, including a control character the writer emits.
        assert_eq!(
            JsonValue::parse("\"\\u0041\\u00e9\\u0001\"").unwrap(),
            JsonValue::str("A\u{e9}\u{1}")
        );
        // Malformed escapes are rejected, not mangled.
        for bad in ["\"\\q\"", "\"\\u12\"", "\"\\uzzzz\"", "\"\\ud800\"", "\"\\"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn surrogate_pairs_decode_and_round_trip() {
        // A valid high/low pair decodes to the astral code point it encodes.
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::str("\u{1F600}")
        );
        // Pairs compose with surrounding text and other pairs.
        assert_eq!(
            JsonValue::parse("\"a\\ud835\\udd4c b\\ud83d\\ude80\"").unwrap(),
            JsonValue::str("a\u{1D54C} b\u{1F680}")
        );
        // The extremes of the surrogate-encodable range.
        assert_eq!(
            JsonValue::parse("\"\\ud800\\udc00\\udbff\\udfff\"").unwrap(),
            JsonValue::str("\u{10000}\u{10FFFF}")
        );
        // Escaped and literal spellings of the same string round-trip to the
        // same document: the writer emits astral characters as raw UTF-8.
        let v = JsonValue::obj(vec![("emoji", JsonValue::str("\u{1F600}\u{1F680}"))]);
        let text = v.to_string_pretty();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
        assert_eq!(
            JsonValue::parse("{\"emoji\":\"\\uD83D\\uDE00\\uD83D\\uDE80\"}").unwrap(),
            v
        );
        // Lone surrogates — high without low, low first, high followed by a
        // BMP escape or literal text, truncated pair — are parse errors.
        for bad in [
            "\"\\ud83d\"",
            "\"\\ude00\"",
            "\"\\ud83d\\u0041\"",
            "\"\\ud83dxx\"",
            "\"\\ud83d\\ud83d\\ude00\"",
            "\"\\ud83d\\u\"",
            "\"\\ud83d\\ude\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_strings_survive_the_round_trip() {
        for s in [
            "héllo wörld",
            "日本語テキスト",
            "emoji 🚀🔥",
            "mixed 𝕌𝕟𝕚¢ode",
        ] {
            let v = JsonValue::obj(vec![(s, JsonValue::str(s))]);
            let text = v.to_string_pretty();
            let back = JsonValue::parse(&text).expect("unicode parses");
            assert_eq!(back, v, "{s}");
        }
    }

    #[test]
    fn deep_nesting_round_trips() {
        // 200 levels of alternating arrays and single-key objects.
        let mut v = JsonValue::Num(1.0);
        for depth in 0..200 {
            v = if depth % 2 == 0 {
                JsonValue::Arr(vec![v])
            } else {
                JsonValue::obj(vec![("d", v)])
            };
        }
        let text = v.to_string_pretty();
        let back = JsonValue::parse(&text).expect("deep document parses");
        assert_eq!(back, v);
        // An unbalanced deep document is rejected.
        let unbalanced = "[".repeat(50);
        assert!(JsonValue::parse(&unbalanced).is_err());
    }

    /// Property test: random documents generated from the value model always
    /// serialize to text the parser maps back to the identical value.
    #[test]
    fn random_documents_round_trip() {
        fn gen(rng: &mut crate::rng::SplitMix64, depth: usize) -> JsonValue {
            match rng.next_usize(if depth == 0 { 4 } else { 6 }) {
                0 => JsonValue::Null,
                1 => JsonValue::Bool(rng.next_usize(2) == 0),
                2 => {
                    // Finite doubles over a wide dynamic range, incl. negatives.
                    let mag = (rng.next_f64() - 0.5) * 2.0;
                    let exp = rng.next_usize(13) as i32 - 6;
                    JsonValue::Num(mag * 10f64.powi(exp))
                }
                3 => {
                    let len = rng.next_usize(12);
                    let s: String = (0..len)
                        .map(|_| {
                            // Bias toward troublemakers: quotes, escapes,
                            // control chars, non-ASCII.
                            const POOL: &[char] =
                                &['a', 'β', '"', '\\', '\n', '\t', '\u{1}', '/', '🦀', ' '];
                            POOL[rng.next_usize(POOL.len())]
                        })
                        .collect();
                    JsonValue::Str(s)
                }
                4 => {
                    let len = rng.next_usize(4);
                    JsonValue::Arr((0..len).map(|_| gen(rng, depth - 1)).collect())
                }
                _ => {
                    let len = rng.next_usize(4);
                    JsonValue::Obj(
                        (0..len)
                            .map(|i| (format!("k{i}"), gen(rng, depth - 1)))
                            .collect(),
                    )
                }
            }
        }
        let mut rng = crate::rng::SplitMix64::seed_from_u64(0x150F_F1CE);
        for case in 0..500 {
            let v = gen(&mut rng, 4);
            let text = v.to_string_pretty();
            let back =
                JsonValue::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            assert_eq!(back, v, "case {case} round trip\n{text}");
        }
    }

    /// The streaming `io::Write` path must be byte-identical to the string
    /// writer — BENCH files and Chrome traces written either way diff clean.
    #[test]
    fn streaming_writer_is_byte_identical_to_string_writer() {
        let docs = [
            JsonValue::Null,
            JsonValue::Num(f64::NAN),
            JsonValue::obj(vec![]),
            JsonValue::Arr(vec![]),
            JsonValue::obj(vec![
                ("a", JsonValue::Num(1.5)),
                ("esc\"key\n", JsonValue::str("x\"y\nz\u{1}")),
                (
                    "arr",
                    JsonValue::Arr(vec![
                        JsonValue::Bool(false),
                        JsonValue::obj(vec![("deep", JsonValue::Num(-3.25e-2))]),
                        JsonValue::Arr(vec![]),
                    ]),
                ),
                ("uni", JsonValue::str("日本語 🚀")),
            ]),
        ];
        for v in &docs {
            let mut streamed = Vec::new();
            v.write_pretty(&mut streamed).expect("Vec sink cannot fail");
            assert_eq!(
                String::from_utf8(streamed).unwrap(),
                v.to_string_pretty(),
                "pretty bytes diverge for {v:?}"
            );
            let mut compact = Vec::new();
            v.write_compact(&mut compact).expect("Vec sink cannot fail");
            assert_eq!(
                String::from_utf8(compact).unwrap(),
                v.to_string_compact(),
                "compact bytes diverge for {v:?}"
            );
        }
    }

    #[test]
    fn compact_form_round_trips_and_has_no_whitespace() {
        let v = JsonValue::obj(vec![
            ("a", JsonValue::Num(1.5)),
            (
                "b",
                JsonValue::Arr(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
            (
                "c",
                JsonValue::obj(vec![("n", JsonValue::str("s p a c e"))]),
            ),
        ]);
        let text = v.to_string_compact();
        assert_eq!(text, r#"{"a":1.5,"b":[null,true],"c":{"n":"s p a c e"}}"#);
        assert_eq!(JsonValue::parse(&text).expect("compact parses"), v);
    }

    #[test]
    fn streaming_writer_propagates_io_errors() {
        struct FailAfter(usize);
        impl std::io::Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 < buf.len() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "sink full",
                    ));
                }
                self.0 -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let v = JsonValue::obj(vec![("key", JsonValue::str("a long enough value"))]);
        let err = v
            .write_pretty(&mut FailAfter(4))
            .expect_err("a full sink surfaces the io error");
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
    }

    #[test]
    fn parser_handles_standard_json() {
        let v = JsonValue::parse("  {\"a\": [1, 2.5, -3e2], \"b\": \"\\u0041\"} ").unwrap();
        assert_eq!(
            v.get_path("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.5),
                JsonValue::Num(-300.0)
            ]))
        );
        assert_eq!(v.get("b"), Some(&JsonValue::Str("A".to_string())));
    }
}
