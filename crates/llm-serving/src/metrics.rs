//! Serving metrics: TTFT, TBT, request latency, stalls and throughput.

use crate::json::JsonValue;
use crate::request::{Request, TenantId};
use crate::sketch::QuantileSketch;

/// Summary statistics over a set of latency samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl SummaryStats {
    /// Compute summary statistics of `samples` (order not required).
    ///
    /// Percentiles are computed with O(n) selection rather than a full sort —
    /// serving sweeps summarize hundreds of thousands of token-gap samples
    /// per run, and this pass is on the bench hot path.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN (a NaN would otherwise propagate silently
    /// into reports and trend files; NaN sums to a NaN mean, so one O(1)
    /// check at the aggregate covers every sample).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return SummaryStats::default();
        }
        let mut scratch: Vec<f64> = samples.to_vec();
        let mut sum = 0.0;
        let mut max = f64::NEG_INFINITY;
        for &v in &scratch {
            sum += v;
            max = max.max(v);
        }
        let mean = sum / scratch.len() as f64;
        assert!(!mean.is_nan(), "latency samples must not be NaN");
        let (p50, p99) = percentile_pair(&mut scratch, 0.50, 0.99);
        SummaryStats {
            count: scratch.len(),
            mean,
            p50,
            p99,
            max,
        }
    }

    /// Serialize as a JSON object (`count`, `mean`, `p50`, `p99`, `max`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("count", JsonValue::Num(self.count as f64)),
            ("mean", JsonValue::Num(self.mean)),
            ("p50", JsonValue::Num(self.p50)),
            ("p99", JsonValue::Num(self.p99)),
            ("max", JsonValue::Num(self.max)),
        ])
    }
}

/// Two percentiles of an unsorted slice (`q_lo <= q_hi`) using nearest-rank
/// interpolation, in one shared selection pass: `select_nth_unstable`
/// partitions the buffer once for the lower quantile, then the higher
/// quantile is selected inside the (much smaller) right partition instead of
/// re-partitioning the whole buffer. Produces bit-identical results to two
/// independent selections — both read the same order statistics — which the
/// golden report tests rely on. O(n), reorders `samples`.
fn percentile_pair(samples: &mut [f64], q_lo: f64, q_hi: f64) -> (f64, f64) {
    debug_assert!(!samples.is_empty());
    debug_assert!(q_lo <= q_hi);
    let span = (samples.len() - 1) as f64;
    let pos_a = q_lo.clamp(0.0, 1.0) * span;
    let (lo_a, hi_a) = (pos_a.floor() as usize, pos_a.ceil() as usize);
    let pos_b = q_hi.clamp(0.0, 1.0) * span;
    let (lo_b, hi_b) = (pos_b.floor() as usize, pos_b.ceil() as usize);

    let (_, &mut val_a, right) = samples.select_nth_unstable_by(lo_a, |a, b| a.total_cmp(b));
    if lo_b > lo_a {
        // The higher quantile's floor rank lives strictly inside the right
        // partition: select it there (global rank lo_b = right[lo_b-lo_a-1]).
        let (left_b, &mut val_b, right_b) =
            right.select_nth_unstable_by(lo_b - lo_a - 1, |a, b| a.total_cmp(b));
        let p_lo = if lo_a == hi_a {
            val_a
        } else {
            // Rank lo_a+1 is the minimum of the right partition, all of
            // which now sits in `left_b` and `val_b`.
            let hi_v = left_b.iter().copied().fold(val_b, f64::min);
            let frac = pos_a - lo_a as f64;
            val_a * (1.0 - frac) + hi_v * frac
        };
        let p_hi = if lo_b == hi_b {
            val_b
        } else {
            let hi_v = right_b.iter().copied().fold(f64::INFINITY, f64::min);
            let frac = pos_b - lo_b as f64;
            val_b * (1.0 - frac) + hi_v * frac
        };
        (p_lo, p_hi)
    } else {
        // Tiny sample counts: both quantiles straddle the same pair of ranks.
        let hi_v = right.iter().copied().fold(f64::INFINITY, f64::min);
        let interp = |pos: f64, lo: usize, hi: usize| {
            if lo == hi {
                val_a
            } else {
                let frac = pos - lo as f64;
                val_a * (1.0 - frac) + hi_v * frac
            }
        };
        (interp(pos_a, lo_a, hi_a), interp(pos_b, lo_b, hi_b))
    }
}

/// Percentile of an already-sorted slice using nearest-rank interpolation.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Per-SLO-class attainment breakdown: how one class of requests (e.g.
/// `"interactive"`) fared against its deadlines in a serving run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloClassReport {
    /// Class label from [`crate::SloSpec::class`].
    pub class: String,
    /// Finished requests of this class.
    pub finished: usize,
    /// Finished requests that met both the TTFT deadline and the TBT target.
    pub met: usize,
    /// Finished requests whose first token missed the TTFT deadline.
    pub ttft_violations: usize,
    /// Finished requests with at least one decode gap above the TBT target.
    pub tbt_violations: usize,
    /// Requests of this class the admission policy shed (dropped unserved).
    pub shed: usize,
}

impl SloClassReport {
    /// Fraction of this class's finished requests that met their SLO
    /// (1.0 when none finished).
    pub fn attainment(&self) -> f64 {
        if self.finished == 0 {
            return 1.0;
        }
        self.met as f64 / self.finished as f64
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("class", JsonValue::str(&self.class)),
            ("finished", JsonValue::Num(self.finished as f64)),
            ("met", JsonValue::Num(self.met as f64)),
            ("attainment", JsonValue::Num(self.attainment())),
            (
                "ttft_violations",
                JsonValue::Num(self.ttft_violations as f64),
            ),
            ("tbt_violations", JsonValue::Num(self.tbt_violations as f64)),
            ("shed", JsonValue::Num(self.shed as f64)),
        ])
    }
}

/// Per-tenant isolation breakdown: how one tenant's requests fared in a
/// serving run, independent of SLO class. This is the fairness ledger —
/// `fig20_fairness` compares each tenant's goodput under fair queueing
/// against its solo-run goodput, and the preemption counters attribute
/// priority evictions to the tenant that caused them.
///
/// Entries are ordered by tenant id (deterministic regardless of arrival
/// order, and merge-order independent at the cluster layer — unlike
/// [`SloClassReport`], which orders by first appearance).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantReport {
    /// The tenant this row describes.
    pub tenant: TenantId,
    /// Finished requests from this tenant.
    pub finished: usize,
    /// Requests from this tenant the admission policy shed.
    pub shed: usize,
    /// Finished requests from this tenant that carried an SLO.
    pub slo_requests: usize,
    /// Finished SLO'd requests that met both targets.
    pub slo_met: usize,
    /// Preemptions *suffered*: restarts of this tenant's requests, whatever
    /// the trigger (KV-pool exhaustion or a higher-priority arrival).
    pub preemptions_suffered: usize,
    /// Preemptions *inflicted*: evictions of other requests that this
    /// tenant's admissions forced through priority preemption.
    /// Memory-pressure preemptions are attributed to nobody.
    pub preemptions_inflicted: usize,
    /// Time-to-first-token statistics for this tenant's finished requests.
    pub ttft: SummaryStats,
}

impl TenantReport {
    /// Fraction of this tenant's finished SLO'd requests that met their SLO
    /// (1.0 when none carried an SLO).
    pub fn attainment(&self) -> f64 {
        if self.slo_requests == 0 {
            return 1.0;
        }
        self.slo_met as f64 / self.slo_requests as f64
    }

    /// Goodput in requests for this tenant: finished requests minus SLO
    /// violators (mirrors [`ServingReport::goodput_requests`]).
    pub fn goodput_requests(&self) -> usize {
        self.finished - (self.slo_requests - self.slo_met)
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("tenant", JsonValue::Num(self.tenant.0 as f64)),
            ("finished", JsonValue::Num(self.finished as f64)),
            ("shed", JsonValue::Num(self.shed as f64)),
            ("slo_requests", JsonValue::Num(self.slo_requests as f64)),
            ("slo_met", JsonValue::Num(self.slo_met as f64)),
            ("attainment", JsonValue::Num(self.attainment())),
            (
                "goodput_requests",
                JsonValue::Num(self.goodput_requests() as f64),
            ),
            ("ttft", self.ttft.to_json()),
            (
                "preemptions_suffered",
                JsonValue::Num(self.preemptions_suffered as f64),
            ),
            (
                "preemptions_inflicted",
                JsonValue::Num(self.preemptions_inflicted as f64),
            ),
        ])
    }
}

/// End-to-end results of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Name of the configuration (scheduler + backend).
    pub system: String,
    /// Total simulated time from the first arrival to the last completion.
    pub makespan: f64,
    /// Number of requests completed.
    pub completed: usize,
    /// Number of scheduler iterations executed.
    pub iterations: usize,
    /// Iterations that contained both a prefill chunk and at least one decode.
    pub hybrid_iterations: usize,
    /// Time-to-first-token statistics (seconds).
    pub ttft: SummaryStats,
    /// Time-between-tokens statistics (seconds).
    pub tbt: SummaryStats,
    /// End-to-end request latency statistics (seconds).
    pub request_latency: SummaryStats,
    /// Fraction of requests with at least one decode gap above 200 ms.
    pub stall_fraction_200ms: f64,
    /// Fraction of requests with at least one decode gap above 500 ms.
    pub stall_fraction_500ms: f64,
    /// Iterations priced from the batch-price cache.
    pub price_cache_hits: usize,
    /// Iterations that had to run the full cost model (novel batch shapes).
    pub price_cache_misses: usize,
    /// Total modeled execution time across all iterations (seconds). The gap
    /// between `makespan` and this is time the replica sat idle waiting for
    /// arrivals; the cluster layer uses it to measure replica imbalance.
    pub busy_time: f64,
    /// Prefill tokens actually scheduled across all iterations. With prefix
    /// caching, cached tokens are skipped and never counted here.
    pub prefill_tokens_scheduled: usize,
    /// Prompt tokens satisfied from the prefix cache at admission.
    pub cached_prefix_tokens: usize,
    /// Cached KV blocks acquired (shared) by admitted requests.
    pub blocks_reused: usize,
    /// Copy-on-write block copies made when a prompt diverged mid-block
    /// from a cached prefix.
    pub cow_copies: usize,
    /// Decode KV tokens whose HBM reads were deduped away by prefix-shared
    /// decode grouping (0 unless the engine ran with
    /// [`ServingConfig::decode_dedup`](crate::ServingConfig::decode_dedup)).
    pub decode_kv_tokens_deduped: usize,
    /// Speculative draft-then-verify rounds executed (one per decode per
    /// iteration when the engine ran with
    /// [`DecodeMode::Speculative`](crate::DecodeMode); 0 otherwise).
    pub spec_rounds: usize,
    /// Draft tokens verification accepted across all speculative rounds.
    pub draft_tokens_accepted: usize,
    /// Draft tokens verification rejected and rolled back across all
    /// speculative rounds.
    pub draft_tokens_rejected: usize,
    /// Decode preemptions (swap-outs) forced by KV-pool exhaustion under the
    /// paged policy.
    pub preemptions: usize,
    /// Cached prefix blocks evicted (LRU) to make room for allocations.
    pub blocks_evicted: usize,
    /// Requests whose completed prefill was handed off to a decode replica
    /// from here (disaggregated serving). These records are excluded from
    /// latency statistics — the decode-side copy carries them.
    pub migrated_out_requests: usize,
    /// Requests that resumed decoding here after a KV migration.
    pub migrated_in_requests: usize,
    /// KV tokens shipped out of this replica across all handoffs.
    pub migrated_tokens: usize,
    /// Total seconds migrated-in requests spent between first token (on
    /// their prefill replica) and decode admission here: KV transfer plus
    /// residency queueing. Appears in the TBT samples as the gap before each
    /// migrated request's second token.
    pub migration_stall_time: f64,
    /// Requests the admission policy shed (dropped unserved because their
    /// TTFT deadline was already blown). Never completed, never counted in
    /// latency statistics, never goodput.
    pub shed_requests: usize,
    /// Finished requests that carried an [`crate::SloSpec`].
    pub slo_requests: usize,
    /// Finished SLO'd requests that met both the TTFT deadline and the TBT
    /// target.
    pub slo_met: usize,
    /// Finished SLO'd requests whose first token missed its deadline.
    pub slo_ttft_violations: usize,
    /// Finished SLO'd requests with a decode gap above their TBT target.
    pub slo_tbt_violations: usize,
    /// TTFT slack (deadline minus achieved TTFT, positive = met with room)
    /// across finished SLO'd requests — the attainment-margin percentiles.
    pub ttft_slack: SummaryStats,
    /// Per-class attainment breakdown, ordered by first appearance in the
    /// request list (deterministic for a fixed workload).
    pub slo_classes: Vec<SloClassReport>,
    /// Per-tenant isolation breakdown, ordered by tenant id. Runs that never
    /// stamp a tenant collapse to a single [`TenantId::DEFAULT`] row.
    pub tenants: Vec<TenantReport>,
}

impl ServingReport {
    /// Build a report from finished (and possibly unfinished) requests.
    pub fn from_requests(
        system: &str,
        requests: &[Request],
        makespan: f64,
        iterations: usize,
        hybrid_iterations: usize,
    ) -> Self {
        let finished: Vec<&Request> = requests
            .iter()
            .filter(|r| r.finish_time.is_some())
            .collect();
        let mut ttfts: Vec<f64> = Vec::with_capacity(finished.len());
        let mut latencies: Vec<f64> = Vec::with_capacity(finished.len());
        let total_tokens: usize = finished.iter().map(|r| r.token_times.len()).sum();
        let mut tbts: Vec<f64> = Vec::with_capacity(total_tokens);
        let mut with_decode = 0usize;
        let mut stalls_200 = 0usize;
        let mut stalls_500 = 0usize;
        let mut slo_requests = 0usize;
        let mut slo_met = 0usize;
        let mut slo_ttft_violations = 0usize;
        let mut slo_tbt_violations = 0usize;
        let mut ttft_slacks: Vec<f64> = Vec::new();
        let mut classes: Vec<SloClassReport> = Vec::new();
        let class_entry = |classes: &mut Vec<SloClassReport>, name: &str| -> usize {
            match classes.iter().position(|c| c.class == name) {
                Some(i) => i,
                None => {
                    classes.push(SloClassReport {
                        class: name.to_string(),
                        ..SloClassReport::default()
                    });
                    classes.len() - 1
                }
            }
        };
        // Per-tenant rows are kept sorted by id as they appear, alongside a
        // per-tenant TTFT sample buffer summarized at the end.
        let mut tenant_tallies: Vec<(TenantReport, Vec<f64>)> = Vec::new();
        let tenant_entry = |tallies: &mut Vec<(TenantReport, Vec<f64>)>, id: TenantId| -> usize {
            match tallies.binary_search_by_key(&id, |t| t.0.tenant) {
                Ok(i) => i,
                Err(i) => {
                    tallies.insert(
                        i,
                        (
                            TenantReport {
                                tenant: id,
                                ..TenantReport::default()
                            },
                            Vec::new(),
                        ),
                    );
                    i
                }
            }
        };
        // Single pass over every request, in list order (so `slo_classes`
        // really is ordered by first appearance, shed or finished): collect
        // each finished request's token gaps once and track the per-request
        // maximum gap, instead of rebuilding the gap vector for each derived
        // statistic; count shed requests (which never finish) as they occur.
        let mut shed_requests = 0usize;
        for r in requests {
            if r.shed_time.is_some() {
                shed_requests += 1;
                if let Some(slo) = r.spec.slo {
                    let i = class_entry(&mut classes, slo.class);
                    classes[i].shed += 1;
                }
                let ti = tenant_entry(&mut tenant_tallies, r.spec.tenant);
                tenant_tallies[ti].0.shed += 1;
                continue;
            }
            if r.finish_time.is_none() {
                continue;
            }
            ttfts.extend(r.ttft());
            latencies.extend(r.latency());
            let ti = tenant_entry(&mut tenant_tallies, r.spec.tenant);
            tenant_tallies[ti].0.finished += 1;
            tenant_tallies[ti].0.preemptions_suffered += r.restarts;
            tenant_tallies[ti].0.preemptions_inflicted += r.preemptions_inflicted;
            tenant_tallies[ti].1.extend(r.ttft());
            let mut max_gap = f64::NEG_INFINITY;
            for w in r.token_times.windows(2) {
                let gap = w[1] - w[0];
                max_gap = max_gap.max(gap);
                tbts.push(gap);
            }
            if max_gap > f64::NEG_INFINITY {
                with_decode += 1;
                if max_gap > 0.2 {
                    stalls_200 += 1;
                }
                if max_gap > 0.5 {
                    stalls_500 += 1;
                }
            }
            if let Some(slo) = r.spec.slo {
                slo_requests += 1;
                let ttft_ok = r.meets_ttft();
                // `max_gap` was just computed, so the TBT criterion is free
                // here (NEG_INFINITY = no decode gaps = trivially met);
                // equivalent to [`Request::meets_tbt`] without re-walking
                // the token times.
                let tbt_ok = max_gap <= slo.tbt_target;
                ttft_slacks.extend(r.ttft_slack());
                let i = class_entry(&mut classes, slo.class);
                classes[i].finished += 1;
                if !ttft_ok {
                    slo_ttft_violations += 1;
                    classes[i].ttft_violations += 1;
                }
                if !tbt_ok {
                    slo_tbt_violations += 1;
                    classes[i].tbt_violations += 1;
                }
                if ttft_ok && tbt_ok {
                    slo_met += 1;
                    classes[i].met += 1;
                }
                tenant_tallies[ti].0.slo_requests += 1;
                if ttft_ok && tbt_ok {
                    tenant_tallies[ti].0.slo_met += 1;
                }
            }
        }
        let with_decode = with_decode.max(1);
        ServingReport {
            system: system.to_string(),
            makespan,
            completed: finished.len(),
            iterations,
            hybrid_iterations,
            ttft: SummaryStats::from_samples(&ttfts),
            tbt: SummaryStats::from_samples(&tbts),
            request_latency: SummaryStats::from_samples(&latencies),
            stall_fraction_200ms: stalls_200 as f64 / with_decode as f64,
            stall_fraction_500ms: stalls_500 as f64 / with_decode as f64,
            price_cache_hits: 0,
            price_cache_misses: 0,
            busy_time: 0.0,
            prefill_tokens_scheduled: 0,
            cached_prefix_tokens: 0,
            blocks_reused: 0,
            cow_copies: 0,
            decode_kv_tokens_deduped: 0,
            spec_rounds: 0,
            draft_tokens_accepted: 0,
            draft_tokens_rejected: 0,
            preemptions: 0,
            blocks_evicted: 0,
            migrated_out_requests: 0,
            migrated_in_requests: 0,
            migrated_tokens: 0,
            migration_stall_time: 0.0,
            shed_requests,
            slo_requests,
            slo_met,
            slo_ttft_violations,
            slo_tbt_violations,
            ttft_slack: SummaryStats::from_samples(&ttft_slacks),
            slo_classes: classes,
            tenants: tenant_tallies
                .into_iter()
                .map(|(mut rep, ttfts)| {
                    rep.ttft = SummaryStats::from_samples(&ttfts);
                    rep
                })
                .collect(),
        }
    }

    /// Serialize the full report as a JSON object — the one format the bench
    /// trend files and the CI perf gate consume.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("system", JsonValue::str(&self.system)),
            ("makespan", JsonValue::Num(self.makespan)),
            ("busy_time", JsonValue::Num(self.busy_time)),
            ("completed", JsonValue::Num(self.completed as f64)),
            ("iterations", JsonValue::Num(self.iterations as f64)),
            (
                "hybrid_iterations",
                JsonValue::Num(self.hybrid_iterations as f64),
            ),
            (
                "requests_per_minute",
                JsonValue::Num(self.requests_per_minute()),
            ),
            ("ttft", self.ttft.to_json()),
            ("tbt", self.tbt.to_json()),
            ("request_latency", self.request_latency.to_json()),
            (
                "stall_fraction_200ms",
                JsonValue::Num(self.stall_fraction_200ms),
            ),
            (
                "stall_fraction_500ms",
                JsonValue::Num(self.stall_fraction_500ms),
            ),
            (
                "price_cache_hits",
                JsonValue::Num(self.price_cache_hits as f64),
            ),
            (
                "price_cache_misses",
                JsonValue::Num(self.price_cache_misses as f64),
            ),
            (
                "prefill_tokens_scheduled",
                JsonValue::Num(self.prefill_tokens_scheduled as f64),
            ),
            (
                "cached_prefix_tokens",
                JsonValue::Num(self.cached_prefix_tokens as f64),
            ),
            ("prefix_hit_rate", JsonValue::Num(self.prefix_hit_rate())),
            ("blocks_reused", JsonValue::Num(self.blocks_reused as f64)),
            ("cow_copies", JsonValue::Num(self.cow_copies as f64)),
            (
                "decode_kv_tokens_deduped",
                JsonValue::Num(self.decode_kv_tokens_deduped as f64),
            ),
            ("spec_rounds", JsonValue::Num(self.spec_rounds as f64)),
            (
                "draft_tokens_accepted",
                JsonValue::Num(self.draft_tokens_accepted as f64),
            ),
            (
                "draft_tokens_rejected",
                JsonValue::Num(self.draft_tokens_rejected as f64),
            ),
            ("preemptions", JsonValue::Num(self.preemptions as f64)),
            ("blocks_evicted", JsonValue::Num(self.blocks_evicted as f64)),
            (
                "migration",
                JsonValue::obj(vec![
                    (
                        "out_requests",
                        JsonValue::Num(self.migrated_out_requests as f64),
                    ),
                    (
                        "in_requests",
                        JsonValue::Num(self.migrated_in_requests as f64),
                    ),
                    ("tokens", JsonValue::Num(self.migrated_tokens as f64)),
                    ("stall_time", JsonValue::Num(self.migration_stall_time)),
                ]),
            ),
            ("shed_requests", JsonValue::Num(self.shed_requests as f64)),
            (
                "slo",
                JsonValue::obj(vec![
                    ("requests", JsonValue::Num(self.slo_requests as f64)),
                    ("met", JsonValue::Num(self.slo_met as f64)),
                    ("attainment", JsonValue::Num(self.slo_attainment())),
                    (
                        "ttft_violations",
                        JsonValue::Num(self.slo_ttft_violations as f64),
                    ),
                    (
                        "tbt_violations",
                        JsonValue::Num(self.slo_tbt_violations as f64),
                    ),
                    (
                        "goodput_requests",
                        JsonValue::Num(self.goodput_requests() as f64),
                    ),
                    (
                        "goodput_per_minute",
                        JsonValue::Num(self.goodput_per_minute()),
                    ),
                    ("ttft_slack", self.ttft_slack.to_json()),
                    (
                        "per_class",
                        JsonValue::Arr(self.slo_classes.iter().map(|c| c.to_json()).collect()),
                    ),
                ]),
            ),
            (
                "tenants",
                JsonValue::Arr(self.tenants.iter().map(|t| t.to_json()).collect()),
            ),
        ])
    }

    /// Fraction of finished SLO'd requests that met both targets (1.0 when
    /// the run carried no SLOs). Shed requests are *not* in the denominator —
    /// they show up in [`ServingReport::shed_requests`] and as missing
    /// goodput instead.
    pub fn slo_attainment(&self) -> f64 {
        if self.slo_requests == 0 {
            return 1.0;
        }
        self.slo_met as f64 / self.slo_requests as f64
    }

    /// Goodput in requests: completed requests that met their SLO (requests
    /// without an SLO count — nothing was promised, so a completion is good
    /// throughput). The metric the paper's latency targets exist to serve.
    pub fn goodput_requests(&self) -> usize {
        self.completed - (self.slo_requests - self.slo_met)
    }

    /// Goodput rate: SLO-meeting completions per minute of makespan — the
    /// fleet-sizing metric ("how many replicas hold the SLO at this load").
    pub fn goodput_per_minute(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.goodput_requests() as f64 / (self.makespan / 60.0)
    }

    /// Fraction of iterations priced from the cache, in `[0, 1]` (0 when the
    /// cache was disabled or the run had no iterations).
    pub fn price_cache_hit_rate(&self) -> f64 {
        let total = self.price_cache_hits + self.price_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.price_cache_hits as f64 / total as f64
    }

    /// Fraction of prompt-prefill work satisfied from the prefix cache:
    /// cached tokens over cached + actually scheduled prefill tokens. Zero
    /// when prefix caching was off or nothing ran.
    pub fn prefix_hit_rate(&self) -> f64 {
        let total = self.cached_prefix_tokens + self.prefill_tokens_scheduled;
        if total == 0 {
            return 0.0;
        }
        self.cached_prefix_tokens as f64 / total as f64
    }

    /// Offline-throughput metric the paper reports in Figure 12: completed
    /// requests per minute.
    pub fn requests_per_minute(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / (self.makespan / 60.0)
    }
}

/// Streaming, constant-memory counterpart of
/// [`ServingReport::from_requests`], for fleet-scale trace replay.
///
/// In streaming mode the engine feeds every request into the accumulator
/// the moment it finishes (or is shed) and then drops the request's
/// per-token sample buffer, so memory stays O(sketch buckets) instead of
/// O(total tokens). Counts, means, maxima, stall fractions and all SLO
/// tallies are exact; only the `p50`/`p99` fields of the four
/// [`SummaryStats`] distributions are approximate, within the
/// [`QuantileSketch`] error bound (see that type's module docs).
///
/// Accumulators merge bucket-wise ([`ReportAccumulator::merge`]), which is
/// how the cluster layer derives fleet-wide percentiles without ever
/// concatenating sample buffers. The grading rules mirror `from_requests`
/// line for line; `streaming_reports_match_exact_counters` below pins the
/// two paths together.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportAccumulator {
    ttft: QuantileSketch,
    tbt: QuantileSketch,
    latency: QuantileSketch,
    slack: QuantileSketch,
    finished: usize,
    with_decode: usize,
    stalls_200: usize,
    stalls_500: usize,
    shed: usize,
    slo_requests: usize,
    slo_met: usize,
    slo_ttft_violations: usize,
    slo_tbt_violations: usize,
    classes: Vec<SloClassReport>,
    tenants: Vec<TenantAcc>,
}

/// Streaming per-tenant tallies: exact counters plus one TTFT sketch, kept
/// sorted by tenant id (so merge order never changes the output ordering).
#[derive(Debug, Clone, PartialEq, Default)]
struct TenantAcc {
    tenant: TenantId,
    finished: usize,
    shed: usize,
    slo_requests: usize,
    slo_met: usize,
    preemptions_suffered: usize,
    preemptions_inflicted: usize,
    ttft: QuantileSketch,
}

impl ReportAccumulator {
    /// An empty accumulator with default-accuracy sketches.
    pub fn new() -> Self {
        ReportAccumulator::default()
    }

    /// Requests observed as finished so far.
    pub fn finished(&self) -> usize {
        self.finished
    }

    fn class_entry(&mut self, name: &str) -> usize {
        match self.classes.iter().position(|c| c.class == name) {
            Some(i) => i,
            None => {
                self.classes.push(SloClassReport {
                    class: name.to_string(),
                    ..SloClassReport::default()
                });
                self.classes.len() - 1
            }
        }
    }

    fn tenant_entry(&mut self, id: TenantId) -> usize {
        match self.tenants.binary_search_by_key(&id, |t| t.tenant) {
            Ok(i) => i,
            Err(i) => {
                self.tenants.insert(
                    i,
                    TenantAcc {
                        tenant: id,
                        ..TenantAcc::default()
                    },
                );
                i
            }
        }
    }

    /// Fold one finished request into the running distributions. Must be
    /// called exactly once per finished request, while its `token_times`
    /// are still intact; the caller may drop them afterwards.
    pub fn observe_finished(&mut self, r: &Request) {
        debug_assert!(r.finish_time.is_some() && r.shed_time.is_none());
        self.finished += 1;
        if let Some(t) = r.ttft() {
            self.ttft.observe(t);
        }
        let ti = self.tenant_entry(r.spec.tenant);
        self.tenants[ti].finished += 1;
        self.tenants[ti].preemptions_suffered += r.restarts;
        self.tenants[ti].preemptions_inflicted += r.preemptions_inflicted;
        if let Some(t) = r.ttft() {
            self.tenants[ti].ttft.observe(t);
        }
        if let Some(l) = r.latency() {
            self.latency.observe(l);
        }
        let mut max_gap = f64::NEG_INFINITY;
        for w in r.token_times.windows(2) {
            let gap = w[1] - w[0];
            max_gap = max_gap.max(gap);
            self.tbt.observe(gap);
        }
        if max_gap > f64::NEG_INFINITY {
            self.with_decode += 1;
            if max_gap > 0.2 {
                self.stalls_200 += 1;
            }
            if max_gap > 0.5 {
                self.stalls_500 += 1;
            }
        }
        if let Some(slo) = r.spec.slo {
            self.slo_requests += 1;
            let ttft_ok = r.meets_ttft();
            // Same shortcut as `from_requests`: `max_gap` doubles as the TBT
            // criterion (NEG_INFINITY = no decode gaps = trivially met).
            let tbt_ok = max_gap <= slo.tbt_target;
            if let Some(s) = r.ttft_slack() {
                self.slack.observe(s);
            }
            let i = self.class_entry(slo.class);
            self.classes[i].finished += 1;
            if !ttft_ok {
                self.slo_ttft_violations += 1;
                self.classes[i].ttft_violations += 1;
            }
            if !tbt_ok {
                self.slo_tbt_violations += 1;
                self.classes[i].tbt_violations += 1;
            }
            if ttft_ok && tbt_ok {
                self.slo_met += 1;
                self.classes[i].met += 1;
            }
            self.tenants[ti].slo_requests += 1;
            if ttft_ok && tbt_ok {
                self.tenants[ti].slo_met += 1;
            }
        }
    }

    /// Fold one shed request in (it never finishes; only shed tallies move).
    pub fn observe_shed(&mut self, r: &Request) {
        debug_assert!(r.shed_time.is_some());
        self.shed += 1;
        if let Some(slo) = r.spec.slo {
            let i = self.class_entry(slo.class);
            self.classes[i].shed += 1;
        }
        let ti = self.tenant_entry(r.spec.tenant);
        self.tenants[ti].shed += 1;
    }

    /// Fold another accumulator in. Sketch merges are bucket-wise counter
    /// additions, so fleet percentiles are independent of merge order; the
    /// cluster merges in replica-index order for deterministic means and
    /// class ordering (classes append by first appearance across the merge
    /// sequence).
    pub fn merge(&mut self, other: &ReportAccumulator) {
        self.ttft.merge(&other.ttft);
        self.tbt.merge(&other.tbt);
        self.latency.merge(&other.latency);
        self.slack.merge(&other.slack);
        self.finished += other.finished;
        self.with_decode += other.with_decode;
        self.stalls_200 += other.stalls_200;
        self.stalls_500 += other.stalls_500;
        self.shed += other.shed;
        self.slo_requests += other.slo_requests;
        self.slo_met += other.slo_met;
        self.slo_ttft_violations += other.slo_ttft_violations;
        self.slo_tbt_violations += other.slo_tbt_violations;
        for c in &other.classes {
            let i = self.class_entry(&c.class);
            self.classes[i].finished += c.finished;
            self.classes[i].met += c.met;
            self.classes[i].ttft_violations += c.ttft_violations;
            self.classes[i].tbt_violations += c.tbt_violations;
            self.classes[i].shed += c.shed;
        }
        for t in &other.tenants {
            let i = self.tenant_entry(t.tenant);
            self.tenants[i].ttft.merge(&t.ttft);
            self.tenants[i].finished += t.finished;
            self.tenants[i].shed += t.shed;
            self.tenants[i].slo_requests += t.slo_requests;
            self.tenants[i].slo_met += t.slo_met;
            self.tenants[i].preemptions_suffered += t.preemptions_suffered;
            self.tenants[i].preemptions_inflicted += t.preemptions_inflicted;
        }
    }

    /// Produce the report. Engine-level counters (price cache, busy time,
    /// migration, ...) are zeroed exactly as in `from_requests`; the engine
    /// and cluster overwrite them from their own exact tallies.
    pub fn finalize(
        &self,
        system: &str,
        makespan: f64,
        iterations: usize,
        hybrid_iterations: usize,
    ) -> ServingReport {
        let with_decode = self.with_decode.max(1);
        ServingReport {
            system: system.to_string(),
            makespan,
            completed: self.finished,
            iterations,
            hybrid_iterations,
            ttft: self.ttft.summary(),
            tbt: self.tbt.summary(),
            request_latency: self.latency.summary(),
            stall_fraction_200ms: self.stalls_200 as f64 / with_decode as f64,
            stall_fraction_500ms: self.stalls_500 as f64 / with_decode as f64,
            price_cache_hits: 0,
            price_cache_misses: 0,
            busy_time: 0.0,
            prefill_tokens_scheduled: 0,
            cached_prefix_tokens: 0,
            blocks_reused: 0,
            cow_copies: 0,
            decode_kv_tokens_deduped: 0,
            spec_rounds: 0,
            draft_tokens_accepted: 0,
            draft_tokens_rejected: 0,
            preemptions: 0,
            blocks_evicted: 0,
            migrated_out_requests: 0,
            migrated_in_requests: 0,
            migrated_tokens: 0,
            migration_stall_time: 0.0,
            shed_requests: self.shed,
            slo_requests: self.slo_requests,
            slo_met: self.slo_met,
            slo_ttft_violations: self.slo_ttft_violations,
            slo_tbt_violations: self.slo_tbt_violations,
            ttft_slack: self.slack.summary(),
            slo_classes: self.classes.clone(),
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantReport {
                    tenant: t.tenant,
                    finished: t.finished,
                    shed: t.shed,
                    slo_requests: t.slo_requests,
                    slo_met: t.slo_met,
                    preemptions_suffered: t.preemptions_suffered,
                    preemptions_inflicted: t.preemptions_inflicted,
                    ttft: t.ttft.summary(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestSpec;

    #[test]
    fn percentiles_of_known_distribution() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&sorted, 0.5) - 50.5).abs() < 1e-9);
        assert!((percentile(&sorted, 0.99) - 99.01).abs() < 0.5);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summary_stats_basic() {
        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.p50 - 2.5).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
        assert_eq!(SummaryStats::from_samples(&[]).count, 0);
    }

    #[test]
    fn prefix_hit_rate_is_zero_not_nan_when_nothing_ran() {
        // Regression: with no prefill scheduled and no cached tokens the
        // ratio's denominator is 0 — the rate must report 0.0, not NaN,
        // or JSON trend files and perf gates downstream choke on it.
        let report = ServingReport::from_requests("test", &[], 0.0, 0, 0);
        assert_eq!(report.prefix_hit_rate(), 0.0);
        assert!(!report.prefix_hit_rate().is_nan());
        // Cached tokens alone (all prefill elided) still yield a finite rate.
        let mut cached = ServingReport::from_requests("test", &[], 1.0, 1, 0);
        cached.cached_prefix_tokens = 128;
        assert_eq!(cached.prefix_hit_rate(), 1.0);
    }

    #[test]
    fn report_counts_stalls_and_throughput() {
        let mut ok = Request::new(0, RequestSpec::new(0.0, 10, 3));
        ok.record_prefill(10, 0.5);
        ok.record_decode_token(0.55);
        ok.record_decode_token(0.60);
        let mut stalled = Request::new(1, RequestSpec::new(0.0, 10, 2));
        stalled.record_prefill(10, 0.5);
        stalled.record_decode_token(1.5);
        let report = ServingReport::from_requests("test", &[ok, stalled], 60.0, 10, 5);
        assert_eq!(report.completed, 2);
        assert!((report.stall_fraction_200ms - 0.5).abs() < 1e-12);
        assert!((report.stall_fraction_500ms - 0.5).abs() < 1e-12);
        assert!((report.requests_per_minute() - 2.0).abs() < 1e-12);
        assert_eq!(report.iterations, 10);
    }

    #[test]
    fn report_serializes_to_parseable_json() {
        let mut ok = Request::new(0, RequestSpec::new(0.0, 10, 2));
        ok.record_prefill(10, 0.5);
        ok.record_decode_token(0.6);
        let mut report = ServingReport::from_requests("Sarathi(chunk=1024)+POD", &[ok], 30.0, 7, 3);
        report.busy_time = 12.5;
        let text = report.to_json().to_string_pretty();
        let parsed = JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(
            parsed.get_path("makespan").and_then(JsonValue::as_f64),
            Some(30.0)
        );
        assert_eq!(
            parsed.get_path("busy_time").and_then(JsonValue::as_f64),
            Some(12.5)
        );
        assert_eq!(
            parsed.get_path("ttft.count").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        assert_eq!(
            parsed.get("system"),
            Some(&JsonValue::str("Sarathi(chunk=1024)+POD"))
        );
    }

    #[test]
    fn slo_grading_and_goodput() {
        use crate::request::SloSpec;
        let tight = SloSpec::new("interactive", 1.0, 0.2);
        let loose = SloSpec::new("batch", 100.0, 5.0);

        // Meets both targets.
        let mut good = Request::new(0, RequestSpec::new(0.0, 10, 2).with_slo(tight));
        good.record_prefill(10, 0.5);
        good.record_decode_token(0.6);
        // Misses TTFT, meets TBT.
        let mut late = Request::new(1, RequestSpec::new(0.0, 10, 2).with_slo(tight));
        late.record_prefill(10, 2.0);
        late.record_decode_token(2.1);
        // Meets TTFT, misses TBT (gap 0.5 > 0.2).
        let mut stalled = Request::new(2, RequestSpec::new(0.0, 10, 2).with_slo(tight));
        stalled.record_prefill(10, 0.5);
        stalled.record_decode_token(1.0);
        // Batch class: loose targets, met.
        let mut batch = Request::new(3, RequestSpec::new(0.0, 10, 2).with_slo(loose));
        batch.record_prefill(10, 10.0);
        batch.record_decode_token(11.0);
        // No SLO: finished = goodput, not in attainment.
        let mut plain = Request::new(4, RequestSpec::new(0.0, 10, 1));
        plain.record_prefill(10, 50.0);
        // Shed before serving.
        let mut shed = Request::new(5, RequestSpec::new(0.0, 10, 2).with_slo(tight));
        shed.shed_time = Some(3.0);

        let report = ServingReport::from_requests(
            "test",
            &[good, late, stalled, batch, plain, shed],
            60.0,
            10,
            5,
        );
        assert_eq!(report.completed, 5);
        assert_eq!(report.shed_requests, 1);
        assert_eq!(report.slo_requests, 4);
        assert_eq!(report.slo_met, 2);
        assert_eq!(report.slo_ttft_violations, 1);
        assert_eq!(report.slo_tbt_violations, 1);
        assert!((report.slo_attainment() - 0.5).abs() < 1e-12);
        // Goodput: 5 completed minus 2 SLO violators = 3 (the plain request
        // counts; the shed one never completed).
        assert_eq!(report.goodput_requests(), 3);
        assert!((report.goodput_per_minute() - 3.0).abs() < 1e-12);
        // TTFT slack distribution covers the four finished SLO'd requests.
        assert_eq!(report.ttft_slack.count, 4);
        assert_eq!(report.ttft_slack.max, 99.0 - 9.0); // batch: 100 - 10

        // Per-class breakdown, ordered by first appearance (shed counts too).
        assert_eq!(report.slo_classes.len(), 2);
        let interactive = &report.slo_classes[0];
        assert_eq!(interactive.class, "interactive");
        assert_eq!(interactive.finished, 3);
        assert_eq!(interactive.met, 1);
        assert_eq!(interactive.ttft_violations, 1);
        assert_eq!(interactive.tbt_violations, 1);
        assert_eq!(interactive.shed, 1);
        assert!((interactive.attainment() - 1.0 / 3.0).abs() < 1e-12);
        let batch_class = &report.slo_classes[1];
        assert_eq!(batch_class.class, "batch");
        assert_eq!(batch_class.finished, 1);
        assert_eq!(batch_class.met, 1);
        assert_eq!(batch_class.shed, 0);

        // The SLO block serializes and parses.
        let parsed =
            JsonValue::parse(&report.to_json().to_string_pretty()).expect("report JSON parses");
        assert_eq!(
            parsed.get_path("slo.met").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(
            parsed
                .get_path("slo.goodput_requests")
                .and_then(JsonValue::as_f64),
            Some(3.0)
        );
        assert_eq!(
            parsed.get_path("shed_requests").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        let JsonValue::Arr(classes) = parsed.get_path("slo.per_class").expect("per_class") else {
            panic!("per_class must be an array");
        };
        assert_eq!(classes.len(), 2);
        assert_eq!(
            classes[0].get("class"),
            Some(&JsonValue::str("interactive"))
        );
    }

    #[test]
    fn slo_free_runs_have_vacuous_attainment() {
        let mut ok = Request::new(0, RequestSpec::new(0.0, 10, 1));
        ok.record_prefill(10, 1.0);
        let report = ServingReport::from_requests("test", &[ok], 60.0, 1, 0);
        assert_eq!(report.slo_requests, 0);
        assert_eq!(report.slo_attainment(), 1.0);
        assert_eq!(report.goodput_requests(), report.completed);
        assert!(report.slo_classes.is_empty());
        assert_eq!(report.shed_requests, 0);
    }

    /// The streaming accumulator and the exact batch path grade requests by
    /// the same rules: every integer tally, mean, and max agree exactly, and
    /// the sketch percentiles sit within their documented bound of the exact
    /// ones.
    #[test]
    fn streaming_reports_match_exact_counters() {
        use crate::request::SloSpec;
        let tight = SloSpec::new("interactive", 1.0, 0.2);
        let loose = SloSpec::new("batch", 100.0, 5.0);
        let mut requests = Vec::new();
        for i in 0..200usize {
            let slo = match i % 3 {
                0 => Some(tight),
                1 => Some(loose),
                _ => None,
            };
            let mut spec =
                RequestSpec::new(i as f64 * 0.1, 10, 4).with_tenant(TenantId((i % 3) as u32));
            if let Some(s) = slo {
                spec = spec.with_slo(s);
            }
            let mut r = Request::new(i, spec);
            if i % 17 == 0 {
                r.shed_time = Some(i as f64 * 0.1 + 0.5);
            } else {
                let t0 = i as f64 * 0.1 + 0.3 + (i % 7) as f64 * 0.25;
                r.record_prefill(10, t0);
                for tok in 1..4 {
                    r.record_decode_token(t0 + tok as f64 * 0.05 * (1 + i % 5) as f64);
                }
                r.restarts = i % 2;
                r.preemptions_inflicted = i % 4;
            }
            requests.push(r);
        }
        let exact = ServingReport::from_requests("test", &requests, 60.0, 10, 5);
        let mut acc = ReportAccumulator::new();
        for r in &requests {
            if r.shed_time.is_some() {
                acc.observe_shed(r);
            } else if r.finish_time.is_some() {
                acc.observe_finished(r);
            }
        }
        let streamed = acc.finalize("test", 60.0, 10, 5);
        assert_eq!(streamed.completed, exact.completed);
        assert_eq!(streamed.shed_requests, exact.shed_requests);
        assert_eq!(streamed.slo_requests, exact.slo_requests);
        assert_eq!(streamed.slo_met, exact.slo_met);
        assert_eq!(streamed.slo_ttft_violations, exact.slo_ttft_violations);
        assert_eq!(streamed.slo_tbt_violations, exact.slo_tbt_violations);
        assert_eq!(streamed.slo_classes, exact.slo_classes);
        assert_eq!(streamed.stall_fraction_200ms, exact.stall_fraction_200ms);
        assert_eq!(streamed.stall_fraction_500ms, exact.stall_fraction_500ms);
        // Per-tenant rows: every exact tally agrees; the tenant TTFT sketch
        // gets the same percentile bound as the global distributions below.
        assert_eq!(streamed.tenants.len(), 3);
        assert_eq!(streamed.tenants.len(), exact.tenants.len());
        for (s, e) in streamed.tenants.iter().zip(&exact.tenants) {
            assert_eq!(s.tenant, e.tenant);
            assert_eq!(s.finished, e.finished);
            assert_eq!(s.shed, e.shed);
            assert_eq!(s.slo_requests, e.slo_requests);
            assert_eq!(s.slo_met, e.slo_met);
            assert_eq!(s.preemptions_suffered, e.preemptions_suffered);
            assert_eq!(s.preemptions_inflicted, e.preemptions_inflicted);
            assert_eq!(s.ttft.count, e.ttft.count);
            assert!((s.ttft.mean - e.ttft.mean).abs() <= 1e-12 * e.ttft.mean.abs().max(1.0));
            assert_eq!(s.ttft.max, e.ttft.max);
        }
        // Collect the exact sample sets the same way `from_requests` does,
        // to check the sketch percentiles against their documented bound:
        // within 1% of the sample at the rounded rank (NOT the interpolated
        // percentile — bimodal slack distributions interpolate across the
        // mode gap, where no sample lives).
        let mut ttfts = Vec::new();
        let mut latencies = Vec::new();
        let mut tbts = Vec::new();
        let mut slacks = Vec::new();
        for r in &requests {
            if r.shed_time.is_some() || r.finish_time.is_none() {
                continue;
            }
            ttfts.extend(r.ttft());
            latencies.extend(r.latency());
            for w in r.token_times.windows(2) {
                tbts.push(w[1] - w[0]);
            }
            if r.spec.slo.is_some() {
                slacks.extend(r.ttft_slack());
            }
        }
        for (s, e, samples) in [
            (&streamed.ttft, &exact.ttft, &mut ttfts),
            (&streamed.tbt, &exact.tbt, &mut tbts),
            (
                &streamed.request_latency,
                &exact.request_latency,
                &mut latencies,
            ),
            (&streamed.ttft_slack, &exact.ttft_slack, &mut slacks),
        ] {
            assert_eq!(s.count, e.count);
            assert!((s.mean - e.mean).abs() <= 1e-12 * e.mean.abs().max(1.0));
            assert_eq!(s.max, e.max);
            samples.sort_by(|a, b| a.total_cmp(b));
            for (sv, q) in [(s.p50, 0.50), (s.p99, 0.99)] {
                let rank = (q * (samples.len() - 1) as f64).round() as usize;
                let adj = samples[rank];
                assert!(
                    (sv - adj).abs() <= 0.0101 * adj.abs() + 1e-9,
                    "sketch {sv} too far from rank-{rank} sample {adj} at q={q}"
                );
            }
        }
    }

    /// Tenant rows are keyed and ordered by id (not appearance), shed
    /// requests land in their tenant's `shed` column, and the preemption
    /// ledger separates suffered restarts from inflicted evictions.
    #[test]
    fn tenant_breakdown_orders_by_id_and_attributes_preemptions() {
        use crate::request::SloSpec;
        let slo = SloSpec::new("interactive", 1.0, 0.2);
        // Tenant 7 appears first in the request list but must sort after 2.
        let mut bully = Request::new(0, RequestSpec::new(0.0, 10, 2).with_tenant(TenantId(7)));
        bully.record_prefill(10, 0.4);
        bully.record_decode_token(0.5);
        bully.preemptions_inflicted = 3;
        let mut victim = Request::new(
            1,
            RequestSpec::new(0.0, 10, 2)
                .with_tenant(TenantId(2))
                .with_slo(slo),
        );
        victim.record_prefill(10, 0.5);
        victim.record_decode_token(0.6);
        victim.restarts = 2;
        let mut dropped = Request::new(2, RequestSpec::new(0.0, 10, 2).with_tenant(TenantId(2)));
        dropped.shed_time = Some(1.0);

        let report = ServingReport::from_requests("test", &[bully, victim, dropped], 60.0, 4, 2);
        assert_eq!(report.tenants.len(), 2);
        let t2 = &report.tenants[0];
        assert_eq!(t2.tenant, TenantId(2));
        assert_eq!(t2.finished, 1);
        assert_eq!(t2.shed, 1);
        assert_eq!(t2.slo_requests, 1);
        assert_eq!(t2.slo_met, 1);
        assert_eq!(t2.preemptions_suffered, 2);
        assert_eq!(t2.preemptions_inflicted, 0);
        assert_eq!(t2.goodput_requests(), 1);
        let t7 = &report.tenants[1];
        assert_eq!(t7.tenant, TenantId(7));
        assert_eq!(t7.preemptions_inflicted, 3);
        assert_eq!(t7.attainment(), 1.0);
        assert_eq!(t7.ttft.count, 1);

        let parsed =
            JsonValue::parse(&report.to_json().to_string_pretty()).expect("report JSON parses");
        let JsonValue::Arr(tenants) = parsed.get_path("tenants").expect("tenants block") else {
            panic!("tenants must be an array");
        };
        assert_eq!(tenants.len(), 2);
        assert_eq!(
            tenants[0].get("tenant").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(
            tenants[1]
                .get("preemptions_inflicted")
                .and_then(JsonValue::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn unfinished_requests_are_excluded() {
        let unfinished = Request::new(0, RequestSpec::new(0.0, 10, 5));
        let report = ServingReport::from_requests("test", &[unfinished], 1.0, 1, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.ttft.count, 0);
    }
}
