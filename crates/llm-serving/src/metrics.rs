//! Serving metrics: TTFT, TBT, request latency, stalls and throughput.

use crate::request::Request;

/// Summary statistics over a set of latency samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl SummaryStats {
    /// Compute summary statistics of `samples` (order not required).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return SummaryStats::default();
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples must not be NaN"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        SummaryStats {
            count: sorted.len(),
            mean,
            p50: percentile(&sorted, 0.50),
            p99: percentile(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Percentile of an already-sorted slice using nearest-rank interpolation.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// End-to-end results of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Name of the configuration (scheduler + backend).
    pub system: String,
    /// Total simulated time from the first arrival to the last completion.
    pub makespan: f64,
    /// Number of requests completed.
    pub completed: usize,
    /// Number of scheduler iterations executed.
    pub iterations: usize,
    /// Iterations that contained both a prefill chunk and at least one decode.
    pub hybrid_iterations: usize,
    /// Time-to-first-token statistics (seconds).
    pub ttft: SummaryStats,
    /// Time-between-tokens statistics (seconds).
    pub tbt: SummaryStats,
    /// End-to-end request latency statistics (seconds).
    pub request_latency: SummaryStats,
    /// Fraction of requests with at least one decode gap above 200 ms.
    pub stall_fraction_200ms: f64,
    /// Fraction of requests with at least one decode gap above 500 ms.
    pub stall_fraction_500ms: f64,
}

impl ServingReport {
    /// Build a report from finished (and possibly unfinished) requests.
    pub fn from_requests(
        system: &str,
        requests: &[Request],
        makespan: f64,
        iterations: usize,
        hybrid_iterations: usize,
    ) -> Self {
        let finished: Vec<&Request> = requests.iter().filter(|r| r.finish_time.is_some()).collect();
        let ttfts: Vec<f64> = finished.iter().filter_map(|r| r.ttft()).collect();
        let latencies: Vec<f64> = finished.iter().filter_map(|r| r.latency()).collect();
        let tbts: Vec<f64> = finished.iter().flat_map(|r| r.tbts()).collect();
        let with_decode = finished.iter().filter(|r| !r.tbts().is_empty()).count().max(1);
        let stalls_200 = finished.iter().filter(|r| r.has_stall(0.2)).count();
        let stalls_500 = finished.iter().filter(|r| r.has_stall(0.5)).count();
        ServingReport {
            system: system.to_string(),
            makespan,
            completed: finished.len(),
            iterations,
            hybrid_iterations,
            ttft: SummaryStats::from_samples(&ttfts),
            tbt: SummaryStats::from_samples(&tbts),
            request_latency: SummaryStats::from_samples(&latencies),
            stall_fraction_200ms: stalls_200 as f64 / with_decode as f64,
            stall_fraction_500ms: stalls_500 as f64 / with_decode as f64,
        }
    }

    /// Offline-throughput metric the paper reports in Figure 12: completed
    /// requests per minute.
    pub fn requests_per_minute(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / (self.makespan / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestSpec;

    #[test]
    fn percentiles_of_known_distribution() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&sorted, 0.5) - 50.5).abs() < 1e-9);
        assert!((percentile(&sorted, 0.99) - 99.01).abs() < 0.5);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summary_stats_basic() {
        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.p50 - 2.5).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
        assert_eq!(SummaryStats::from_samples(&[]).count, 0);
    }

    #[test]
    fn report_counts_stalls_and_throughput() {
        let mut ok = Request::new(0, RequestSpec::new(0.0, 10, 3));
        ok.record_prefill(10, 0.5);
        ok.record_decode_token(0.55);
        ok.record_decode_token(0.60);
        let mut stalled = Request::new(1, RequestSpec::new(0.0, 10, 2));
        stalled.record_prefill(10, 0.5);
        stalled.record_decode_token(1.5);
        let report = ServingReport::from_requests("test", &[ok, stalled], 60.0, 10, 5);
        assert_eq!(report.completed, 2);
        assert!((report.stall_fraction_200ms - 0.5).abs() < 1e-12);
        assert!((report.stall_fraction_500ms - 0.5).abs() < 1e-12);
        assert!((report.requests_per_minute() - 2.0).abs() < 1e-12);
        assert_eq!(report.iterations, 10);
    }

    #[test]
    fn unfinished_requests_are_excluded() {
        let unfinished = Request::new(0, RequestSpec::new(0.0, 10, 5));
        let report = ServingReport::from_requests("test", &[unfinished], 1.0, 1, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.ttft.count, 0);
    }
}
