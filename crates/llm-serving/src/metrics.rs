//! Serving metrics: TTFT, TBT, request latency, stalls and throughput.

use crate::json::JsonValue;
use crate::request::Request;

/// Summary statistics over a set of latency samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl SummaryStats {
    /// Compute summary statistics of `samples` (order not required).
    ///
    /// Percentiles are computed with O(n) selection rather than a full sort —
    /// serving sweeps summarize hundreds of thousands of token-gap samples
    /// per run, and this pass is on the bench hot path.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN (a NaN would otherwise propagate silently
    /// into reports and trend files; NaN sums to a NaN mean, so one O(1)
    /// check at the aggregate covers every sample).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return SummaryStats::default();
        }
        let mut scratch: Vec<f64> = samples.to_vec();
        let mean = scratch.iter().sum::<f64>() / scratch.len() as f64;
        assert!(!mean.is_nan(), "latency samples must not be NaN");
        let max = scratch.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        SummaryStats {
            count: scratch.len(),
            mean,
            p50: percentile_select(&mut scratch, 0.50),
            p99: percentile_select(&mut scratch, 0.99),
            max,
        }
    }

    /// Serialize as a JSON object (`count`, `mean`, `p50`, `p99`, `max`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("count", JsonValue::Num(self.count as f64)),
            ("mean", JsonValue::Num(self.mean)),
            ("p50", JsonValue::Num(self.p50)),
            ("p99", JsonValue::Num(self.p99)),
            ("max", JsonValue::Num(self.max)),
        ])
    }
}

/// Percentile of an unsorted slice using nearest-rank interpolation,
/// via `select_nth_unstable` (O(n), reorders `samples`).
fn percentile_select(samples: &mut [f64], q: f64) -> f64 {
    debug_assert!(!samples.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (samples.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let (_, &mut lo_v, right) = samples.select_nth_unstable_by(lo, |a, b| a.total_cmp(b));
    if lo == hi {
        lo_v
    } else {
        let hi_v = right.iter().copied().fold(f64::INFINITY, f64::min);
        let frac = pos - lo as f64;
        lo_v * (1.0 - frac) + hi_v * frac
    }
}

/// Percentile of an already-sorted slice using nearest-rank interpolation.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// End-to-end results of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Name of the configuration (scheduler + backend).
    pub system: String,
    /// Total simulated time from the first arrival to the last completion.
    pub makespan: f64,
    /// Number of requests completed.
    pub completed: usize,
    /// Number of scheduler iterations executed.
    pub iterations: usize,
    /// Iterations that contained both a prefill chunk and at least one decode.
    pub hybrid_iterations: usize,
    /// Time-to-first-token statistics (seconds).
    pub ttft: SummaryStats,
    /// Time-between-tokens statistics (seconds).
    pub tbt: SummaryStats,
    /// End-to-end request latency statistics (seconds).
    pub request_latency: SummaryStats,
    /// Fraction of requests with at least one decode gap above 200 ms.
    pub stall_fraction_200ms: f64,
    /// Fraction of requests with at least one decode gap above 500 ms.
    pub stall_fraction_500ms: f64,
    /// Iterations priced from the batch-price cache.
    pub price_cache_hits: usize,
    /// Iterations that had to run the full cost model (novel batch shapes).
    pub price_cache_misses: usize,
    /// Total modeled execution time across all iterations (seconds). The gap
    /// between `makespan` and this is time the replica sat idle waiting for
    /// arrivals; the cluster layer uses it to measure replica imbalance.
    pub busy_time: f64,
    /// Prefill tokens actually scheduled across all iterations. With prefix
    /// caching, cached tokens are skipped and never counted here.
    pub prefill_tokens_scheduled: usize,
    /// Prompt tokens satisfied from the prefix cache at admission.
    pub cached_prefix_tokens: usize,
    /// Cached KV blocks acquired (shared) by admitted requests.
    pub blocks_reused: usize,
    /// Copy-on-write block copies made when a prompt diverged mid-block
    /// from a cached prefix.
    pub cow_copies: usize,
    /// Decode preemptions (swap-outs) forced by KV-pool exhaustion under the
    /// paged policy.
    pub preemptions: usize,
    /// Cached prefix blocks evicted (LRU) to make room for allocations.
    pub blocks_evicted: usize,
}

impl ServingReport {
    /// Build a report from finished (and possibly unfinished) requests.
    pub fn from_requests(
        system: &str,
        requests: &[Request],
        makespan: f64,
        iterations: usize,
        hybrid_iterations: usize,
    ) -> Self {
        let finished: Vec<&Request> = requests
            .iter()
            .filter(|r| r.finish_time.is_some())
            .collect();
        let mut ttfts: Vec<f64> = Vec::with_capacity(finished.len());
        let mut latencies: Vec<f64> = Vec::with_capacity(finished.len());
        let total_tokens: usize = finished.iter().map(|r| r.token_times.len()).sum();
        let mut tbts: Vec<f64> = Vec::with_capacity(total_tokens);
        let mut with_decode = 0usize;
        let mut stalls_200 = 0usize;
        let mut stalls_500 = 0usize;
        // Single pass: collect every request's token gaps once and track the
        // per-request maximum gap, instead of rebuilding the gap vector for
        // each derived statistic.
        for r in &finished {
            ttfts.extend(r.ttft());
            latencies.extend(r.latency());
            let mut max_gap = f64::NEG_INFINITY;
            for w in r.token_times.windows(2) {
                let gap = w[1] - w[0];
                max_gap = max_gap.max(gap);
                tbts.push(gap);
            }
            if max_gap > f64::NEG_INFINITY {
                with_decode += 1;
                if max_gap > 0.2 {
                    stalls_200 += 1;
                }
                if max_gap > 0.5 {
                    stalls_500 += 1;
                }
            }
        }
        let with_decode = with_decode.max(1);
        ServingReport {
            system: system.to_string(),
            makespan,
            completed: finished.len(),
            iterations,
            hybrid_iterations,
            ttft: SummaryStats::from_samples(&ttfts),
            tbt: SummaryStats::from_samples(&tbts),
            request_latency: SummaryStats::from_samples(&latencies),
            stall_fraction_200ms: stalls_200 as f64 / with_decode as f64,
            stall_fraction_500ms: stalls_500 as f64 / with_decode as f64,
            price_cache_hits: 0,
            price_cache_misses: 0,
            busy_time: 0.0,
            prefill_tokens_scheduled: 0,
            cached_prefix_tokens: 0,
            blocks_reused: 0,
            cow_copies: 0,
            preemptions: 0,
            blocks_evicted: 0,
        }
    }

    /// Serialize the full report as a JSON object — the one format the bench
    /// trend files and the CI perf gate consume.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("system", JsonValue::str(&self.system)),
            ("makespan", JsonValue::Num(self.makespan)),
            ("busy_time", JsonValue::Num(self.busy_time)),
            ("completed", JsonValue::Num(self.completed as f64)),
            ("iterations", JsonValue::Num(self.iterations as f64)),
            (
                "hybrid_iterations",
                JsonValue::Num(self.hybrid_iterations as f64),
            ),
            (
                "requests_per_minute",
                JsonValue::Num(self.requests_per_minute()),
            ),
            ("ttft", self.ttft.to_json()),
            ("tbt", self.tbt.to_json()),
            ("request_latency", self.request_latency.to_json()),
            (
                "stall_fraction_200ms",
                JsonValue::Num(self.stall_fraction_200ms),
            ),
            (
                "stall_fraction_500ms",
                JsonValue::Num(self.stall_fraction_500ms),
            ),
            (
                "price_cache_hits",
                JsonValue::Num(self.price_cache_hits as f64),
            ),
            (
                "price_cache_misses",
                JsonValue::Num(self.price_cache_misses as f64),
            ),
            (
                "prefill_tokens_scheduled",
                JsonValue::Num(self.prefill_tokens_scheduled as f64),
            ),
            (
                "cached_prefix_tokens",
                JsonValue::Num(self.cached_prefix_tokens as f64),
            ),
            ("prefix_hit_rate", JsonValue::Num(self.prefix_hit_rate())),
            ("blocks_reused", JsonValue::Num(self.blocks_reused as f64)),
            ("cow_copies", JsonValue::Num(self.cow_copies as f64)),
            ("preemptions", JsonValue::Num(self.preemptions as f64)),
            ("blocks_evicted", JsonValue::Num(self.blocks_evicted as f64)),
        ])
    }

    /// Fraction of iterations priced from the cache, in `[0, 1]` (0 when the
    /// cache was disabled or the run had no iterations).
    pub fn price_cache_hit_rate(&self) -> f64 {
        let total = self.price_cache_hits + self.price_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.price_cache_hits as f64 / total as f64
    }

    /// Fraction of prompt-prefill work satisfied from the prefix cache:
    /// cached tokens over cached + actually scheduled prefill tokens. Zero
    /// when prefix caching was off or nothing ran.
    pub fn prefix_hit_rate(&self) -> f64 {
        let total = self.cached_prefix_tokens + self.prefill_tokens_scheduled;
        if total == 0 {
            return 0.0;
        }
        self.cached_prefix_tokens as f64 / total as f64
    }

    /// Offline-throughput metric the paper reports in Figure 12: completed
    /// requests per minute.
    pub fn requests_per_minute(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / (self.makespan / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestSpec;

    #[test]
    fn percentiles_of_known_distribution() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&sorted, 0.5) - 50.5).abs() < 1e-9);
        assert!((percentile(&sorted, 0.99) - 99.01).abs() < 0.5);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summary_stats_basic() {
        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.p50 - 2.5).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
        assert_eq!(SummaryStats::from_samples(&[]).count, 0);
    }

    #[test]
    fn report_counts_stalls_and_throughput() {
        let mut ok = Request::new(0, RequestSpec::new(0.0, 10, 3));
        ok.record_prefill(10, 0.5);
        ok.record_decode_token(0.55);
        ok.record_decode_token(0.60);
        let mut stalled = Request::new(1, RequestSpec::new(0.0, 10, 2));
        stalled.record_prefill(10, 0.5);
        stalled.record_decode_token(1.5);
        let report = ServingReport::from_requests("test", &[ok, stalled], 60.0, 10, 5);
        assert_eq!(report.completed, 2);
        assert!((report.stall_fraction_200ms - 0.5).abs() < 1e-12);
        assert!((report.stall_fraction_500ms - 0.5).abs() < 1e-12);
        assert!((report.requests_per_minute() - 2.0).abs() < 1e-12);
        assert_eq!(report.iterations, 10);
    }

    #[test]
    fn report_serializes_to_parseable_json() {
        let mut ok = Request::new(0, RequestSpec::new(0.0, 10, 2));
        ok.record_prefill(10, 0.5);
        ok.record_decode_token(0.6);
        let mut report = ServingReport::from_requests("Sarathi(chunk=1024)+POD", &[ok], 30.0, 7, 3);
        report.busy_time = 12.5;
        let text = report.to_json().to_string_pretty();
        let parsed = JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(
            parsed.get_path("makespan").and_then(JsonValue::as_f64),
            Some(30.0)
        );
        assert_eq!(
            parsed.get_path("busy_time").and_then(JsonValue::as_f64),
            Some(12.5)
        );
        assert_eq!(
            parsed.get_path("ttft.count").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        assert_eq!(
            parsed.get("system"),
            Some(&JsonValue::str("Sarathi(chunk=1024)+POD"))
        );
    }

    #[test]
    fn unfinished_requests_are_excluded() {
        let unfinished = Request::new(0, RequestSpec::new(0.0, 10, 5));
        let report = ServingReport::from_requests("test", &[unfinished], 1.0, 1, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.ttft.count, 0);
    }
}
