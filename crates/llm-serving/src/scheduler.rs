//! Batch-formation policies: the original vLLM scheduler (prefill
//! prioritizing) and Sarathi-Serve (chunked prefills with stall-free hybrid
//! batching), as compared in §5 of the paper.
//!
//! Admission is pluggable: the scheduler asks an [`AdmitFn`] whether the
//! front of the waiting queue may enter the KV cache. The conservative
//! policy reserves prompt + output up front (Sarathi-Serve's no-preemption
//! rule); the paged policy matches the prompt against the prefix index and
//! allocates only the uncached remainder, reporting how many leading tokens
//! were satisfied from the cache so the prefill chunk starts at the matched
//! offset.

use crate::request::{Phase, Request};
use std::collections::VecDeque;

/// Which batch-formation policy the serving engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The original vLLM scheduler: whenever a request is waiting and fits in
    /// the KV cache, run its *entire* prompt as a prefill-only iteration,
    /// pausing ongoing decodes (low TTFT, generation stalls).
    Vllm,
    /// Sarathi-Serve: every iteration carries at most `chunk_size` tokens —
    /// all ongoing decodes plus one prefill chunk of whatever budget remains
    /// (stall-free, slightly higher TTFT).
    Sarathi {
        /// Token budget per iteration (the prefill chunk size).
        chunk_size: usize,
    },
}

impl SchedulerKind {
    /// Human-readable name.
    pub fn label(&self) -> String {
        match self {
            SchedulerKind::Vllm => "vLLM".to_string(),
            SchedulerKind::Sarathi { chunk_size } => format!("Sarathi(chunk={chunk_size})"),
        }
    }
}

/// What the admission policy decided for the front of the waiting queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The request is (or already was) admitted. On *first* admission,
    /// `cached_tokens` leading prompt tokens were satisfied from the prefix
    /// cache and are recorded on the request so chunking starts at the
    /// matched offset; later calls return zero.
    Admit {
        /// Leading prompt tokens skipped via the prefix cache.
        cached_tokens: usize,
    },
    /// No room right now; try again next iteration.
    Defer,
    /// The request's deadline is already unmeetable: drop it unserved instead
    /// of letting a hopeless prefill occupy the chunk budget (SLO-aware
    /// admission control). The scheduler records it in [`BatchPlan::shed`];
    /// the engine removes it from the queue and marks it shed.
    Shed,
}

/// Admission callback: may the given (front-of-queue) request enter the KV
/// cache? Implementations own all cache state; the scheduler only applies
/// the decision.
pub type AdmitFn<'a> = dyn FnMut(&Request) -> AdmissionDecision + 'a;

/// The batch one iteration will execute: at most one prefill chunk plus any
/// number of decodes (the hybrid-batching common case from §2.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchPlan {
    /// `(request index, chunk length)` of the prefill chunk, if any.
    pub prefill: Option<(usize, usize)>,
    /// Request indices that decode one token this iteration.
    pub decodes: Vec<usize>,
    /// Front-of-queue request the admission policy shed (deadline already
    /// unmeetable): to be dropped unserved by the engine, freeing the
    /// prefill slot for the next candidate.
    pub shed: Option<usize>,
    /// Extra speculative-verify query tokens carried by the decode side:
    /// `Σ (width − 1)` over the scheduled decodes, where a request's round
    /// width is `min(k, remaining output)` under
    /// [`DecodeMode::Speculative`]. Zero in autoregressive mode. These
    /// tokens count against the Sarathi chunk budget — verify work competes
    /// with prefill chunks for the iteration's token target.
    ///
    /// [`DecodeMode::Speculative`]: crate::DecodeMode::Speculative
    pub spec_tokens: usize,
}

impl BatchPlan {
    /// True if the plan schedules nothing (a shed alone is not work — the
    /// engine drops the request and re-plans without advancing time).
    pub fn is_empty(&self) -> bool {
        self.prefill.is_none() && self.decodes.is_empty()
    }

    /// True if the plan contains both a prefill chunk and at least one decode.
    pub fn is_hybrid(&self) -> bool {
        self.prefill.is_some() && !self.decodes.is_empty()
    }

    /// Total tokens the plan processes this iteration: the prefill chunk,
    /// one token per decode, plus any extra speculative-verify tokens (the
    /// Sarathi token-budget accounting).
    pub fn scheduled_tokens(&self) -> usize {
        self.prefill.map(|(_, chunk)| chunk).unwrap_or(0) + self.decodes.len() + self.spec_tokens
    }
}

/// Form the next iteration's batch.
///
/// `waiting` holds indices of requests whose prompt is not yet fully
/// processed (front = oldest / partially prefilled); `running` holds indices
/// of requests in their decode phase. Admission of the front waiting request
/// is delegated to `admit` (see [`AdmissionDecision`]).
///
/// `spec_k` is the speculation depth (0 = plain autoregressive decode): each
/// scheduled decode verifies up to `spec_k` draft tokens per round, and the
/// extra verify tokens are charged against the Sarathi chunk budget like
/// prefill tokens (see [`BatchPlan::spec_tokens`]).
pub fn plan_batch(
    kind: SchedulerKind,
    requests: &mut [Request],
    waiting: &VecDeque<usize>,
    running: &[usize],
    admit: &mut AdmitFn<'_>,
    max_batch_size: usize,
    spec_k: usize,
) -> BatchPlan {
    match kind {
        SchedulerKind::Vllm => plan_vllm(requests, waiting, running, admit, spec_k),
        SchedulerKind::Sarathi { chunk_size } => plan_sarathi(
            chunk_size,
            requests,
            waiting,
            running,
            admit,
            max_batch_size,
            spec_k,
        ),
    }
}

/// Extra verify tokens (`Σ (width − 1)`) the given decodes carry at
/// speculation depth `spec_k`. A request never drafts past its remaining
/// output budget, and every round carries at least its one mandatory decode
/// token, so each width is `min(spec_k, remaining).max(1)`.
fn spec_extra_tokens(spec_k: usize, requests: &[Request], decodes: &[usize]) -> usize {
    if spec_k <= 1 {
        return 0;
    }
    decodes
        .iter()
        .map(|&rid| requests[rid].spec_width(spec_k).saturating_sub(1))
        .sum()
}

/// Outcome of consulting the admission policy for the front request.
enum FrontAdmission {
    Admitted,
    Deferred,
    Shed,
}

/// Ask `admit` about the front request, applying a first-admission prefix
/// match to the request's prefill progress.
fn try_admit(req: &mut Request, admit: &mut AdmitFn<'_>) -> FrontAdmission {
    match admit(req) {
        AdmissionDecision::Admit { cached_tokens } => {
            if cached_tokens > 0 {
                req.note_cached_prefix(cached_tokens);
            }
            FrontAdmission::Admitted
        }
        AdmissionDecision::Defer => FrontAdmission::Deferred,
        AdmissionDecision::Shed => FrontAdmission::Shed,
    }
}

fn plan_vllm(
    requests: &mut [Request],
    waiting: &VecDeque<usize>,
    running: &[usize],
    admit: &mut AdmitFn<'_>,
    spec_k: usize,
) -> BatchPlan {
    // Prefill-prioritizing: if the oldest waiting request fits, run its whole
    // prompt now, pausing decodes.
    let mut shed = None;
    if let Some(&front) = waiting.front() {
        match try_admit(&mut requests[front], admit) {
            FrontAdmission::Admitted => {
                let chunk = requests[front].remaining_prompt();
                return BatchPlan {
                    prefill: Some((front, chunk)),
                    decodes: Vec::new(),
                    shed: None,
                    spec_tokens: 0,
                };
            }
            FrontAdmission::Shed => shed = Some(front),
            FrontAdmission::Deferred => {}
        }
    }
    let decodes = running.to_vec();
    let spec_tokens = spec_extra_tokens(spec_k, requests, &decodes);
    BatchPlan {
        prefill: None,
        decodes,
        shed,
        spec_tokens,
    }
}

fn plan_sarathi(
    chunk_size: usize,
    requests: &mut [Request],
    waiting: &VecDeque<usize>,
    running: &[usize],
    admit: &mut AdmitFn<'_>,
    max_batch_size: usize,
    spec_k: usize,
) -> BatchPlan {
    let decodes: Vec<usize> = running.iter().copied().take(max_batch_size).collect();
    // Verify tokens are real query tokens: they eat the chunk budget before
    // any prefill is admitted, so a speculative iteration keeps the same
    // token target as a plain one (Sarathi's stall-free guarantee).
    let spec_tokens = spec_extra_tokens(spec_k, requests, &decodes);
    let budget = chunk_size.saturating_sub(decodes.len() + spec_tokens);
    let mut prefill = None;
    let mut shed = None;
    if budget > 0 && decodes.len() < max_batch_size {
        if let Some(&front) = waiting.front() {
            match try_admit(&mut requests[front], admit) {
                FrontAdmission::Admitted => {
                    debug_assert_ne!(requests[front].phase(), Phase::Finished);
                    let chunk = requests[front].remaining_prompt().min(budget);
                    if chunk > 0 {
                        prefill = Some((front, chunk));
                    }
                }
                FrontAdmission::Shed => shed = Some(front),
                FrontAdmission::Deferred => {}
            }
        }
    }
    BatchPlan {
        prefill,
        decodes,
        shed,
        spec_tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvcache::KvCacheManager;
    use crate::request::RequestSpec;

    fn setup(n: usize, prompt: usize, output: usize) -> (Vec<Request>, Vec<bool>) {
        let requests: Vec<Request> = (0..n)
            .map(|i| Request::new(i, RequestSpec::new(0.0, prompt, output)))
            .collect();
        let reserved = vec![false; n];
        (requests, reserved)
    }

    /// The conservative admission rule the engine uses: reserve the full
    /// prompt + output on first sight, nothing on later calls.
    fn conservative<'a>(
        kv: &'a mut KvCacheManager,
        reserved: &'a mut [bool],
    ) -> impl FnMut(&Request) -> AdmissionDecision + 'a {
        move |req: &Request| {
            if reserved[req.id] {
                return AdmissionDecision::Admit { cached_tokens: 0 };
            }
            if kv.reserve(req.spec.total_tokens()) {
                reserved[req.id] = true;
                AdmissionDecision::Admit { cached_tokens: 0 }
            } else {
                AdmissionDecision::Defer
            }
        }
    }

    #[test]
    fn vllm_prioritizes_prefills_and_pauses_decodes() {
        let (mut requests, mut reserved) = setup(3, 1000, 100);
        let mut kv = KvCacheManager::new(100_000);
        let waiting: VecDeque<usize> = vec![0].into();
        let running = vec![1, 2];
        let plan = plan_batch(
            SchedulerKind::Vllm,
            &mut requests,
            &waiting,
            &running,
            &mut conservative(&mut kv, &mut reserved),
            256,
            0,
        );
        // The whole prompt is scheduled and the decodes are paused.
        assert_eq!(plan.prefill, Some((0, 1000)));
        assert!(plan.decodes.is_empty());
        assert!(reserved[0]);
    }

    #[test]
    fn vllm_falls_back_to_decodes_when_kv_is_full() {
        let (mut requests, mut reserved) = setup(2, 10_000, 100);
        let mut kv = KvCacheManager::new(1_000);
        let waiting: VecDeque<usize> = vec![0].into();
        let running = vec![1];
        let plan = plan_batch(
            SchedulerKind::Vllm,
            &mut requests,
            &waiting,
            &running,
            &mut conservative(&mut kv, &mut reserved),
            256,
            0,
        );
        assert!(plan.prefill.is_none());
        assert_eq!(plan.decodes, vec![1]);
    }

    #[test]
    fn sarathi_builds_hybrid_batches_within_the_token_budget() {
        let (mut requests, mut reserved) = setup(5, 4096, 100);
        let mut kv = KvCacheManager::new(1_000_000);
        let waiting: VecDeque<usize> = vec![0].into();
        let running = vec![1, 2, 3, 4];
        let plan = plan_batch(
            SchedulerKind::Sarathi { chunk_size: 512 },
            &mut requests,
            &waiting,
            &running,
            &mut conservative(&mut kv, &mut reserved),
            256,
            0,
        );
        assert!(plan.is_hybrid());
        // 4 decode tokens leave 508 tokens of budget for the chunk.
        assert_eq!(plan.prefill, Some((0, 508)));
        assert_eq!(plan.decodes.len(), 4);
        // The hybrid batch fills the whole 512-token budget.
        assert_eq!(plan.scheduled_tokens(), 512);
    }

    #[test]
    fn sarathi_never_exceeds_the_chunk_with_the_final_piece() {
        let (mut requests, mut reserved) = setup(1, 300, 10);
        requests[0].record_prefill(200, 1.0);
        reserved[0] = true;
        let mut kv = KvCacheManager::new(10_000);
        let waiting: VecDeque<usize> = vec![0].into();
        let plan = plan_batch(
            SchedulerKind::Sarathi { chunk_size: 512 },
            &mut requests,
            &waiting,
            &[],
            &mut conservative(&mut kv, &mut reserved),
            256,
            0,
        );
        // Only the remaining 100 prompt tokens are scheduled.
        assert_eq!(plan.prefill, Some((0, 100)));
    }

    #[test]
    fn sarathi_skips_prefill_when_decodes_consume_the_budget() {
        let (mut requests, mut reserved) = setup(70, 1000, 100);
        let mut kv = KvCacheManager::new(1_000_000);
        let waiting: VecDeque<usize> = vec![0].into();
        let running: Vec<usize> = (1..65).collect();
        let plan = plan_batch(
            SchedulerKind::Sarathi { chunk_size: 64 },
            &mut requests,
            &waiting,
            &running,
            &mut conservative(&mut kv, &mut reserved),
            256,
            0,
        );
        assert!(plan.prefill.is_none());
        assert_eq!(plan.decodes.len(), 64);
    }

    #[test]
    fn cached_prefix_shrinks_the_scheduled_chunk() {
        // An admission that reports 192 leading tokens as cached: the chunk
        // starts at the matched offset, so only 108 of the 300 prompt tokens
        // are scheduled.
        let (mut requests, _) = setup(1, 300, 10);
        let waiting: VecDeque<usize> = vec![0].into();
        let mut admit = |_req: &Request| AdmissionDecision::Admit { cached_tokens: 192 };
        let plan = plan_batch(
            SchedulerKind::Sarathi { chunk_size: 512 },
            &mut requests,
            &waiting,
            &[],
            &mut admit,
            256,
            0,
        );
        assert_eq!(plan.prefill, Some((0, 108)));
        assert_eq!(requests[0].cached_prompt_tokens, 192);
        assert_eq!(requests[0].prefilled, 192);
    }

    #[test]
    fn shed_front_is_reported_without_occupying_the_prefill_slot() {
        // An admission policy that sheds the front request: the plan carries
        // the shed id, schedules no prefill, and keeps the decodes running.
        let (mut requests, _) = setup(3, 1000, 100);
        let waiting: VecDeque<usize> = vec![0].into();
        let running = vec![1, 2];
        let mut admit = |_req: &Request| AdmissionDecision::Shed;
        for kind in [
            SchedulerKind::Vllm,
            SchedulerKind::Sarathi { chunk_size: 512 },
        ] {
            let plan = plan_batch(kind, &mut requests, &waiting, &running, &mut admit, 256, 0);
            assert_eq!(plan.shed, Some(0), "{kind:?}");
            assert!(plan.prefill.is_none(), "{kind:?}");
            assert_eq!(plan.decodes, vec![1, 2], "{kind:?}");
            // A shed alone is not schedulable work.
            assert_eq!(plan.scheduled_tokens(), 2, "{kind:?}");
        }
    }

    #[test]
    fn spec_verify_tokens_eat_the_sarathi_chunk_budget() {
        // 4 running decodes at depth k=4: each mid-flight request carries 3
        // extra verify tokens, shrinking the prefill chunk accordingly.
        let (mut requests, mut reserved) = setup(5, 4096, 100);
        for r in &mut requests[1..5] {
            r.record_prefill(4096, 0.5);
        }
        let mut kv = KvCacheManager::new(1_000_000);
        let waiting: VecDeque<usize> = vec![0].into();
        let running = vec![1, 2, 3, 4];
        let plan = plan_batch(
            SchedulerKind::Sarathi { chunk_size: 512 },
            &mut requests,
            &waiting,
            &running,
            &mut conservative(&mut kv, &mut reserved),
            256,
            4,
        );
        assert_eq!(plan.spec_tokens, 4 * 3);
        // 4 decode tokens + 12 verify tokens leave 496 for the chunk.
        assert_eq!(plan.prefill, Some((0, 496)));
        // The iteration still hits the exact token target.
        assert_eq!(plan.scheduled_tokens(), 512);

        // Near the end of a request, the width collapses to its remaining
        // output: a request one token from done carries no verify tokens.
        requests[1].generated = 100 - 1;
        let plan = plan_batch(
            SchedulerKind::Sarathi { chunk_size: 512 },
            &mut requests,
            &waiting,
            &running,
            &mut conservative(&mut kv, &mut reserved),
            256,
            4,
        );
        assert_eq!(plan.spec_tokens, 3 * 3);

        // Depth 1 (and 0) add nothing: the plan is the autoregressive one.
        let plan = plan_batch(
            SchedulerKind::Sarathi { chunk_size: 512 },
            &mut requests,
            &waiting,
            &running,
            &mut conservative(&mut kv, &mut reserved),
            256,
            1,
        );
        assert_eq!(plan.spec_tokens, 0);
        assert_eq!(plan.prefill, Some((0, 508)));
    }

    #[test]
    fn empty_state_gives_empty_plan() {
        let (mut requests, mut reserved) = setup(1, 10, 10);
        let mut kv = KvCacheManager::new(1000);
        let plan = plan_batch(
            SchedulerKind::Vllm,
            &mut requests,
            &VecDeque::new(),
            &[],
            &mut conservative(&mut kv, &mut reserved),
            256,
            0,
        );
        assert!(plan.is_empty());
        assert!(!plan.is_hybrid());
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(SchedulerKind::Vllm.label(), "vLLM");
        assert!(SchedulerKind::Sarathi { chunk_size: 512 }
            .label()
            .contains("512"));
    }
}
