//! Roofline cost model for the linear (non-attention) operators of a
//! transformer iteration, plus the per-iteration breakdown used by Figure 4.
//!
//! Hybrid batching's benefit for linear operators is that the model weights
//! are read from HBM once per iteration and reused for the prefill chunk's
//! tokens *and* the decode tokens, so the cost model takes the total number
//! of query tokens in the batch.

use crate::model::ModelConfig;
use attn_kernels::{AttentionEstimator, AttentionStrategy, HybridBatch};
use gpu_sim::GpuConfig;

/// Achieved fraction of tensor-core peak for dense GEMMs (cuBLAS-like).
const GEMM_COMPUTE_EFFICIENCY: f64 = 0.75;
/// Achieved fraction of HBM bandwidth for weight streaming.
const GEMM_BANDWIDTH_EFFICIENCY: f64 = 0.8;
/// Fixed launch/overhead per linear operator per layer (seconds).
const LINEAR_OP_OVERHEAD: f64 = 4.0e-6;
/// Per-layer tensor-parallel all-reduce base latency (seconds).
const ALLREDUCE_BASE_LATENCY: f64 = 12.0e-6;
/// Interconnect bandwidth available for tensor-parallel all-reduce (bytes/s).
const ALLREDUCE_BANDWIDTH: f64 = 250e9;

/// Time contributions of one full model iteration, split the way Figure 4
/// reports them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IterationBreakdown {
    /// QKV projection ("Pre Projection").
    pub pre_projection: f64,
    /// Prefill attention.
    pub prefill_attention: f64,
    /// Decode attention.
    pub decode_attention: f64,
    /// Output projection ("Post Projection").
    pub post_projection: f64,
    /// MLP / feed-forward network.
    pub ffn: f64,
    /// Everything else: layer norms, rotary embeddings, tensor-parallel
    /// all-reduces, sampling.
    pub others: f64,
}

impl IterationBreakdown {
    /// Total iteration time (seconds).
    pub fn total(&self) -> f64 {
        self.pre_projection
            + self.prefill_attention
            + self.decode_attention
            + self.post_projection
            + self.ffn
            + self.others
    }

    /// The six components as `(label, seconds)` pairs in Figure 4's order.
    pub fn components(&self) -> [(&'static str, f64); 6] {
        [
            ("Pre Projection", self.pre_projection),
            ("Prefill Attention", self.prefill_attention),
            ("Decode Attention", self.decode_attention),
            ("Post Projection", self.post_projection),
            ("FFN", self.ffn),
            ("Others", self.others),
        ]
    }
}

/// Cost model for one serving iteration of a model on a device.
#[derive(Debug, Clone)]
pub struct IterationCostModel {
    model: ModelConfig,
    gpu: GpuConfig,
    estimator: AttentionEstimator,
}

impl IterationCostModel {
    /// Create a cost model for a model/device pair. Attention costs use the
    /// memoized estimator fast path (see [`IterationCostModel::exact`]).
    pub fn new(model: ModelConfig, gpu: GpuConfig) -> Self {
        let estimator = AttentionEstimator::new(model.attention, gpu.clone());
        IterationCostModel {
            model,
            gpu,
            estimator,
        }
    }

    /// Create a cost model that prices attention exactly, bypassing the
    /// estimator's side-cost memoization (the `POD_PRICE_CACHE=0` path).
    pub fn exact(model: ModelConfig, gpu: GpuConfig) -> Self {
        let estimator = AttentionEstimator::exact(model.attention, gpu.clone());
        IterationCostModel {
            model,
            gpu,
            estimator,
        }
    }

    /// The model this cost model describes.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Time of one dense linear operator over `tokens` query tokens with
    /// `params` weight parameters (one GPU's shard, one layer).
    fn gemm_time(&self, tokens: usize, params: usize) -> f64 {
        if tokens == 0 || params == 0 {
            return 0.0;
        }
        let flops = 2.0 * tokens as f64 * params as f64;
        let weight_bytes = params as f64 * self.model.attention.dtype_bytes as f64;
        let act_bytes = 2.0
            * tokens as f64
            * self.model.hidden_size as f64
            * self.model.attention.dtype_bytes as f64;
        let tc = flops / (self.gpu.tensor_flops * GEMM_COMPUTE_EFFICIENCY);
        let tm = (weight_bytes + act_bytes) / (self.gpu.hbm_bandwidth * GEMM_BANDWIDTH_EFFICIENCY);
        tc.max(tm) + LINEAR_OP_OVERHEAD
    }

    /// Tensor-parallel all-reduce time for `tokens` activations (one layer
    /// performs two all-reduces: after attention and after the MLP).
    fn allreduce_time(&self, tokens: usize) -> f64 {
        if self.model.tensor_parallel() <= 1 || tokens == 0 {
            return 0.0;
        }
        let bytes = 2.0
            * tokens as f64
            * self.model.hidden_size as f64
            * self.model.attention.dtype_bytes as f64;
        2.0 * (ALLREDUCE_BASE_LATENCY + bytes / ALLREDUCE_BANDWIDTH)
    }

    /// Per-iteration breakdown of a hybrid batch, with attention computed by
    /// `strategy`. Costs cover all layers of the model plus sampling.
    pub fn breakdown(
        &self,
        batch: &HybridBatch,
        strategy: AttentionStrategy,
    ) -> IterationBreakdown {
        let tokens = batch.total_query_tokens();
        if tokens == 0 {
            return IterationBreakdown::default();
        }
        let layers = self.model.num_layers() as f64;
        let params = self.model.layer_params_per_gpu();

        let attn = self.estimator.estimate(batch, strategy);
        let (prefill_attention, decode_attention) =
            if strategy == AttentionStrategy::Pod || strategy == AttentionStrategy::FiBatched {
                // Fused execution: attribute the fused time proportionally to the
                // two operations' standalone costs so the breakdown still sums to
                // the iteration total.
                let serial_total = (attn.prefill_time + attn.decode_time).max(1e-12);
                (
                    attn.total_time * attn.prefill_time / serial_total,
                    attn.total_time * attn.decode_time / serial_total,
                )
            } else {
                (attn.prefill_time, attn.decode_time)
            };

        let pre_projection = self.gemm_time(tokens, params.qkv_proj) * layers;
        let post_projection = self.gemm_time(tokens, params.out_proj) * layers;
        let ffn = self.gemm_time(tokens, params.mlp) * layers;
        // Others: two norms + rotary (bandwidth-bound elementwise passes),
        // tensor-parallel all-reduces, and the sampling / LM-head cost for the
        // sequences that produce a token this iteration.
        let elementwise = 6.0
            * tokens as f64
            * self.model.hidden_size as f64
            * self.model.attention.dtype_bytes as f64
            / (self.gpu.hbm_bandwidth * GEMM_BANDWIDTH_EFFICIENCY);
        let sampling_rows = batch.decode_batch_size() + usize::from(batch.has_prefill());
        let lm_head = self.gemm_time(
            sampling_rows,
            self.model.vocab_size * self.model.hidden_size / self.model.tensor_parallel(),
        );
        let others = (elementwise + self.allreduce_time(tokens)) * layers + lm_head + 30.0e-6;

        IterationBreakdown {
            pre_projection,
            prefill_attention: prefill_attention * layers,
            decode_attention: decode_attention * layers,
            post_projection,
            ffn,
            others,
        }
    }

    /// Total time of one serving iteration (seconds).
    pub fn iteration_time(&self, batch: &HybridBatch, strategy: AttentionStrategy) -> f64 {
        self.breakdown(batch, strategy).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> IterationCostModel {
        IterationCostModel::new(ModelConfig::llama3_8b(), GpuConfig::a100_80gb())
    }

    #[test]
    fn attention_dominates_at_long_context() {
        // Figure 4: at 16K context, attention is >60 % of the iteration.
        let m = model();
        let batch = HybridBatch::uniform(1024, 16 * 1024, 60, 16 * 1024);
        let b = m.breakdown(&batch, AttentionStrategy::FaSerial);
        let attn_share = (b.prefill_attention + b.decode_attention) / b.total();
        assert!(attn_share > 0.5, "attention share {attn_share}");
    }

    #[test]
    fn linear_dominates_at_short_context() {
        // Figure 4: at 1K context, the FFN is the largest contributor.
        let m = model();
        let batch = HybridBatch::uniform(1024, 1024, 60, 1024);
        let b = m.breakdown(&batch, AttentionStrategy::FaSerial);
        let attn_share = (b.prefill_attention + b.decode_attention) / b.total();
        assert!(attn_share < 0.4, "attention share {attn_share}");
        assert!(b.ffn > b.prefill_attention);
    }

    #[test]
    fn pod_reduces_iteration_time_on_hybrid_batches() {
        let m = model();
        let batch = HybridBatch::uniform(1024, 12 * 1024, 80, 12 * 1024);
        let serial = m.iteration_time(&batch, AttentionStrategy::FaSerial);
        let pod = m.iteration_time(&batch, AttentionStrategy::Pod);
        assert!(pod < serial);
        // The end-to-end gain is bounded by attention's share of the iteration.
        assert!(pod > serial * 0.5);
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let m = model();
        assert_eq!(
            m.iteration_time(&HybridBatch::new(), AttentionStrategy::FaSerial),
            0.0
        );
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let m = model();
        let batch = HybridBatch::uniform(512, 8 * 1024, 32, 8 * 1024);
        let b = m.breakdown(&batch, AttentionStrategy::Pod);
        let sum: f64 = b.components().iter().map(|(_, t)| t).sum();
        assert!((sum - b.total()).abs() < 1e-12);
        assert!(b.total() > 0.0);
    }

    #[test]
    fn decode_only_iterations_are_memory_bound_and_fast() {
        let m = model();
        let decode = HybridBatch::decode_only(32, 4096);
        let hybrid = HybridBatch::uniform(2048, 4096, 32, 4096);
        let t_decode = m.iteration_time(&decode, AttentionStrategy::FaSerial);
        let t_hybrid = m.iteration_time(&hybrid, AttentionStrategy::FaSerial);
        assert!(t_decode < t_hybrid);
        // A decode-only iteration of a 7B-class model takes on the order of
        // tens of milliseconds, not seconds.
        assert!(
            t_decode > 1e-3 && t_decode < 0.2,
            "decode iteration {t_decode}"
        );
    }

    #[test]
    fn tensor_parallel_adds_allreduce_cost() {
        let tp2 = model();
        let tp1 = IterationCostModel::new(ModelConfig::yi_6b(), GpuConfig::a100_80gb());
        let batch = HybridBatch::uniform(1024, 1024, 16, 2048);
        let b2 = tp2.breakdown(&batch, AttentionStrategy::FaSerial);
        let b1 = tp1.breakdown(&batch, AttentionStrategy::FaSerial);
        // Yi-6B has no all-reduce; Llama-3-8B TP-2 does. "Others" should
        // reflect that (both still include sampling and norms).
        assert!(b2.others > b1.others * 0.8);
    }
}
