//! The prefix-sharing paged KV-cache block subsystem.
//!
//! This replaces the counter-only capacity manager with real per-block
//! identity, the way vLLM's block manager and SGLang's RadixAttention treat
//! GPU memory:
//!
//! * [`BlockPool`] owns `capacity / BLOCK_TOKENS` fixed-size blocks with
//!   reference counts. A block is **free** (on the free list), **referenced**
//!   (held by at least one live request) or **cached** (refcount zero but
//!   still holding the KV of a previously computed prefix — reclaimable).
//! * [`PrefixIndex`] is a radix trie over block-granular token fingerprints:
//!   each node is one full block of `BLOCK_TOKENS` tokens, keyed by the
//!   fingerprint hash of its content, child edges extending the prefix. A
//!   request's prompt walks the trie and every matched node is a block of KV
//!   it does not have to prefill.
//! * **Copy-on-write on divergence:** when the walk ends mid-block — the
//!   request's next tokens agree with a cached block for only part of its
//!   span — the cached block is copied into a private block and the common
//!   leading tokens are reused; the divergent tail is recomputed. The shared
//!   original is never mutated.
//! * **LRU eviction:** cached blocks whose trie node is a leaf are evictable,
//!   oldest-use first. Evicting a leaf may turn its parent into an evictable
//!   leaf, so long-dead conversations drain from the tail inward, exactly
//!   like RadixAttention's leaf-first LRU.
//!
//! Everything is deterministic: ties break on allocation order, the LRU is a
//! total order over `(last_use, node id)`, and no hash-map iteration order
//! ever reaches a decision.

use crate::request::PromptContent;
use std::collections::{BTreeSet, HashMap};

/// Tokens per KV-cache block (the paged-attention page size).
pub const BLOCK_TOKENS: usize = 16;

/// Identifier of one KV-cache block inside a [`BlockPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// The raw index (stable for the lifetime of the pool).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Number of blocks needed to hold `tokens` tokens.
pub fn blocks_for(tokens: usize) -> usize {
    tokens.div_ceil(BLOCK_TOKENS)
}

/// Sentinel for "no trie node" / the trie root.
const NO_NODE: u32 = u32::MAX;

/// Position in the [`PrefixIndex`] reached by a prefix walk; extending a
/// request's indexed chain resumes from here instead of re-walking from the
/// root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor(u32);

impl Cursor {
    /// The trie root (empty prefix).
    pub fn root() -> Self {
        Cursor(NO_NODE)
    }
}

impl Default for Cursor {
    fn default() -> Self {
        Cursor::root()
    }
}

/// Fingerprints of one full block of tokens.
type BlockTokens = [u64; BLOCK_TOKENS];

/// One radix-trie node: a full block of tokens extending its parent's prefix.
#[derive(Debug, Clone)]
struct TrieNode {
    /// Parent node, or [`NO_NODE`] when the parent is the root.
    parent: u32,
    /// Hash of `tokens` — this node's edge key in its parent's child map.
    key: u64,
    /// The pool block holding this node's KV.
    block: u32,
    /// The token fingerprints themselves, kept to resolve hash collisions
    /// and to measure partial (copy-on-write) matches.
    tokens: BlockTokens,
    /// Children by content hash of the next block.
    children: HashMap<u64, u32>,
    /// Logical time of the last walk through this node (LRU key).
    last_use: u64,
}

/// A radix trie mapping block-granular token prefixes to cached block ids.
///
/// The index stores *structure only* — which prefixes exist and which block
/// holds each — while [`BlockPool`] owns reference counts and the eviction
/// order. Nodes are slab-allocated so ids are stable and deterministic.
#[derive(Debug, Clone, Default)]
pub struct PrefixIndex {
    nodes: Vec<Option<TrieNode>>,
    free_nodes: Vec<u32>,
    root_children: HashMap<u64, u32>,
}

impl PrefixIndex {
    /// Number of live nodes (cached or referenced prefix blocks).
    pub fn len(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    /// Whether the index holds no prefixes at all.
    pub fn is_empty(&self) -> bool {
        self.root_children.is_empty()
    }

    fn node(&self, idx: u32) -> &TrieNode {
        self.nodes[idx as usize]
            .as_ref()
            .expect("trie node id is live")
    }

    fn node_mut(&mut self, idx: u32) -> &mut TrieNode {
        self.nodes[idx as usize]
            .as_mut()
            .expect("trie node id is live")
    }

    fn children_of(&self, cursor: Cursor) -> &HashMap<u64, u32> {
        if cursor.0 == NO_NODE {
            &self.root_children
        } else {
            &self.node(cursor.0).children
        }
    }

    /// Child of `cursor` whose content is exactly `tokens`, if cached.
    fn child_matching(&self, cursor: Cursor, tokens: &BlockTokens) -> Option<u32> {
        let idx = *self.children_of(cursor).get(&hash_block(tokens))?;
        // Verify content, not just the 64-bit hash, so a collision can never
        // silently splice two different prefixes together.
        (self.node(idx).tokens == *tokens).then_some(idx)
    }

    /// Insert a child under `cursor`. Returns `None` (leaving the trie
    /// unchanged) if an equal-keyed child already exists — the caller's block
    /// then simply stays private.
    fn insert_child(&mut self, cursor: Cursor, tokens: BlockTokens, block: u32) -> Option<u32> {
        let key = hash_block(&tokens);
        if self.children_of(cursor).contains_key(&key) {
            return None;
        }
        let idx = match self.free_nodes.pop() {
            Some(i) => i,
            None => {
                self.nodes.push(None);
                (self.nodes.len() - 1) as u32
            }
        };
        self.nodes[idx as usize] = Some(TrieNode {
            parent: cursor.0,
            key,
            block,
            tokens,
            children: HashMap::new(),
            last_use: 0,
        });
        if cursor.0 == NO_NODE {
            self.root_children.insert(key, idx);
        } else {
            self.node_mut(cursor.0).children.insert(key, idx);
        }
        Some(idx)
    }

    /// Remove a (leaf) node, returning its block and its parent cursor.
    fn remove_leaf(&mut self, idx: u32) -> (u32, Cursor) {
        let node = self.nodes[idx as usize]
            .take()
            .expect("evicting a live node");
        debug_assert!(node.children.is_empty(), "only leaves are evictable");
        if node.parent == NO_NODE {
            self.root_children.remove(&node.key);
        } else {
            self.node_mut(node.parent).children.remove(&node.key);
        }
        self.free_nodes.push(idx);
        (node.block, Cursor(node.parent))
    }
}

/// Result of matching a request's prompt against the prefix index.
#[derive(Debug, Clone, Default)]
pub struct PrefixMatch {
    /// Fully matched cached blocks, in prefix order. Their reference counts
    /// have been incremented; they belong in the request's block table.
    pub blocks: Vec<BlockId>,
    /// Prompt tokens satisfied from the cache: `blocks.len() * BLOCK_TOKENS`
    /// plus any copy-on-write partial tokens.
    pub cached_tokens: usize,
    /// Trie position after the last matched block, for later
    /// [`BlockPool::extend_index`] calls.
    pub cursor: Cursor,
    /// When the walk diverged mid-block: the cached block whose leading
    /// tokens agree with the request. The caller copies it into a private
    /// block (copy-on-write) and recomputes only the divergent tail.
    pub cow_source: Option<BlockId>,
}

/// A serialized KV block chain in flight between replicas: the
/// pool-independent description of one request's resident context that a
/// disaggregated prefill→decode handoff ships across the fleet. Block
/// *identities* are pool-local, so a chain carries only its shape — token
/// and block counts — and is re-materialized by [`BlockPool::adopt_chain`]
/// as freshly allocated private blocks on the receiving pool. The bytes on
/// the wire are modeled by the cluster's migration cost model, not stored
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvChain {
    /// Context tokens the chain holds (prompt + tokens generated so far).
    pub tokens: usize,
    /// Blocks backing those tokens on the source pool.
    pub blocks: usize,
}

/// Per-block pool state.
#[derive(Debug, Clone)]
struct BlockState {
    refs: u32,
    /// The trie node this block backs, if it was ever indexed.
    node: u32,
}

/// A pool of ref-counted KV-cache blocks with a prefix index and LRU
/// eviction: free vs. referenced vs. cached populations, radix matching
/// with copy-on-write, and deterministic leaf-first LRU eviction.
#[derive(Debug, Clone)]
pub struct BlockPool {
    capacity_blocks: usize,
    /// Per-block state for ids below `virgin`; blocks at or above the
    /// watermark have never been touched and are implicitly free, so
    /// constructing a pool is O(1) no matter the capacity.
    states: Vec<BlockState>,
    /// Lowest never-yet-used block id (the lazy tail of the free set).
    virgin: u32,
    /// Explicitly freed blocks, reused LIFO (deterministic).
    free: Vec<u32>,
    index: PrefixIndex,
    /// Evictable trie leaves ordered by `(last_use, node id)` — a total
    /// order, so eviction is deterministic.
    evictable: BTreeSet<(u64, u32)>,
    /// Logical clock advanced on every prefix walk (LRU recency).
    tick: u64,
    /// Blocks with refcount > 0 (kept incrementally so usage queries are
    /// O(1)).
    referenced: usize,
    blocks_evicted: usize,
}

impl BlockPool {
    /// A pool backing `capacity_tokens` tokens of KV cache. Capacity that is
    /// not a whole number of blocks is **rounded down** — a partial block
    /// cannot hold a page of KV.
    pub fn new(capacity_tokens: usize) -> Self {
        let capacity_blocks = capacity_tokens / BLOCK_TOKENS;
        BlockPool {
            capacity_blocks,
            states: Vec::new(),
            virgin: 0,
            free: Vec::new(),
            index: PrefixIndex::default(),
            evictable: BTreeSet::new(),
            tick: 0,
            referenced: 0,
            blocks_evicted: 0,
        }
    }

    /// Total capacity in blocks.
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }

    /// Blocks available without eviction (explicitly freed + never used).
    pub fn free_blocks(&self) -> usize {
        self.free.len() + (self.capacity_blocks - self.virgin as usize)
    }

    /// Take a free block: explicitly freed ones first (LIFO), then the next
    /// never-used id.
    fn take_free(&mut self) -> Option<u32> {
        if let Some(id) = self.free.pop() {
            return Some(id);
        }
        if (self.virgin as usize) < self.capacity_blocks {
            let id = self.virgin;
            self.virgin += 1;
            self.states.push(BlockState {
                refs: 0,
                node: NO_NODE,
            });
            Some(id)
        } else {
            None
        }
    }

    /// Unreferenced blocks still holding cached prefixes. (Counts evictable
    /// leaves plus cached interior nodes, which become evictable once their
    /// children drain.)
    pub fn cached_blocks(&self) -> usize {
        self.capacity_blocks - self.free_blocks() - self.referenced_blocks()
    }

    /// Blocks held by live requests (refcount > 0).
    pub fn referenced_blocks(&self) -> usize {
        self.referenced
    }

    /// A lower bound on the blocks an allocation could obtain right now:
    /// free blocks plus cached chains reclaimable by leaf-first eviction.
    /// Conservative on branching tries (a shared parent only counts once
    /// *both* its children are gone); [`BlockPool::alloc`] itself is greedy
    /// and never relies on this estimate.
    pub fn available_blocks(&self) -> usize {
        // Walk up from every evictable leaf, counting the leaf plus the
        // maximal run of exclusive (single-child, unreferenced) ancestors —
        // exactly the set one sequence of leaf evictions can free.
        let mut seen = std::collections::HashSet::new();
        let mut count = 0usize;
        for &(_, leaf) in &self.evictable {
            if !seen.insert(leaf) {
                continue;
            }
            count += 1;
            let mut at = self.index.node(leaf).parent;
            while at != NO_NODE && seen.insert(at) {
                let node = self.index.node(at);
                if node.children.len() == 1 && self.states[node.block as usize].refs == 0 {
                    count += 1;
                    at = node.parent;
                } else {
                    break;
                }
            }
        }
        // All free blocks count, including the never-yet-used virgin tail —
        // `take_free` draws from both populations.
        self.free_blocks() + count
    }

    /// Blocks evicted over the pool's lifetime.
    pub fn blocks_evicted(&self) -> usize {
        self.blocks_evicted
    }

    /// Allocate `n` private blocks, evicting cached prefixes (LRU,
    /// leaf-first) as needed. Returns `None` — and allocates nothing — if
    /// even eviction cannot free enough; blocks evicted before the shortfall
    /// was discovered stay evicted (their cached prefixes are gone, the
    /// capacity returns to the free list).
    pub fn alloc(&mut self, n: usize) -> Option<Vec<BlockId>> {
        // O(1) reject for the common can't-fit case (admission retries every
        // iteration while the pool is full): at most every non-referenced
        // block could be obtained, so asking for more can never succeed and
        // must not churn through a doomed evict-and-roll-back pass.
        if n > self.capacity_blocks - self.referenced {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let id = match self.take_free().or_else(|| self.evict_one()) {
                Some(id) => id,
                None => {
                    // Roll back: nothing is handed out on failure.
                    for BlockId(id) in out {
                        self.states[id as usize].refs = 0;
                        self.referenced -= 1;
                        self.free.push(id);
                    }
                    return None;
                }
            };
            debug_assert_eq!(self.states[id as usize].refs, 0);
            debug_assert_eq!(self.states[id as usize].node, NO_NODE);
            self.states[id as usize].refs = 1;
            self.referenced += 1;
            out.push(BlockId(id));
        }
        Some(out)
    }

    /// Evict the least-recently-used evictable leaf, returning its block id.
    fn evict_one(&mut self) -> Option<u32> {
        let &(stamp, leaf) = self.evictable.iter().next()?;
        self.evictable.remove(&(stamp, leaf));
        let (block, parent) = self.index.remove_leaf(leaf);
        debug_assert_eq!(self.states[block as usize].refs, 0);
        self.states[block as usize].node = NO_NODE;
        self.blocks_evicted += 1;
        // The parent may now be an evictable leaf itself.
        if parent.0 != NO_NODE {
            let p = self.index.node(parent.0);
            if p.children.is_empty() && self.states[p.block as usize].refs == 0 {
                self.evictable.insert((p.last_use, parent.0));
            }
        }
        Some(block)
    }

    /// Release one reference on every block in `blocks`. Blocks that were
    /// indexed stay cached (becoming evictable once they are leaves);
    /// anonymous blocks return to the free list.
    pub fn release(&mut self, blocks: &[BlockId]) {
        for &BlockId(id) in blocks {
            let state = &mut self.states[id as usize];
            debug_assert!(state.refs > 0, "releasing an unreferenced block");
            state.refs -= 1;
            if state.refs > 0 {
                continue;
            }
            self.referenced -= 1;
            if state.node == NO_NODE {
                self.free.push(id);
            } else {
                let node = self.index.node(state.node);
                if node.children.is_empty() {
                    self.evictable.insert((node.last_use, state.node));
                }
            }
        }
    }

    /// Serialize a request's block chain for a cross-replica KV handoff:
    /// release every block locally (indexed blocks stay cached for other
    /// sharers) and return the pool-independent [`KvChain`] descriptor a
    /// decode replica re-materializes via [`BlockPool::adopt_chain`].
    /// `tokens` is the context the chain holds (prompt + generated so far);
    /// the transfer *cost* of those tokens is the cluster migration model's
    /// job, not the pool's.
    pub fn export_chain(&mut self, blocks: &[BlockId], tokens: usize) -> KvChain {
        let chain = KvChain {
            tokens,
            blocks: blocks.len(),
        };
        self.release(blocks);
        chain
    }

    /// Re-materialize a migrated chain on this pool: allocate `chain.blocks`
    /// fresh private blocks (evicting cached prefixes LRU-first as needed),
    /// standing in for the KV pages the transfer delivered. Returns `None` —
    /// and allocates nothing — when even eviction cannot make room; the
    /// import retries once residents free capacity. Adopted blocks are
    /// private (never entered into the prefix index): block fingerprints are
    /// pool-local, so a migrated chain cannot be proven equal to a cached
    /// one here.
    pub fn adopt_chain(&mut self, chain: KvChain) -> Option<Vec<BlockId>> {
        self.alloc(chain.blocks)
    }

    /// Longest cached prefix of `content`'s stream available right now,
    /// capped at `limit_tokens`, **without touching any state** — the
    /// side-effect-free form routers use to measure affinity.
    pub fn peek_prefix(&self, content: PromptContent, limit_tokens: usize) -> usize {
        if !content.is_shareable() {
            return 0;
        }
        let mut cursor = Cursor::root();
        let mut matched = 0usize;
        while matched + BLOCK_TOKENS <= limit_tokens {
            let tokens = block_tokens(content, matched / BLOCK_TOKENS);
            match self.index.child_matching(cursor, &tokens) {
                Some(idx) => {
                    cursor = Cursor(idx);
                    matched += BLOCK_TOKENS;
                }
                None => break,
            }
        }
        matched
            + self
                .partial_match_len(cursor, content, matched, limit_tokens)
                .0
    }

    /// Longest common leading run between `content`'s tokens from stream
    /// position `from` and any child of `cursor`, capped at `limit`. Returns
    /// `(length, child node)`. Deterministic: best length wins, ties break on
    /// the smallest node id, so hash-map order never matters.
    fn partial_match_len(
        &self,
        cursor: Cursor,
        content: PromptContent,
        from: usize,
        limit_tokens: usize,
    ) -> (usize, Option<u32>) {
        let span = (limit_tokens - from).min(BLOCK_TOKENS);
        if span == 0 {
            return (0, None);
        }
        let want: Vec<u64> = (0..span)
            .map(|i| content.token_at(from + i).expect("shareable content"))
            .collect();
        let mut best = (0usize, None);
        for &child in self.index.children_of(cursor).values() {
            let node = self.index.node(child);
            let common = want
                .iter()
                .zip(node.tokens.iter())
                .take_while(|(a, b)| a == b)
                .count();
            let better = common > best.0
                || (common == best.0 && common > 0 && best.1.is_some_and(|b| child < b));
            if better {
                best = (common, Some(child));
            }
        }
        if best.0 == 0 {
            (0, None)
        } else {
            best
        }
    }

    /// Walk the prefix index for `content` and acquire every matched block
    /// (incrementing refcounts and refreshing LRU recency). `limit_tokens`
    /// caps the match — callers pass one less than the tokens they must
    /// compute so at least one token is always left to prefill.
    ///
    /// If the walk diverges mid-block against a cached block, the result
    /// carries that block as [`PrefixMatch::cow_source`] and counts its
    /// common leading tokens in `cached_tokens`; the caller copies it into
    /// one of its own freshly allocated blocks. The source is **pinned**
    /// (its refcount incremented) so allocations made before the copy cannot
    /// evict it; the caller must [`release`](BlockPool::release) it once the
    /// copy is done.
    pub fn acquire_prefix(&mut self, content: PromptContent, limit_tokens: usize) -> PrefixMatch {
        let mut m = PrefixMatch::default();
        if !content.is_shareable() {
            return m;
        }
        self.tick += 1;
        let stamp = self.tick;
        while m.cached_tokens + BLOCK_TOKENS <= limit_tokens {
            let tokens = block_tokens(content, m.cached_tokens / BLOCK_TOKENS);
            let Some(idx) = self.index.child_matching(m.cursor, &tokens) else {
                break;
            };
            let block = self.index.node(idx).block;
            let state = &mut self.states[block as usize];
            if state.refs == 0 {
                self.referenced += 1;
                // Leaving the cached set: no longer evictable.
                let old = self.index.node(idx).last_use;
                self.evictable.remove(&(old, idx));
            }
            state.refs += 1;
            self.index.node_mut(idx).last_use = stamp;
            m.blocks.push(BlockId(block));
            m.cached_tokens += BLOCK_TOKENS;
            m.cursor = Cursor(idx);
        }
        let (extra, child) =
            self.partial_match_len(m.cursor, content, m.cached_tokens, limit_tokens);
        if extra > 0 {
            let child = child.expect("partial match has a source node");
            let block = self.index.node(child).block;
            // Pin the source exactly like a full match, so it survives any
            // same-admission allocation; the caller releases it post-copy.
            let state = &mut self.states[block as usize];
            if state.refs == 0 {
                self.referenced += 1;
                let old = self.index.node(child).last_use;
                self.evictable.remove(&(old, child));
            }
            self.states[block as usize].refs += 1;
            self.index.node_mut(child).last_use = stamp;
            m.cow_source = Some(BlockId(block));
            m.cached_tokens += extra;
        }
        m
    }

    /// Register `blocks` — the caller's own, already-computed, full blocks
    /// starting at block index `start_block` of `content`'s stream — in the
    /// prefix index, resuming from `cursor`. Returns the new cursor and how
    /// many of `blocks` were registered (callers must not advance their
    /// indexing watermark past a short count: the chain is shared or
    /// collided there, and indexing from a stale cursor would splice wrong
    /// prefixes together).
    ///
    /// The caller must hold references to the blocks along `cursor`'s path
    /// (the engine always does: they are the request's acquired or own
    /// blocks), which is what keeps returned cursors safe from eviction. If
    /// an identical chain already exists (two identical prompts admitted
    /// before either computed its blocks), indexing **stops** rather than
    /// walking into nodes the caller holds no reference to; the duplicate
    /// blocks simply stay private.
    pub fn extend_index(
        &mut self,
        mut cursor: Cursor,
        content: PromptContent,
        start_block: usize,
        blocks: &[BlockId],
    ) -> (Cursor, usize) {
        debug_assert!(content.is_shareable());
        let mut registered = 0usize;
        for (i, &BlockId(block)) in blocks.iter().enumerate() {
            let tokens = block_tokens(content, start_block + i);
            if self.index.child_matching(cursor, &tokens).is_some() {
                // An equal chain already exists; following it would leave the
                // caller with a cursor into blocks it does not reference.
                break;
            }
            // Defensive: a cursor node gaining a child can no longer be an
            // evictable leaf.
            if cursor.0 != NO_NODE {
                let lu = self.index.node(cursor.0).last_use;
                self.evictable.remove(&(lu, cursor.0));
            }
            match self.index.insert_child(cursor, tokens, block) {
                Some(idx) => {
                    debug_assert_eq!(self.states[block as usize].node, NO_NODE);
                    self.states[block as usize].node = idx;
                    self.index.node_mut(idx).last_use = self.tick;
                    cursor = Cursor(idx);
                    registered += 1;
                }
                // Hash collision with different content: leave both private.
                None => break,
            }
        }
        (cursor, registered)
    }

    /// Number of prefixes currently indexed (diagnostics).
    pub fn indexed_blocks(&self) -> usize {
        self.index.len()
    }
}

/// Fingerprints of block `block_idx` of `content`'s stream.
fn block_tokens(content: PromptContent, block_idx: usize) -> BlockTokens {
    let base = block_idx * BLOCK_TOKENS;
    std::array::from_fn(|i| {
        content
            .token_at(base + i)
            .expect("block_tokens requires shareable content")
    })
}

/// Hash of a block's token fingerprints (FNV-1a over the 64-bit ids).
fn hash_block(tokens: &BlockTokens) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &t in tokens {
        h ^= t;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn content(lineage: u64) -> PromptContent {
        PromptContent::unique(lineage)
    }

    #[test]
    fn capacity_rounds_down_to_whole_blocks() {
        let pool = BlockPool::new(BLOCK_TOKENS * 10 + 7);
        assert_eq!(pool.capacity_blocks(), 10);
        assert_eq!(pool.free_blocks(), 10);
    }

    #[test]
    fn alloc_and_release_round_trip() {
        let mut pool = BlockPool::new(BLOCK_TOKENS * 8);
        let a = pool.alloc(3).expect("fits");
        assert_eq!(pool.free_blocks(), 5);
        assert_eq!(pool.referenced_blocks(), 3);
        assert!(pool.alloc(6).is_none(), "over-allocation must fail whole");
        assert_eq!(pool.free_blocks(), 5, "failed alloc must not consume");
        pool.release(&a);
        assert_eq!(pool.free_blocks(), 8);
        assert_eq!(pool.referenced_blocks(), 0);
    }

    #[test]
    fn index_match_and_share() {
        let mut pool = BlockPool::new(BLOCK_TOKENS * 16);
        let c = content(1);
        // Request A computes 4 full blocks and indexes them.
        let a = pool.alloc(4).unwrap();
        let (cur, n) = pool.extend_index(Cursor::root(), c, 0, &a);
        assert_ne!(cur, Cursor::root());
        assert_eq!(n, 4);
        assert_eq!(pool.indexed_blocks(), 4);

        // An identical request matches all 4 (capped below 5 blocks).
        let m = pool.acquire_prefix(c, 4 * BLOCK_TOKENS + 5);
        assert_eq!(m.blocks, a);
        assert_eq!(m.cached_tokens, 4 * BLOCK_TOKENS);
        assert!(m.cow_source.is_none());
        // Shared blocks are referenced twice now.
        pool.release(&m.blocks);
        pool.release(&a);
        // Fully released: cached, not free.
        assert_eq!(pool.referenced_blocks(), 0);
        assert_eq!(pool.cached_blocks(), 4);
        assert_eq!(pool.free_blocks(), 12);

        // A different lineage matches nothing.
        assert_eq!(pool.peek_prefix(content(2), 1024), 0);
        // Opaque content never matches.
        assert_eq!(pool.peek_prefix(PromptContent::Opaque, 1024), 0);
    }

    #[test]
    fn match_is_capped_by_limit() {
        let mut pool = BlockPool::new(BLOCK_TOKENS * 16);
        let c = content(3);
        let a = pool.alloc(4).unwrap();
        pool.extend_index(Cursor::root(), c, 0, &a);
        // A prompt of exactly 2 blocks + 1 token, capped at prompt-1: only
        // the first 2 full blocks match even though 4 are cached.
        let limit = 2 * BLOCK_TOKENS; // (2 blocks + 1 token) - 1
        let m = pool.acquire_prefix(c, limit);
        assert_eq!(m.blocks.len(), 2);
        // The third cached block partially covers the remaining 0 tokens —
        // nothing more to take.
        assert_eq!(m.cached_tokens, 2 * BLOCK_TOKENS);
        pool.release(&m.blocks);
        pool.release(&a);
    }

    #[test]
    fn copy_on_write_reuses_the_common_leading_tokens() {
        let mut pool = BlockPool::new(BLOCK_TOKENS * 16);
        // Conversation lineage 9: cache a 2-block chain.
        let c_long = content(9);
        let a = pool.alloc(2).unwrap();
        pool.extend_index(Cursor::root(), c_long, 0, &a);
        // A second request shares block 0 fully; its prompt ends 5 tokens
        // into block 1 (prompt = 16 + 5 = 21 tokens, limit 20 with the
        // one-token cap). Same stream => the 4 leading tokens of block 1
        // agree => copy-on-write.
        let m = pool.acquire_prefix(c_long, 20);
        assert_eq!(m.blocks.len(), 1, "one full block matched");
        assert_eq!(m.cow_source, Some(a[1]));
        assert_eq!(m.cached_tokens, 20, "16 full + 4 partial tokens");
        // The source is pinned: even releasing the original owner leaves it
        // referenced, so a same-admission allocation cannot evict it before
        // the copy happens.
        pool.release(&a);
        assert_eq!(pool.referenced_blocks(), 2);
        pool.release(&[m.cow_source.unwrap()]);
        pool.release(&m.blocks);
        assert_eq!(pool.referenced_blocks(), 0);
        assert_eq!(pool.cached_blocks(), 2);
    }

    #[test]
    fn divergent_streams_do_not_cow_match() {
        let mut pool = BlockPool::new(BLOCK_TOKENS * 16);
        let a = pool.alloc(1).unwrap();
        pool.extend_index(Cursor::root(), content(1), 0, &a);
        // A different lineage diverges at token 0: no partial match.
        let m = pool.acquire_prefix(content(2), BLOCK_TOKENS - 1);
        assert!(m.blocks.is_empty());
        assert_eq!(m.cached_tokens, 0);
        assert!(m.cow_source.is_none());
        pool.release(&a);
    }

    #[test]
    fn lru_evicts_oldest_leaf_first() {
        let mut pool = BlockPool::new(BLOCK_TOKENS * 4);
        // Two single-block chains, released in order 1 then 2.
        let b1 = pool.alloc(1).unwrap();
        pool.extend_index(Cursor::root(), content(1), 0, &b1);
        let b2 = pool.alloc(1).unwrap();
        pool.extend_index(Cursor::root(), content(2), 0, &b2);
        pool.release(&b1);
        pool.release(&b2);
        // Touch chain 1 so chain 2 becomes the LRU.
        let m = pool.acquire_prefix(content(1), BLOCK_TOKENS);
        pool.release(&m.blocks);
        assert_eq!(pool.cached_blocks(), 2);

        // Allocating 3 blocks: 2 free + 1 eviction, which must take chain 2.
        let big = pool.alloc(3).expect("eviction frees the LRU leaf");
        assert_eq!(pool.blocks_evicted(), 1);
        assert_eq!(pool.peek_prefix(content(1), BLOCK_TOKENS), BLOCK_TOKENS);
        assert_eq!(pool.peek_prefix(content(2), BLOCK_TOKENS), 0);
        pool.release(&big);
    }

    #[test]
    fn chains_evict_leaf_first_then_parent() {
        let mut pool = BlockPool::new(BLOCK_TOKENS * 3);
        let chain = pool.alloc(3).unwrap();
        pool.extend_index(Cursor::root(), content(7), 0, &chain);
        pool.release(&chain);
        assert_eq!(pool.cached_blocks(), 3);
        assert_eq!(pool.available_blocks(), 3, "whole chain is reclaimable");

        // One allocation must evict the *tail* block: the 2-block prefix
        // stays matchable.
        let one = pool.alloc(1).unwrap();
        assert_eq!(
            pool.peek_prefix(content(7), 3 * BLOCK_TOKENS),
            2 * BLOCK_TOKENS
        );
        let two = pool.alloc(2).unwrap();
        assert_eq!(pool.peek_prefix(content(7), 3 * BLOCK_TOKENS), 0);
        assert_eq!(pool.blocks_evicted(), 3);
        pool.release(&one);
        pool.release(&two);
        assert_eq!(pool.free_blocks(), 3);
    }

    #[test]
    fn referenced_blocks_are_never_evicted() {
        let mut pool = BlockPool::new(BLOCK_TOKENS * 2);
        let chain = pool.alloc(2).unwrap();
        pool.extend_index(Cursor::root(), content(5), 0, &chain);
        // Still referenced: nothing is available beyond the free list.
        assert_eq!(pool.available_blocks(), 0);
        assert!(pool.alloc(1).is_none());
        pool.release(&chain);
        assert_eq!(pool.available_blocks(), 2);
    }

    #[test]
    fn resident_decode_pins_shared_blocks_against_eviction() {
        let mut pool = BlockPool::new(BLOCK_TOKENS * 4);
        // One request computes and indexes a 2-block chain...
        let owner = pool.alloc(2).unwrap();
        pool.extend_index(Cursor::root(), content(11), 0, &owner);
        // ...and a "running decode" acquires that shared prefix.
        let decode = pool.acquire_prefix(content(11), 2 * BLOCK_TOKENS);
        assert_eq!(decode.blocks, owner);
        // The original owner finishes; the decode still references the chain.
        pool.release(&owner);
        assert_eq!(pool.referenced_blocks(), 2);
        // Allocation pressure must refuse rather than evict blocks a running
        // decode references: the chain is not in the evictable population.
        assert_eq!(pool.available_blocks(), 2);
        assert!(
            pool.alloc(3).is_none(),
            "must not evict a resident decode's shared blocks"
        );
        assert_eq!(pool.blocks_evicted(), 0);
        assert_eq!(
            pool.peek_prefix(content(11), 2 * BLOCK_TOKENS),
            2 * BLOCK_TOKENS,
            "the decode's prefix is intact after the refused allocation"
        );
        // Only once the decode releases does the chain become reclaimable.
        pool.release(&decode.blocks);
        assert_eq!(pool.available_blocks(), 4);
        let big = pool.alloc(4).expect("released chain is now evictable");
        assert_eq!(pool.blocks_evicted(), 2);
        pool.release(&big);
    }

    #[test]
    fn identical_chains_indexed_twice_keep_the_duplicate_private() {
        let mut pool = BlockPool::new(BLOCK_TOKENS * 8);
        let c = content(4);
        let a = pool.alloc(2).unwrap();
        pool.extend_index(Cursor::root(), c, 0, &a);
        // A concurrent identical request computed its own copies before
        // matching; indexing stops at the existing chain (descending would
        // leave the caller with a cursor into blocks it never referenced).
        let b = pool.alloc(2).unwrap();
        let (cur, n) = pool.extend_index(Cursor::root(), c, 0, &b);
        assert_eq!(cur, Cursor::root());
        assert_eq!(n, 0, "nothing registered over an existing chain");
        assert_eq!(pool.indexed_blocks(), 2, "no duplicate nodes");
        pool.release(&a);
        pool.release(&b);
        // The duplicates were private: they return to the free list.
        assert_eq!(pool.free_blocks(), 6);
        assert_eq!(pool.cached_blocks(), 2);
    }

    /// Property: over random alloc / index / match / release traffic the
    /// three populations always partition the capacity, availability is
    /// honored exactly, and draining every reference leaves only cached or
    /// free blocks.
    #[test]
    fn random_traffic_never_leaks_or_double_books() {
        let mut rng = SplitMix64::seed_from_u64(0xB10C_CA5E);
        for case in 0..30 {
            let capacity = 4 + rng.next_usize(40);
            let mut pool = BlockPool::new(capacity * BLOCK_TOKENS);
            // Live "requests": (blocks, lineage, indexed?).
            let mut live: Vec<(Vec<BlockId>, u64, bool)> = Vec::new();
            for step in 0..300 {
                match rng.next_usize(4) {
                    // Admit: match + alloc a 1..6-block chain.
                    0 | 1 => {
                        let lineage = 1 + rng.next_usize(6) as u64;
                        let want = 1 + rng.next_usize(5);
                        let c = content(lineage);
                        let m = pool.acquire_prefix(c, want * BLOCK_TOKENS);
                        let need = want - m.blocks.len();
                        let mut blocks = m.blocks;
                        match pool.alloc(need) {
                            Some(fresh) => {
                                blocks.extend(fresh);
                                live.push((blocks, lineage, false));
                            }
                            None => pool.release(&blocks),
                        }
                    }
                    // Index a live chain.
                    2 => {
                        if let Some(i) = (!live.is_empty()).then(|| rng.next_usize(live.len())) {
                            let (blocks, lineage, indexed) = &mut live[i];
                            if !*indexed {
                                pool.extend_index(
                                    Cursor::root(),
                                    content(*lineage),
                                    0,
                                    &blocks.clone(),
                                );
                                *indexed = true;
                            }
                        }
                    }
                    // Release a live chain.
                    _ => {
                        if !live.is_empty() {
                            let (blocks, _, _) = live.swap_remove(rng.next_usize(live.len()));
                            pool.release(&blocks);
                        }
                    }
                }
                let used = pool.referenced_blocks();
                let cached = pool.cached_blocks();
                let free = pool.free_blocks();
                assert_eq!(
                    used + cached + free,
                    capacity,
                    "case {case} step {step}: populations must partition capacity"
                );
                assert!(pool.available_blocks() <= cached + free);
            }
            for (blocks, _, _) in live.drain(..) {
                pool.release(&blocks);
            }
            assert_eq!(pool.referenced_blocks(), 0, "case {case}: leaked refs");
            assert_eq!(
                pool.cached_blocks() + pool.free_blocks(),
                capacity,
                "case {case}: blocks lost"
            );
            // Everything cached is reclaimable once nothing is referenced.
            assert_eq!(pool.available_blocks(), capacity);
        }
    }
}
