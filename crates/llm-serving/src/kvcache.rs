//! Paged KV-cache capacity management: a compatible facade over the
//! prefix-sharing block subsystem ([`BlockPool`] + [`crate::PrefixIndex`]).
//!
//! The serving engine needs to know how many requests can be resident at once
//! given the GPU memory left after model weights. Allocation is tracked in
//! fixed-size blocks of tokens (as in vLLM's PagedAttention). Historically
//! this type was a bare block *counter*; it now fronts a real
//! [`BlockPool`] with per-block identity, so the same facade serves both
//! worlds:
//!
//! * the **conservative** token-count API ([`reserve`](KvCacheManager::reserve)
//!   / [`release`](KvCacheManager::release)) used by Sarathi-Serve's
//!   no-preemption admission — block-for-block identical to the old counter;
//! * the **paged** API ([`acquire_prefix`](KvCacheManager::acquire_prefix),
//!   [`alloc_blocks`](KvCacheManager::alloc_blocks), …) used by the
//!   prefix-sharing engine mode, which matches prompts against the radix
//!   [`crate::PrefixIndex`], shares blocks copy-on-write, and evicts cached
//!   prefixes LRU-first.

use crate::blocks::{blocks_for, BlockId, BlockPool, Cursor, KvChain, PrefixMatch};
use crate::request::PromptContent;

pub use crate::blocks::BLOCK_TOKENS;

/// Tracks KV-cache block usage on one GPU (replicated across the
/// tensor-parallel group, so one GPU's capacity is the binding constraint).
#[derive(Debug, Clone)]
pub struct KvCacheManager {
    pool: BlockPool,
    /// Blocks held by anonymous token-count reservations (the conservative
    /// API). Anonymous blocks are interchangeable and never enter the prefix
    /// index, so they are pure O(1) accounting against the pool's capacity —
    /// exactly the historical counter — rather than materialized block ids.
    /// The two facade halves are not mixed on one manager: the engine uses
    /// the token-count API under `KvCachePolicy::Conservative` and the block
    /// API under `KvCachePolicy::Paged`, never both.
    anon_blocks: usize,
}

impl KvCacheManager {
    /// A manager with capacity for `capacity_tokens` tokens.
    ///
    /// Capacity that is not a whole multiple of [`BLOCK_TOKENS`] is
    /// **rounded down** to the nearest block boundary: a partial block
    /// cannot hold a KV page, so `new(1000)` yields
    /// `capacity_tokens() == 992` (62 blocks), not 1000.
    pub fn new(capacity_tokens: usize) -> Self {
        KvCacheManager {
            pool: BlockPool::new(capacity_tokens),
            anon_blocks: 0,
        }
    }

    /// Blocks referenced through either facade half.
    fn used_blocks(&self) -> usize {
        self.anon_blocks + self.pool.referenced_blocks()
    }

    /// Total capacity in tokens (rounded down to whole blocks; see
    /// [`KvCacheManager::new`]).
    pub fn capacity_tokens(&self) -> usize {
        self.pool.capacity_blocks() * BLOCK_TOKENS
    }

    /// Tokens currently reserved by live requests.
    pub fn used_tokens(&self) -> usize {
        self.used_blocks() * BLOCK_TOKENS
    }

    /// Tokens still available to reservations: free blocks plus cached
    /// prefixes that eviction can reclaim (with the conservative API nothing
    /// is ever cached, so this is exactly capacity minus used).
    pub fn free_tokens(&self) -> usize {
        (self.pool.capacity_blocks() - self.used_blocks()) * BLOCK_TOKENS
    }

    /// Number of blocks needed for `tokens` tokens.
    pub fn blocks_for(tokens: usize) -> usize {
        blocks_for(tokens)
    }

    /// Whether a reservation of `tokens` tokens would fit right now.
    pub fn can_reserve(&self, tokens: usize) -> bool {
        self.used_blocks() + Self::blocks_for(tokens) <= self.pool.capacity_blocks()
    }

    /// Reserve `tokens` tokens. Returns `false` (and reserves nothing) if the
    /// cache does not have room.
    pub fn reserve(&mut self, tokens: usize) -> bool {
        if !self.can_reserve(tokens) {
            return false;
        }
        self.anon_blocks += Self::blocks_for(tokens);
        true
    }

    /// Release a reservation of `tokens` tokens.
    ///
    /// # Panics
    ///
    /// Panics if more tokens are released than are currently reserved, which
    /// would indicate an accounting bug in the engine.
    pub fn release(&mut self, tokens: usize) {
        let blocks = Self::blocks_for(tokens);
        assert!(
            blocks <= self.anon_blocks,
            "releasing {blocks} blocks but only {} are in use",
            self.anon_blocks
        );
        self.anon_blocks -= blocks;
    }

    /// Fraction of the cache currently referenced by live requests.
    pub fn utilization(&self) -> f64 {
        if self.pool.capacity_blocks() == 0 {
            return 0.0;
        }
        self.used_blocks() as f64 / self.pool.capacity_blocks() as f64
    }

    // ----- paged API (prefix sharing, growth, eviction) -----

    /// Longest cached prefix available for `content`, capped at
    /// `limit_tokens`, without touching any state (router affinity probes).
    pub fn peek_prefix(&self, content: PromptContent, limit_tokens: usize) -> usize {
        self.pool.peek_prefix(content, limit_tokens)
    }

    /// Match `content` against the prefix index and acquire every matched
    /// block. See [`BlockPool::acquire_prefix`].
    pub fn acquire_prefix(&mut self, content: PromptContent, limit_tokens: usize) -> PrefixMatch {
        self.pool.acquire_prefix(content, limit_tokens)
    }

    /// Allocate `n` private blocks, evicting cached prefixes as needed. See
    /// [`BlockPool::alloc`].
    pub fn alloc_blocks(&mut self, n: usize) -> Option<Vec<BlockId>> {
        self.pool.alloc(n)
    }

    /// Release one reference on every block in `blocks`. See
    /// [`BlockPool::release`].
    pub fn release_blocks(&mut self, blocks: &[BlockId]) {
        self.pool.release(blocks);
    }

    /// Register computed full blocks in the prefix index, returning the new
    /// cursor and how many blocks were registered. See
    /// [`BlockPool::extend_index`].
    pub fn extend_index(
        &mut self,
        cursor: Cursor,
        content: PromptContent,
        start_block: usize,
        blocks: &[BlockId],
    ) -> (Cursor, usize) {
        self.pool.extend_index(cursor, content, start_block, blocks)
    }

    /// Serialize a block chain for a cross-replica KV handoff (releasing it
    /// locally). See [`BlockPool::export_chain`].
    pub fn export_chain(&mut self, blocks: &[BlockId], tokens: usize) -> KvChain {
        self.pool.export_chain(blocks, tokens)
    }

    /// Re-materialize a migrated chain as fresh private blocks. See
    /// [`BlockPool::adopt_chain`].
    pub fn adopt_chain(&mut self, chain: KvChain) -> Option<Vec<BlockId>> {
        self.pool.adopt_chain(chain)
    }

    /// Blocks holding cached (unreferenced but reusable) prefixes.
    pub fn cached_blocks(&self) -> usize {
        self.pool.cached_blocks()
    }

    /// Cached blocks evicted over the manager's lifetime.
    pub fn blocks_evicted(&self) -> usize {
        self.pool.blocks_evicted()
    }

    /// The underlying block pool (diagnostics and tests).
    pub fn pool(&self) -> &BlockPool {
        &self.pool
    }
}

impl PartialEq for KvCacheManager {
    /// Managers compare by observable capacity accounting (capacity and
    /// referenced blocks), not by internal block identity — reservation
    /// histories that lead to the same occupancy are equal.
    fn eq(&self, other: &Self) -> bool {
        self.pool.capacity_blocks() == other.pool.capacity_blocks()
            && self.used_blocks() == other.used_blocks()
    }
}

impl Eq for KvCacheManager {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_round_trip() {
        let mut kv = KvCacheManager::new(1024);
        assert_eq!(kv.capacity_tokens(), 1024);
        assert!(kv.reserve(100));
        assert_eq!(kv.used_tokens(), 112); // rounded up to 7 blocks
        kv.release(100);
        assert_eq!(kv.used_tokens(), 0);
    }

    #[test]
    fn admission_fails_when_full() {
        let mut kv = KvCacheManager::new(160);
        assert!(kv.reserve(128));
        assert!(!kv.can_reserve(64));
        assert!(!kv.reserve(64));
        assert!(kv.reserve(32));
        assert_eq!(kv.free_tokens(), 0);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let mut kv = KvCacheManager::new(320);
        assert_eq!(kv.utilization(), 0.0);
        kv.reserve(160);
        assert!((kv.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut kv = KvCacheManager::new(320);
        kv.release(32);
    }

    #[test]
    fn blocks_round_up() {
        assert_eq!(KvCacheManager::blocks_for(1), 1);
        assert_eq!(KvCacheManager::blocks_for(16), 1);
        assert_eq!(KvCacheManager::blocks_for(17), 2);
    }

    /// Regression for the silent-truncation fix: capacity that is not a
    /// multiple of [`BLOCK_TOKENS`] rounds down explicitly, and every
    /// accounting quantity agrees with the rounded capacity.
    #[test]
    fn capacity_rounds_down_to_a_block_multiple() {
        for (given, expect) in [(1000, 992), (15, 0), (16, 16), (17, 16), (0, 0)] {
            let kv = KvCacheManager::new(given);
            assert_eq!(kv.capacity_tokens(), expect, "capacity_tokens({given})");
            assert_eq!(kv.free_tokens(), expect, "free_tokens({given})");
            assert_eq!(kv.capacity_tokens() % BLOCK_TOKENS, 0);
        }
        // A sub-block manager admits nothing, gracefully.
        let mut tiny = KvCacheManager::new(BLOCK_TOKENS - 1);
        assert!(!tiny.can_reserve(1));
        assert!(!tiny.reserve(1));
        assert_eq!(tiny.utilization(), 0.0);
    }

    /// Property: over arbitrary admit/free cycles, block accounting never
    /// leaks — used + free always equals capacity, a failed reserve changes
    /// nothing, and once every successful reservation is released the cache
    /// is exactly empty again.
    #[test]
    fn random_admit_free_cycles_never_leak_blocks() {
        let mut rng = crate::rng::SplitMix64::seed_from_u64(0xB10C5);
        for case in 0..50 {
            let capacity_tokens = (1 + rng.next_usize(64)) * BLOCK_TOKENS;
            let mut kv = KvCacheManager::new(capacity_tokens);
            let mut live: Vec<usize> = Vec::new();
            for step in 0..200 {
                let admit = live.is_empty() || rng.next_usize(2) == 0;
                if admit {
                    let tokens = 1 + rng.next_usize(capacity_tokens + 32);
                    let before_used = kv.used_tokens();
                    let fits = kv.can_reserve(tokens);
                    let reserved = kv.reserve(tokens);
                    assert_eq!(
                        fits, reserved,
                        "case {case} step {step}: can_reserve and reserve disagree"
                    );
                    if reserved {
                        live.push(tokens);
                    } else {
                        assert_eq!(
                            kv.used_tokens(),
                            before_used,
                            "case {case} step {step}: failed reserve must not change usage"
                        );
                    }
                } else {
                    let tokens = live.swap_remove(rng.next_usize(live.len()));
                    kv.release(tokens);
                }
                let expected_used: usize = live
                    .iter()
                    .map(|&t| KvCacheManager::blocks_for(t) * BLOCK_TOKENS)
                    .sum();
                assert_eq!(
                    kv.used_tokens(),
                    expected_used,
                    "case {case} step {step}: usage must equal the live reservations"
                );
                assert_eq!(
                    kv.used_tokens() + kv.free_tokens(),
                    kv.capacity_tokens(),
                    "case {case} step {step}: used + free must equal capacity"
                );
                assert!(kv.utilization() <= 1.0);
            }
            for tokens in live.drain(..) {
                kv.release(tokens);
            }
            assert_eq!(kv.used_tokens(), 0, "case {case}: blocks leaked");
            assert_eq!(kv.utilization(), 0.0);
        }
    }
}
