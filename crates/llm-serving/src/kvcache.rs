//! Paged KV-cache capacity management.
//!
//! The serving engine needs to know how many requests can be resident at once
//! given the GPU memory left after model weights. Allocation is tracked in
//! fixed-size blocks of tokens (as in vLLM's PagedAttention), and a request
//! is only admitted when its full prompt plus its expected output fits —
//! which is the conservative admission policy Sarathi-Serve uses to avoid
//! preemptions.

/// Tokens per KV-cache block.
pub const BLOCK_TOKENS: usize = 16;

/// Tracks KV-cache block usage on one GPU (replicated across the
/// tensor-parallel group, so one GPU's capacity is the binding constraint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvCacheManager {
    capacity_blocks: usize,
    used_blocks: usize,
}

impl KvCacheManager {
    /// A manager with capacity for `capacity_tokens` tokens.
    pub fn new(capacity_tokens: usize) -> Self {
        KvCacheManager {
            capacity_blocks: capacity_tokens / BLOCK_TOKENS,
            used_blocks: 0,
        }
    }

    /// Total capacity in tokens.
    pub fn capacity_tokens(&self) -> usize {
        self.capacity_blocks * BLOCK_TOKENS
    }

    /// Tokens currently reserved.
    pub fn used_tokens(&self) -> usize {
        self.used_blocks * BLOCK_TOKENS
    }

    /// Tokens still available.
    pub fn free_tokens(&self) -> usize {
        (self.capacity_blocks - self.used_blocks) * BLOCK_TOKENS
    }

    /// Number of blocks needed for `tokens` tokens.
    pub fn blocks_for(tokens: usize) -> usize {
        tokens.div_ceil(BLOCK_TOKENS)
    }

    /// Whether a reservation of `tokens` tokens would fit right now.
    pub fn can_reserve(&self, tokens: usize) -> bool {
        self.used_blocks + Self::blocks_for(tokens) <= self.capacity_blocks
    }

    /// Reserve `tokens` tokens. Returns `false` (and reserves nothing) if the
    /// cache does not have room.
    pub fn reserve(&mut self, tokens: usize) -> bool {
        let blocks = Self::blocks_for(tokens);
        if self.used_blocks + blocks > self.capacity_blocks {
            return false;
        }
        self.used_blocks += blocks;
        true
    }

    /// Release a reservation of `tokens` tokens.
    ///
    /// # Panics
    ///
    /// Panics if more tokens are released than are currently reserved, which
    /// would indicate an accounting bug in the engine.
    pub fn release(&mut self, tokens: usize) {
        let blocks = Self::blocks_for(tokens);
        assert!(
            blocks <= self.used_blocks,
            "releasing {blocks} blocks but only {} are in use",
            self.used_blocks
        );
        self.used_blocks -= blocks;
    }

    /// Fraction of the cache currently in use.
    pub fn utilization(&self) -> f64 {
        if self.capacity_blocks == 0 {
            return 0.0;
        }
        self.used_blocks as f64 / self.capacity_blocks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_round_trip() {
        let mut kv = KvCacheManager::new(1024);
        assert_eq!(kv.capacity_tokens(), 1024);
        assert!(kv.reserve(100));
        assert_eq!(kv.used_tokens(), 112); // rounded up to 7 blocks
        kv.release(100);
        assert_eq!(kv.used_tokens(), 0);
    }

    #[test]
    fn admission_fails_when_full() {
        let mut kv = KvCacheManager::new(160);
        assert!(kv.reserve(128));
        assert!(!kv.can_reserve(64));
        assert!(!kv.reserve(64));
        assert!(kv.reserve(32));
        assert_eq!(kv.free_tokens(), 0);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let mut kv = KvCacheManager::new(320);
        assert_eq!(kv.utilization(), 0.0);
        kv.reserve(160);
        assert!((kv.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut kv = KvCacheManager::new(320);
        kv.release(32);
    }

    #[test]
    fn blocks_round_up() {
        assert_eq!(KvCacheManager::blocks_for(1), 1);
        assert_eq!(KvCacheManager::blocks_for(16), 1);
        assert_eq!(KvCacheManager::blocks_for(17), 2);
    }

    /// Property: over arbitrary admit/free cycles, block accounting never
    /// leaks — used + free always equals capacity, a failed reserve changes
    /// nothing, and once every successful reservation is released the cache
    /// is exactly empty again.
    #[test]
    fn random_admit_free_cycles_never_leak_blocks() {
        let mut rng = crate::rng::SplitMix64::seed_from_u64(0xB10C5);
        for case in 0..50 {
            let capacity_tokens = (1 + rng.next_usize(64)) * BLOCK_TOKENS;
            let mut kv = KvCacheManager::new(capacity_tokens);
            let mut live: Vec<usize> = Vec::new();
            for step in 0..200 {
                let admit = live.is_empty() || rng.next_usize(2) == 0;
                if admit {
                    let tokens = 1 + rng.next_usize(capacity_tokens + 32);
                    let before_used = kv.used_tokens();
                    let fits = kv.can_reserve(tokens);
                    let reserved = kv.reserve(tokens);
                    assert_eq!(
                        fits, reserved,
                        "case {case} step {step}: can_reserve and reserve disagree"
                    );
                    if reserved {
                        live.push(tokens);
                    } else {
                        assert_eq!(
                            kv.used_tokens(),
                            before_used,
                            "case {case} step {step}: failed reserve must not change usage"
                        );
                    }
                } else {
                    let tokens = live.swap_remove(rng.next_usize(live.len()));
                    kv.release(tokens);
                }
                let expected_used: usize = live
                    .iter()
                    .map(|&t| KvCacheManager::blocks_for(t) * BLOCK_TOKENS)
                    .sum();
                assert_eq!(
                    kv.used_tokens(),
                    expected_used,
                    "case {case} step {step}: usage must equal the live reservations"
                );
                assert_eq!(
                    kv.used_tokens() + kv.free_tokens(),
                    kv.capacity_tokens(),
                    "case {case} step {step}: used + free must equal capacity"
                );
                assert!(kv.utilization() <= 1.0);
            }
            for tokens in live.drain(..) {
                kv.release(tokens);
            }
            assert_eq!(kv.used_tokens(), 0, "case {case}: blocks leaked");
            assert_eq!(kv.utilization(), 0.0);
        }
    }
}
