//! Model configurations for the three LLMs evaluated in the paper (Table 4).

use attn_kernels::AttentionConfig;
use gpu_sim::GpuConfig;

/// Transformer model configuration as deployed for serving.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable model name.
    pub name: String,
    /// Attention configuration (heads, GQA grouping, tensor parallelism).
    pub attention: AttentionConfig,
    /// Hidden (embedding) dimension.
    pub hidden_size: usize,
    /// MLP intermediate dimension (SwiGLU: three matrices of this width).
    pub intermediate_size: usize,
    /// Vocabulary size (for the LM head / sampling cost).
    pub vocab_size: usize,
}

impl ModelConfig {
    /// Yi-6B deployed on one A100 (4 KV heads, 200K-token base model).
    pub fn yi_6b() -> Self {
        ModelConfig {
            name: "Yi-6B".to_string(),
            attention: AttentionConfig::yi_6b(),
            hidden_size: 4096,
            intermediate_size: 11008,
            vocab_size: 64000,
        }
    }

    /// Llama-2-7B deployed on two A100s with tensor parallelism.
    pub fn llama2_7b() -> Self {
        ModelConfig {
            name: "Llama-2-7B".to_string(),
            attention: AttentionConfig::llama2_7b(),
            hidden_size: 4096,
            intermediate_size: 11008,
            vocab_size: 32000,
        }
    }

    /// Llama-3-8B deployed on two A100s with tensor parallelism.
    pub fn llama3_8b() -> Self {
        ModelConfig {
            name: "Llama-3-8B".to_string(),
            attention: AttentionConfig::llama3_8b(),
            hidden_size: 4096,
            intermediate_size: 14336,
            vocab_size: 128256,
        }
    }

    /// All three paper models.
    pub fn paper_models() -> Vec<ModelConfig> {
        vec![
            ModelConfig::yi_6b(),
            ModelConfig::llama2_7b(),
            ModelConfig::llama3_8b(),
        ]
    }

    /// Number of transformer layers.
    pub fn num_layers(&self) -> usize {
        self.attention.num_layers
    }

    /// Tensor-parallel degree of the deployment.
    pub fn tensor_parallel(&self) -> usize {
        self.attention.tensor_parallel
    }

    /// Parameters of one transformer layer that live on ONE GPU.
    pub fn layer_params_per_gpu(&self) -> ParamCounts {
        let a = &self.attention;
        let h = self.hidden_size;
        let d = a.head_dim;
        let q_dim = a.q_heads_per_gpu() * d;
        let kv_dim = a.kv_heads_per_gpu() * d;
        let inter = self.intermediate_size / self.tensor_parallel();
        ParamCounts {
            qkv_proj: h * (q_dim + 2 * kv_dim),
            out_proj: q_dim * h,
            mlp: 3 * h * inter,
        }
    }

    /// Total model weight bytes resident on one GPU (fp16), including the
    /// embedding and LM head split across the tensor-parallel group.
    pub fn weight_bytes_per_gpu(&self) -> usize {
        let per_layer = self.layer_params_per_gpu();
        let layers = self.num_layers() * (per_layer.qkv_proj + per_layer.out_proj + per_layer.mlp);
        let embeddings = 2 * self.vocab_size * self.hidden_size / self.tensor_parallel();
        (layers + embeddings) * self.attention.dtype_bytes
    }

    /// Number of KV-cache tokens one GPU can hold after model weights and an
    /// activation reserve are subtracted from HBM capacity.
    pub fn kv_cache_capacity_tokens(&self, gpu: &GpuConfig) -> usize {
        let reserve = 4 * 1024 * 1024 * 1024usize; // activations, workspace
        let available = gpu
            .hbm_capacity
            .saturating_sub(self.weight_bytes_per_gpu())
            .saturating_sub(reserve);
        available / self.attention.kv_bytes_per_token().max(1)
    }
}

/// Per-layer parameter counts (one GPU's shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamCounts {
    /// Fused QKV projection parameters.
    pub qkv_proj: usize,
    /// Output (post-attention) projection parameters.
    pub out_proj: usize,
    /// Gate + up + down MLP parameters.
    pub mlp: usize,
}

impl ParamCounts {
    /// Total parameters across the three groups.
    pub fn total(&self) -> usize {
        self.qkv_proj + self.out_proj + self.mlp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_have_expected_shapes() {
        let yi = ModelConfig::yi_6b();
        assert_eq!(yi.tensor_parallel(), 1);
        let l3 = ModelConfig::llama3_8b();
        assert_eq!(l3.tensor_parallel(), 2);
        assert_eq!(l3.num_layers(), 32);
        assert_eq!(ModelConfig::paper_models().len(), 3);
    }

    #[test]
    fn weight_bytes_are_plausible() {
        // Llama-3-8B is ~8 B parameters = ~16 GB in fp16; TP-2 halves that.
        let l3 = ModelConfig::llama3_8b();
        let gb = l3.weight_bytes_per_gpu() as f64 / 1e9;
        assert!((5.0..10.0).contains(&gb), "per-GPU weights {gb} GB");
        // Yi-6B on a single GPU carries everything: ~12 GB.
        let yi = ModelConfig::yi_6b();
        let gb = yi.weight_bytes_per_gpu() as f64 / 1e9;
        assert!((9.0..15.0).contains(&gb), "Yi weights {gb} GB");
    }

    #[test]
    fn kv_capacity_allows_long_context_batches() {
        let gpu = GpuConfig::a100_80gb();
        let l3 = ModelConfig::llama3_8b();
        let tokens = l3.kv_cache_capacity_tokens(&gpu);
        // Should hold at least 50 requests of 16K tokens.
        assert!(tokens > 50 * 16 * 1024, "capacity {tokens} tokens");
        // Llama-2-7B has 4x more KV heads per GPU, so far fewer tokens fit.
        let l2 = ModelConfig::llama2_7b();
        assert!(l2.kv_cache_capacity_tokens(&gpu) < tokens / 3);
    }

    #[test]
    fn param_counts_sum() {
        let p = ModelConfig::llama3_8b().layer_params_per_gpu();
        assert_eq!(p.total(), p.qkv_proj + p.out_proj + p.mlp);
        assert!(p.mlp > p.qkv_proj);
    }
}
