//! Multi-replica serving: N step-able engines on a shared virtual clock
//! behind a pluggable router.
//!
//! The paper evaluates POD-Attention on a single GPU, but its wins (and
//! failure modes) at fleet scale depend on how load is spread: a router that
//! lands a long prefill on a replica deep in decode work recreates exactly
//! the prefill-decode interference the fused kernel is built to hide. This
//! module models that regime: requests arrive on one global timeline, a
//! [`RouterPolicy`] assigns each to a replica at arrival time using live
//! replica state, and every replica runs its own scheduler, KV-cache
//! admission and queueing via [`ServingEngine::step`]. Results aggregate
//! into a [`ClusterReport`] with fleet-level latency percentiles and a
//! replica-imbalance measure.
//!
//! The run loop is an **event-driven core**: between barriers (request
//! routing, migration deliveries, autoscaler checks) a min-heap of
//! per-replica next-event times picks out only the replicas with due work,
//! and those advance in parallel across a scoped worker pool
//! ([`Cluster::set_advance_workers`]). A sequential full-sweep twin
//! ([`Cluster::run_lockstep`]) is kept as the differential oracle; both
//! produce bit-identical reports. For fleet-scale trace replay,
//! [`ServingConfig::streaming_metrics`] switches reporting to mergeable
//! quantile sketches ([`crate::QuantileSketch`]) so report memory stays
//! constant in trace length.

use crate::engine::{PrefillHandoff, ServingEngine};
use crate::json::JsonValue;
use crate::metrics::{ReportAccumulator, ServingReport};
use crate::request::{Request, RequestSpec};
use crate::trace::{FlightRecording, TraceEventKind, TraceRecorder};
use crate::ServingConfig;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Prompt length (tokens) above which the decode-aware router treats a
/// request as a "long prefill" and steers it away from decode-heavy
/// replicas.
pub const LONG_PREFILL_TOKENS: usize = 8 * 1024;

/// How arriving requests are assigned to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Cycle through replicas in order, ignoring load. The baseline every
    /// load-aware policy must beat.
    RoundRobin,
    /// Send each request to the replica with the fewest outstanding work
    /// tokens (remaining prompt + remaining output across its unfinished
    /// requests).
    LeastOutstandingTokens,
    /// Prefill/decode-aware: long prefills (prompt ≥ `long_prefill_tokens`)
    /// go to the replica whose prefill backlog is smallest — that backlog is
    /// what a chunked-prefill scheduler drains one chunk per iteration, so it
    /// is the head-of-line delay a new prompt actually queues behind — with
    /// running decodes as the tiebreak, steering heavy prompts away from
    /// replicas where they would interleave with (and slow) the most
    /// generation streams. Short requests follow least-outstanding load with
    /// the prefill backlog as tiebreak, keeping decode-bound work off
    /// prefill-clogged replicas.
    DecodeAware {
        /// Prompt length threshold in tokens for the long-prefill rule.
        long_prefill_tokens: usize,
    },
    /// Prefix-affinity: send each request to the replica whose prefix index
    /// holds the longest cached prefix of its prompt (probed side-effect-free
    /// via [`ServingEngine::cached_prefix_tokens_for`]), so agent fleets and
    /// shared-system-prompt chat reuse warm KV instead of re-prefilling it on
    /// a cold replica. Ties — including the all-cold case — fall back to
    /// least outstanding work tokens. Only meaningful when replicas run the
    /// paged KV policy with prefix caching; otherwise every probe returns
    /// zero and this degrades to least-outstanding.
    PrefixAffinity,
}

impl RouterPolicy {
    /// The decode-aware policy with the default [`LONG_PREFILL_TOKENS`]
    /// threshold.
    pub fn decode_aware() -> Self {
        RouterPolicy::DecodeAware {
            long_prefill_tokens: LONG_PREFILL_TOKENS,
        }
    }

    /// Human-readable name used in reports.
    pub fn label(&self) -> String {
        match self {
            RouterPolicy::RoundRobin => "round-robin".to_string(),
            RouterPolicy::LeastOutstandingTokens => "least-outstanding".to_string(),
            RouterPolicy::DecodeAware {
                long_prefill_tokens,
            } => format!("decode-aware(long>={long_prefill_tokens})"),
            RouterPolicy::PrefixAffinity => "prefix-affinity".to_string(),
        }
    }
}

/// What work a replica accepts in a (possibly disaggregated) fleet.
///
/// The paper's central claim is that fusing prefill and decode *inside one
/// GPU* (POD-Attention on colocated replicas) beats splitting them across
/// replicas; these roles make the strongest alternative — disaggregated
/// prefill/decode serving with KV-cache migration, as in Splitwise and
/// DistServe — representable, so the comparison can actually be run
/// (`fig19_disaggregation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Serves the full request lifecycle (prefill and decode) locally — the
    /// historical behavior and the default.
    Colocated,
    /// Accepts fresh prompts, runs their chunked prefill, mints the first
    /// token, then ships the KV chain to a decode replica
    /// ([`ServingEngine::take_ready_handoffs`]).
    PrefillOnly,
    /// Never routed fresh prompts; resumes migrated requests' decodes after
    /// adopting their KV chains ([`ServingEngine::import_handoff`]).
    DecodeOnly,
}

impl ReplicaRole {
    /// Human-readable name used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ReplicaRole::Colocated => "colocated",
            ReplicaRole::PrefillOnly => "prefill",
            ReplicaRole::DecodeOnly => "decode",
        }
    }

    /// Whether fresh prompts may be routed here.
    fn accepts_prompts(&self) -> bool {
        !matches!(self, ReplicaRole::DecodeOnly)
    }
}

/// Cost model of a prefill→decode KV-cache migration: per-token transfer
/// over a configurable link, a fixed per-handoff latency, and optional
/// compute/communication overlap à la ISO (arXiv:2409.11155), layered on the
/// cluster's virtual clock.
///
/// A handoff of `T` context tokens ships `T × kv_bytes_per_token` bytes (one
/// tensor-parallel shard's KV per link; shards transfer in parallel). The
/// request is unavailable to the decode replica for the resulting *stall*:
///
/// * without overlap: `latency + bytes / bandwidth`;
/// * with overlap: the transfer streams layer-by-layer **during** the
///   chunked prefill that produces the KV, so only the tail that outruns
///   the prefill window remains: `latency + max(0, bytes / bandwidth −
///   prefill_window)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvMigration {
    /// Link bandwidth in GB/s per replica pair (use `f64::INFINITY` for the
    /// zero-cost ideal).
    pub bandwidth_gbps: f64,
    /// Fixed per-handoff latency in seconds (connection setup, control RPCs,
    /// block-table exchange).
    pub latency: f64,
    /// Whether the transfer overlaps with the prefill computation that
    /// produces the KV (ISO-style layer-wise streaming).
    pub overlap: bool,
}

impl KvMigration {
    /// A migration link with the given bandwidth and per-handoff latency,
    /// no compute overlap.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive or the latency is negative or
    /// non-finite.
    pub fn new(bandwidth_gbps: f64, latency: f64) -> Self {
        let m = KvMigration {
            bandwidth_gbps,
            latency,
            overlap: false,
        };
        m.validate();
        m
    }

    /// The zero-cost ideal: infinite bandwidth, zero latency. With ample
    /// replicas this makes disaggregation match colocation — the control
    /// every realistic link is measured against.
    pub fn free() -> Self {
        KvMigration {
            bandwidth_gbps: f64::INFINITY,
            latency: 0.0,
            overlap: false,
        }
    }

    /// A cross-node InfiniBand-class link: 25 GB/s, 2 ms per handoff.
    pub fn infiniband() -> Self {
        KvMigration::new(25.0, 0.002)
    }

    /// A PCIe-bounce / TCP-class link: 2 GB/s, 5 ms per handoff — the regime
    /// where migration stalls dominate TBT.
    pub fn commodity() -> Self {
        KvMigration::new(2.0, 0.005)
    }

    /// The same link with ISO-style compute/communication overlap enabled.
    pub fn with_overlap(mut self) -> Self {
        self.overlap = true;
        self
    }

    fn validate(&self) {
        assert!(
            self.bandwidth_gbps > 0.0,
            "migration bandwidth must be positive (use f64::INFINITY for free)"
        );
        assert!(
            self.latency >= 0.0 && self.latency.is_finite(),
            "migration latency must be non-negative and finite"
        );
    }

    /// Raw wire time for `kv_bytes` bytes, excluding latency.
    fn wire_secs(&self, kv_bytes: f64) -> f64 {
        if self.bandwidth_gbps.is_infinite() {
            0.0
        } else {
            kv_bytes / (self.bandwidth_gbps * 1e9)
        }
    }

    /// End-to-end transfer time for `kv_bytes` bytes (latency + wire).
    pub fn transfer_secs(&self, kv_bytes: f64) -> f64 {
        self.latency + self.wire_secs(kv_bytes)
    }

    /// Seconds the migrated request is unavailable after its prefill
    /// completes: the whole transfer, minus whatever `overlap_window`
    /// seconds of prefill computation the transfer could stream behind
    /// (only with `overlap` on).
    pub fn stall_secs(&self, kv_bytes: f64, overlap_window: f64) -> f64 {
        if self.overlap {
            self.latency + (self.wire_secs(kv_bytes) - overlap_window.max(0.0)).max(0.0)
        } else {
            self.transfer_secs(kv_bytes)
        }
    }

    /// Human-readable name used in reports.
    pub fn label(&self) -> String {
        if self.bandwidth_gbps.is_infinite() && self.latency == 0.0 {
            return "free".to_string();
        }
        format!(
            "{}GB/s+{:.0}ms{}",
            self.bandwidth_gbps,
            self.latency * 1e3,
            if self.overlap { "+overlap" } else { "" }
        )
    }
}

impl Default for KvMigration {
    fn default() -> Self {
        KvMigration::free()
    }
}

/// Configuration of the cluster autoscaler: when to grow or shrink the
/// fleet on the shared virtual clock.
///
/// The autoscaler samples the fleet every `interval` simulated seconds and
/// compares the outstanding-token backlog per active replica against two
/// thresholds. Sustained pressure (`sustain` consecutive over-threshold
/// checks) scales out by one replica; sustained slack drains one replica —
/// it stops receiving new requests, its not-yet-started queue re-routes to
/// the survivors through the fleet's [`RouterPolicy`], and it retires once
/// its in-flight prefills and decodes finish. The `sustain` hysteresis keeps
/// a bursty trace from flapping the fleet size every check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerConfig {
    /// Lower bound on active replicas (never drains below this).
    pub min_replicas: usize,
    /// Upper bound on replicas ever spawned concurrently.
    pub max_replicas: usize,
    /// Seconds of virtual time between autoscaling checks.
    pub interval: f64,
    /// Outstanding work tokens per active replica above which a check counts
    /// as scale-out pressure.
    pub scale_out_backlog: usize,
    /// Outstanding work tokens per active replica below which a check counts
    /// as scale-in slack.
    pub scale_in_backlog: usize,
    /// Consecutive pressured (or slack) checks required before acting —
    /// the hysteresis that stops flapping.
    pub sustain: usize,
}

impl AutoscalerConfig {
    /// An autoscaler between `min_replicas` and `max_replicas` with default
    /// cadence and thresholds (5 s checks, scale out above 60K outstanding
    /// tokens per replica — about six seconds of work for the simulated
    /// Llama-3-8B/A100 replica — scale in below 12K, 2-check hysteresis).
    ///
    /// # Panics
    ///
    /// Panics if `min_replicas` is zero or exceeds `max_replicas`.
    pub fn new(min_replicas: usize, max_replicas: usize) -> Self {
        let cfg = AutoscalerConfig {
            min_replicas,
            max_replicas,
            interval: 5.0,
            scale_out_backlog: 60_000,
            scale_in_backlog: 12_000,
            sustain: 2,
        };
        cfg.validate();
        cfg
    }

    fn validate(&self) {
        assert!(self.min_replicas > 0, "autoscaler needs min_replicas >= 1");
        assert!(
            self.min_replicas <= self.max_replicas,
            "autoscaler bounds inverted: min {} > max {}",
            self.min_replicas,
            self.max_replicas
        );
        assert!(
            self.interval > 0.0 && self.interval.is_finite(),
            "autoscaler interval must be positive and finite"
        );
        assert!(
            self.scale_in_backlog <= self.scale_out_backlog,
            "scale-in threshold must not exceed the scale-out threshold"
        );
        assert!(self.sustain > 0, "sustain must be at least 1 check");
    }
}

/// Lifecycle of one replica under autoscaling.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ReplicaState {
    /// Routable: receives new requests.
    Active,
    /// Scale-in target: no new requests; finishing its in-flight work.
    Draining,
    /// Drained and shut down; no longer stepped.
    Retired,
}

/// Per-replica lifecycle bookkeeping (spawn/retire times feed the
/// replica-seconds cost metric).
#[derive(Debug, Clone, Copy)]
struct ReplicaLife {
    state: ReplicaState,
    spawned_at: f64,
    retired_at: Option<f64>,
}

impl ReplicaLife {
    fn new(spawned_at: f64) -> Self {
        ReplicaLife {
            state: ReplicaState::Active,
            spawned_at,
            retired_at: None,
        }
    }
}

/// Configuration of a replica fleet.
///
/// # Builder surface
///
/// Start from [`ClusterConfig::new`] or [`ClusterConfig::disaggregated`]
/// and chain `with_*` methods, mirroring the
/// [`ServingConfig`](crate::ServingConfig) convention:
///
/// * [`ClusterConfig::with_roles`] — mixed / disaggregated fleets
/// * [`ClusterConfig::with_autoscaler`] — backlog-driven fleet sizing
/// * [`ClusterConfig::with_fair_queue`] — multi-tenant fairness on every
///   replica (delegates to
///   [`ServingConfig::with_fair_queue`](crate::ServingConfig::with_fair_queue))
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-replica serving configuration (every replica is identical — one
    /// tensor-parallel shard's worth of model and GPU).
    pub base: ServingConfig,
    /// Number of replicas (the *initial* fleet size when an autoscaler is
    /// attached).
    pub replicas: usize,
    /// Routing policy.
    pub router: RouterPolicy,
    /// Optional autoscaler. `None` (the default) pins the fleet at
    /// `replicas` and is bit-for-bit identical to the pre-autoscaler
    /// cluster. Incompatible with disaggregated roles.
    pub autoscaler: Option<AutoscalerConfig>,
    /// Per-replica roles, in replica order (`replicas` entries). All
    /// [`ReplicaRole::Colocated`] — the default — is bit-for-bit identical
    /// to the pre-disaggregation cluster.
    pub roles: Vec<ReplicaRole>,
    /// KV-migration cost model for prefill→decode handoffs (only exercised
    /// when the fleet has [`ReplicaRole::PrefillOnly`] replicas).
    pub migration: KvMigration,
}

impl ClusterConfig {
    /// A fleet of `replicas` identical colocated replicas behind `router`,
    /// with no autoscaler.
    pub fn new(base: ServingConfig, replicas: usize, router: RouterPolicy) -> Self {
        ClusterConfig {
            base,
            replicas,
            router,
            autoscaler: None,
            roles: vec![ReplicaRole::Colocated; replicas],
            migration: KvMigration::free(),
        }
    }

    /// A disaggregated fleet: `prefill` prefill-only replicas followed by
    /// `decode` decode-only replicas, with KV handoffs priced by
    /// `migration`.
    ///
    /// # Panics
    ///
    /// Panics if either side of the fleet is empty.
    pub fn disaggregated(
        base: ServingConfig,
        prefill: usize,
        decode: usize,
        router: RouterPolicy,
        migration: KvMigration,
    ) -> Self {
        let mut roles = vec![ReplicaRole::PrefillOnly; prefill];
        roles.extend(std::iter::repeat(ReplicaRole::DecodeOnly).take(decode));
        ClusterConfig::new(base, prefill + decode, router).with_roles(roles, migration)
    }

    /// The same fleet with explicit per-replica roles (mixed fleets —
    /// colocated replicas alongside a disaggregated pair — are allowed) and
    /// a migration cost model.
    ///
    /// # Panics
    ///
    /// Panics if the role list length disagrees with `replicas`, if no
    /// replica accepts prompts, if prefill-only replicas exist without a
    /// decode-only replica to hand off to (or vice versa), or if an
    /// autoscaler is attached (autoscaling is colocated-only).
    pub fn with_roles(mut self, roles: Vec<ReplicaRole>, migration: KvMigration) -> Self {
        migration.validate();
        self.roles = roles;
        self.migration = migration;
        self.validate_roles();
        self
    }

    /// The same fleet with multi-tenant fair queueing (and, per the
    /// [`crate::FairQueueConfig`], priority preemption) on every replica.
    /// Sugar for rebuilding `base` through
    /// [`ServingConfig::with_fair_queue`](crate::ServingConfig::with_fair_queue).
    pub fn with_fair_queue(mut self, fair_queue: crate::FairQueueConfig) -> Self {
        self.base = self.base.with_fair_queue(fair_queue);
        self
    }

    /// Whether any replica has a non-colocated role.
    pub fn is_disaggregated(&self) -> bool {
        self.roles.iter().any(|r| *r != ReplicaRole::Colocated)
    }

    fn validate_roles(&self) {
        assert_eq!(
            self.roles.len(),
            self.replicas,
            "role list ({}) must cover every replica ({})",
            self.roles.len(),
            self.replicas
        );
        let prefill_only = self
            .roles
            .iter()
            .filter(|r| **r == ReplicaRole::PrefillOnly)
            .count();
        let decode_only = self
            .roles
            .iter()
            .filter(|r| **r == ReplicaRole::DecodeOnly)
            .count();
        assert!(
            self.roles.iter().any(|r| r.accepts_prompts()),
            "a fleet needs at least one replica that accepts prompts"
        );
        assert!(
            (prefill_only > 0) == (decode_only > 0),
            "disaggregation needs both sides: {prefill_only} prefill-only vs \
             {decode_only} decode-only replicas"
        );
        assert!(
            !(self.is_disaggregated() && self.autoscaler.is_some()),
            "the autoscaler supports colocated fleets only"
        );
    }

    /// The same fleet with an autoscaler attached (`replicas` becomes the
    /// initial size and is clamped into the autoscaler's bounds).
    ///
    /// # Panics
    ///
    /// Panics on a disaggregated fleet (autoscaling is colocated-only).
    pub fn with_autoscaler(mut self, autoscaler: AutoscalerConfig) -> Self {
        autoscaler.validate();
        assert!(
            !self.is_disaggregated(),
            "the autoscaler supports colocated fleets only"
        );
        self.replicas = self
            .replicas
            .clamp(autoscaler.min_replicas, autoscaler.max_replicas);
        self.roles = vec![ReplicaRole::Colocated; self.replicas];
        self.autoscaler = Some(autoscaler);
        self
    }
}

/// A fleet of step-able serving engines on a shared virtual clock.
///
/// # Examples
///
/// ```
/// use gpu_sim::GpuConfig;
/// use llm_serving::{
///     Cluster, ClusterConfig, ModelConfig, RouterPolicy, ServingConfig, Workload,
/// };
///
/// let base = ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 1024);
/// let mut cluster = Cluster::new(ClusterConfig::new(base, 2, RouterPolicy::decode_aware()));
/// let report = cluster.run(Workload::internal().generate(16, 1.5, 7));
/// assert_eq!(report.aggregate.completed, 16);
/// assert_eq!(report.assigned_per_replica.iter().sum::<usize>(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    replicas: Vec<ServingEngine>,
    router: RouterPolicy,
    rr_next: usize,
    assigned: Vec<usize>,
    autoscaler: Option<AutoscalerConfig>,
    initial_replicas: usize,
    lifecycle: Vec<ReplicaLife>,
    scale_out_events: usize,
    scale_in_events: usize,
    peak_active: usize,
    /// Scale-pressure streaks (consecutive over/under-threshold checks).
    out_streak: usize,
    in_streak: usize,
    /// Per-replica roles (parallel to `replicas`; autoscaler-spawned
    /// replicas are always colocated).
    roles: Vec<ReplicaRole>,
    /// KV-migration cost model for prefill→decode handoffs.
    migration: KvMigration,
    /// Worker threads for parallel replica advancement between barriers
    /// (see [`Cluster::set_advance_workers`]).
    advance_workers: usize,
    /// Fleet-level trace recorder (autoscaler events), present iff the base
    /// config carries a [`crate::TraceConfig`]. Per-request events live in
    /// the replicas' own recorders; [`Cluster::flight_recording`] merges
    /// both in replica-index order.
    tracer: Option<TraceRecorder>,
}

/// A KV chain in flight between replicas: delivered to a decode replica at
/// `at` (export time + migration stall). `seq` breaks time ties
/// deterministically, in export order.
#[derive(Debug)]
struct Delivery {
    at: f64,
    seq: usize,
    handoff: PrefillHandoff,
}

/// Remove and return the earliest delivery due at or before `t` (by
/// `(at, seq)`), if any.
fn pop_due(deliveries: &mut Vec<Delivery>, t: f64) -> Option<Delivery> {
    let best = deliveries
        .iter()
        .enumerate()
        .filter(|(_, d)| d.at <= t)
        .min_by(|(_, a), (_, b)| {
            a.at.partial_cmp(&b.at)
                .expect("delivery times are never NaN")
                .then(a.seq.cmp(&b.seq))
        })
        .map(|(i, _)| i)?;
    Some(deliveries.swap_remove(best))
}

/// Default worker count for parallel replica advancement: the
/// `POD_CLUSTER_THREADS` environment variable when set, otherwise the
/// machine's available parallelism.
fn default_advance_workers() -> usize {
    std::env::var("POD_CLUSTER_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// One `(next_event_time, replica)` entry in the fleet's event queue.
/// Ordered by time (total order, no NaNs reach the heap), with the replica
/// index as a deterministic tiebreak.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: f64,
    idx: usize,
    epoch: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .total_cmp(&other.at)
            .then(self.idx.cmp(&other.idx))
            .then(self.epoch.cmp(&other.epoch))
    }
}

/// Min-heap over per-replica next-event times with lazy deletion (the same
/// idiom as the block pool's eviction drain heap): each replica carries an
/// epoch counter, [`ReplicaHeap::refresh`] bumps it and pushes a fresh
/// entry, and stale entries — older epochs — are discarded on pop. At most
/// one **live** entry per replica exists at any time.
#[derive(Debug)]
struct ReplicaHeap {
    heap: BinaryHeap<Reverse<HeapEntry>>,
    epochs: Vec<u64>,
}

impl ReplicaHeap {
    fn new(replicas: usize) -> Self {
        ReplicaHeap {
            heap: BinaryHeap::new(),
            epochs: vec![0; replicas],
        }
    }

    /// Invalidate any live entry for `idx` and, when the replica has a
    /// pending event, enqueue it at that time.
    fn refresh(&mut self, idx: usize, next_event: Option<f64>) {
        while self.epochs.len() <= idx {
            self.epochs.push(0);
        }
        self.epochs[idx] += 1;
        if let Some(at) = next_event {
            debug_assert!(!at.is_nan(), "event times are never NaN");
            self.heap.push(Reverse(HeapEntry {
                at,
                idx,
                epoch: self.epochs[idx],
            }));
        }
    }

    /// Pop every replica whose next event is strictly before `t` into
    /// `due`, ascending by index. Entries at exactly `t` stay queued: an
    /// engine whose next event is at `t` treats `advance_to(t)` as a no-op,
    /// so popping them would only waste a step.
    fn drain_due(&mut self, t: f64, due: &mut Vec<usize>) {
        due.clear();
        while let Some(&Reverse(top)) = self.heap.peek() {
            if top.at >= t {
                break;
            }
            self.heap.pop();
            if self.epochs[top.idx] == top.epoch {
                // Live entry: retire it (the caller re-refreshes after
                // advancing) so duplicates are impossible.
                self.epochs[top.idx] += 1;
                due.push(top.idx);
            }
        }
        due.sort_unstable();
    }
}

/// Advances a subset of the fleet to barrier times, in one of two modes:
///
/// * **lockstep** (`heap: None`) — sweep every member sequentially, exactly
///   as the pre-event-driven cluster did; the differential oracle.
/// * **event-driven** (`heap: Some`) — pop only the members whose next
///   event is due from the [`ReplicaHeap`] and advance those, in parallel
///   across the cluster's worker threads. Replicas interact only at
///   barriers (routing, autoscaler checks, migration deliveries), so
///   advancing the due set concurrently is deterministic and bit-identical
///   to the sweep: skipped replicas would have been state no-ops (see
///   [`ServingEngine::next_event_time`]).
#[derive(Debug)]
struct Advancer {
    members: Vec<usize>,
    heap: Option<ReplicaHeap>,
    /// Scratch for the due set (reused across barriers).
    due: Vec<usize>,
}

impl Advancer {
    /// An advancer over `members` (ascending replica indices).
    fn new(members: Vec<usize>, event_driven: bool, replicas: &[ServingEngine]) -> Self {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        let heap = event_driven.then(|| {
            let mut heap = ReplicaHeap::new(replicas.len());
            for &i in &members {
                heap.refresh(i, replicas[i].next_event_time());
            }
            heap
        });
        Advancer {
            members,
            heap,
            due: Vec::new(),
        }
    }

    /// Track a replica spawned mid-run (autoscaler scale-out).
    fn add_member(&mut self, idx: usize, replicas: &[ServingEngine]) {
        self.members.push(idx);
        if let Some(heap) = &mut self.heap {
            heap.refresh(idx, replicas[idx].next_event_time());
        }
    }

    /// Re-read a member's next event after the cluster mutated it
    /// (submit, handoff import, queue reclaim).
    fn notify(&mut self, idx: usize, replicas: &[ServingEngine]) {
        debug_assert!(self.members.contains(&idx), "notify on a non-member");
        if let Some(heap) = &mut self.heap {
            heap.refresh(idx, replicas[idx].next_event_time());
        }
    }

    /// Advance members to barrier time `t`: all of them (lockstep) or just
    /// the due set (event-driven, in parallel across `workers` threads).
    fn advance(&mut self, replicas: &mut [ServingEngine], t: f64, workers: usize) {
        match &mut self.heap {
            None => {
                for &i in &self.members {
                    replicas[i].advance_to(t);
                }
            }
            Some(heap) => {
                heap.drain_due(t, &mut self.due);
                par_for_each(select_muts(replicas, &self.due), workers, |r| {
                    r.advance_to(t)
                });
                for &i in &self.due {
                    heap.refresh(i, replicas[i].next_event_time());
                }
            }
        }
    }

    /// Run every member until drained — in parallel in event-driven mode
    /// (the engines are independent), sequentially in lockstep.
    fn drain(&mut self, replicas: &mut [ServingEngine], workers: usize) {
        match &mut self.heap {
            None => {
                for &i in &self.members {
                    replicas[i].run_until_drained();
                }
            }
            Some(heap) => {
                par_for_each(select_muts(replicas, &self.members), workers, |r| {
                    r.run_until_drained()
                });
                for &i in &self.members {
                    heap.refresh(i, replicas[i].next_event_time());
                }
            }
        }
    }
}

/// Mutable references to `replicas[i]` for each `i` in the strictly
/// ascending index list `idxs`.
fn select_muts<'a>(
    replicas: &'a mut [ServingEngine],
    idxs: &[usize],
) -> Vec<&'a mut ServingEngine> {
    let mut out = Vec::with_capacity(idxs.len());
    let mut rest = replicas;
    let mut base = 0usize;
    for &i in idxs {
        let (_, tail) = rest.split_at_mut(i - base);
        let (head, tail) = tail.split_at_mut(1);
        out.push(&mut head[0]);
        rest = tail;
        base = i + 1;
    }
    out
}

/// Apply `f` to every item, spreading the work across up to `workers`
/// scoped threads through an atomic work queue (the bench harness's
/// `par_map` worker-pool idiom). The items are independent, so the result
/// is identical for every worker count; with one worker (or one item) it
/// runs inline with no thread overhead.
fn par_for_each<T, F>(items: Vec<&mut T>, workers: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let slots: Vec<Mutex<Option<&mut T>>> =
        items.into_iter().map(|r| Mutex::new(Some(r))).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                // Each index is claimed exactly once (fetch_add), so the
                // slot is always still full; the mutex only makes the
                // `&mut` hand-off to this thread safe.
                if let Some(item) = slots[i].lock().expect("work slot lock").take() {
                    f(item);
                }
            });
        }
    });
}

impl Cluster {
    /// Build a fleet from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.replicas > 0, "a cluster needs at least one replica");
        config.validate_roles();
        let replicas: Vec<ServingEngine> = config
            .roles
            .iter()
            .map(|role| {
                let mut engine = ServingEngine::new(config.base.clone());
                engine.set_export_prefills(*role == ReplicaRole::PrefillOnly);
                engine
            })
            .collect();
        Cluster {
            router: config.router,
            rr_next: 0,
            assigned: vec![0; config.replicas],
            autoscaler: config.autoscaler,
            initial_replicas: config.replicas,
            lifecycle: vec![ReplicaLife::new(0.0); config.replicas],
            scale_out_events: 0,
            scale_in_events: 0,
            peak_active: config.replicas,
            out_streak: 0,
            in_streak: 0,
            roles: config.roles,
            migration: config.migration,
            advance_workers: default_advance_workers(),
            tracer: config
                .base
                .tracing
                .as_ref()
                .map(|cfg| TraceRecorder::new(cfg.clone())),
            replicas,
        }
    }

    /// Per-replica roles, in replica order.
    pub fn roles(&self) -> &[ReplicaRole] {
        &self.roles
    }

    /// The replica engines (inspectable mid-run or after). Under autoscaling
    /// this includes retired replicas — their reports still carry the
    /// requests they served.
    pub fn replicas(&self) -> &[ServingEngine] {
        &self.replicas
    }

    /// Collect the fleet's flight recording: each replica's trace ring in
    /// replica-index order, then the cluster-level recorder (autoscaler
    /// events). `None` unless the base config enabled tracing via
    /// [`ServingConfig::with_tracing`]. The index-order merge mirrors the
    /// streaming-metrics accumulator merge, so the recording is bit-for-bit
    /// identical at every worker count.
    pub fn flight_recording(&self) -> Option<FlightRecording> {
        self.tracer.as_ref()?;
        let mut recording = FlightRecording::new();
        for replica in &self.replicas {
            recording.push_replica(
                replica
                    .trace_recorder()
                    .expect("traced clusters build every replica with a recorder"),
            );
        }
        if let Some(tracer) = &self.tracer {
            recording.set_cluster(tracer);
        }
        Some(recording)
    }

    /// Set the number of worker threads used to advance due replicas
    /// between barriers (clamped to at least 1). Defaults to the
    /// `POD_CLUSTER_THREADS` environment variable, falling back to the
    /// machine's available parallelism. Replicas interact only at
    /// barriers, so every worker count produces bit-identical results —
    /// pinned by tests; tune this purely for wall-clock.
    pub fn set_advance_workers(&mut self, workers: usize) {
        self.advance_workers = workers.max(1);
    }

    /// Worker threads currently used for parallel replica advancement.
    pub fn advance_workers(&self) -> usize {
        self.advance_workers
    }

    /// Indices of replicas currently accepting new requests.
    fn active_indices(&self) -> Vec<usize> {
        (0..self.replicas.len())
            .filter(|&i| self.lifecycle[i].state == ReplicaState::Active)
            .collect()
    }

    /// Indices of replicas fresh prompts may be routed to: active, and not
    /// decode-only.
    fn routable_indices(&self) -> Vec<usize> {
        (0..self.replicas.len())
            .filter(|&i| {
                self.lifecycle[i].state == ReplicaState::Active && self.roles[i].accepts_prompts()
            })
            .collect()
    }

    /// Indices of decode-only replicas (migration targets).
    fn decode_indices(&self) -> Vec<usize> {
        (0..self.replicas.len())
            .filter(|&i| self.roles[i] == ReplicaRole::DecodeOnly)
            .collect()
    }

    /// Pick the replica for `spec` given current replica state, without
    /// submitting it. This **advances router state** (the round-robin
    /// cursor): call it once per request, exactly as [`Cluster::run`] does,
    /// not as a side-effect-free preview. Draining, retired and decode-only
    /// replicas are never picked.
    pub fn route(&mut self, spec: &RequestSpec) -> usize {
        let candidates = self.routable_indices();
        self.route_among(&candidates, spec)
    }

    /// Route among an explicit candidate set (the active replicas).
    fn route_among(&mut self, candidates: &[usize], spec: &RequestSpec) -> usize {
        assert!(!candidates.is_empty(), "no active replica to route to");
        match self.router {
            RouterPolicy::RoundRobin => {
                let idx = candidates[self.rr_next % candidates.len()];
                self.rr_next = (self.rr_next + 1) % candidates.len();
                idx
            }
            RouterPolicy::LeastOutstandingTokens => {
                argmin_by_key(&self.replicas, candidates, |r| {
                    (r.outstanding_tokens(), 0usize)
                })
            }
            RouterPolicy::DecodeAware {
                long_prefill_tokens,
            } => {
                if spec.prompt_tokens >= long_prefill_tokens {
                    // A heavy prompt queues behind the existing prefill
                    // backlog; among equally clear queues it lands where it
                    // disturbs the fewest generation streams.
                    argmin_by_key(&self.replicas, candidates, |r| {
                        (r.queued_prefill_tokens(), r.running_decodes())
                    })
                } else {
                    argmin_by_key(&self.replicas, candidates, |r| {
                        (r.outstanding_tokens(), r.queued_prefill_tokens())
                    })
                }
            }
            RouterPolicy::PrefixAffinity => {
                // Longest cached prefix wins; ties (notably the all-cold
                // case) fall back to least outstanding work.
                argmin_by_key(&self.replicas, candidates, |r| {
                    (
                        std::cmp::Reverse(r.cached_prefix_tokens_for(spec)),
                        r.outstanding_tokens(),
                    )
                })
            }
        }
    }

    /// Reset the fleet to its initial state (fresh engines, router cursor,
    /// lifecycle and autoscaler counters).
    fn reset(&mut self) {
        let base = self.replicas[0].config().clone();
        self.replicas.truncate(self.initial_replicas);
        self.roles.truncate(self.initial_replicas);
        for (replica, role) in self.replicas.iter_mut().zip(&self.roles) {
            *replica = ServingEngine::new(base.clone());
            replica.set_export_prefills(*role == ReplicaRole::PrefillOnly);
        }
        self.rr_next = 0;
        self.assigned = vec![0; self.replicas.len()];
        self.lifecycle = vec![ReplicaLife::new(0.0); self.replicas.len()];
        self.scale_out_events = 0;
        self.scale_in_events = 0;
        self.peak_active = self.replicas.len();
        self.out_streak = 0;
        self.in_streak = 0;
        self.tracer = base
            .tracing
            .as_ref()
            .map(|cfg| TraceRecorder::new(cfg.clone()));
    }

    /// Serve `specs` to completion: route every request at its arrival time
    /// (advancing replicas with due work to that instant first, so routing
    /// sees live state), then drain the fleet. With an autoscaler attached,
    /// scaling checks interleave with arrivals on the same virtual clock.
    ///
    /// The run loop is **event-driven**: a min-heap of per-replica
    /// next-event times ([`ServingEngine::next_event_time`]) is interleaved
    /// with arrivals, migration deliveries and autoscaler checks, so only
    /// replicas with work due before a barrier are stepped — and those are
    /// stepped in parallel across [`Cluster::advance_workers`] threads.
    /// Outcomes are bit-for-bit identical to the sequential full-sweep loop
    /// ([`Cluster::run_lockstep`]) for every worker count: the event queue
    /// changes when host work happens, never what virtual time things
    /// happen at.
    ///
    /// Each call starts from a fresh fleet — replica engines, router cursor
    /// and assignment counts are reset first — so repeated `run`s on one
    /// `Cluster` are independent, mirroring [`ServingEngine::run`].
    ///
    /// # Panics
    ///
    /// Panics if a single request can never fit in a replica's KV cache.
    pub fn run(&mut self, specs: Vec<RequestSpec>) -> ClusterReport {
        self.run_inner(specs, true)
    }

    /// [`Cluster::run`] with the event queue and worker pool disabled:
    /// every replica is swept sequentially to every barrier time, exactly
    /// as the pre-event-driven cluster did. Kept as the differential oracle
    /// — the fuzz harness asserts `run` and `run_lockstep` produce
    /// identical reports for every generated configuration.
    ///
    /// # Panics
    ///
    /// Panics if a single request can never fit in a replica's KV cache.
    pub fn run_lockstep(&mut self, specs: Vec<RequestSpec>) -> ClusterReport {
        self.run_inner(specs, false)
    }

    fn run_inner(&mut self, specs: Vec<RequestSpec>, event_driven: bool) -> ClusterReport {
        self.reset();

        let mut order: Vec<usize> = (0..specs.len()).collect();
        order.sort_by(|&a, &b| {
            specs[a]
                .arrival
                .partial_cmp(&specs[b].arrival)
                .expect("arrival times must not be NaN")
        });

        let disaggregated = self.roles.iter().any(|r| *r != ReplicaRole::Colocated);
        match (self.autoscaler, disaggregated) {
            (None, false) => self.run_colocated(&specs, &order, event_driven),
            (None, true) => self.run_disaggregated(&specs, &order, event_driven),
            (Some(scaler), _) => self.run_autoscaled(&specs, &order, scaler, event_driven),
        }
        self.report()
    }

    /// The colocated serving loop: arrivals route over the whole fleet and
    /// every replica serves its requests end-to-end.
    fn run_colocated(&mut self, specs: &[RequestSpec], order: &[usize], event_driven: bool) {
        let members: Vec<usize> = (0..self.replicas.len()).collect();
        let mut fleet = Advancer::new(members, event_driven, &self.replicas);
        for &i in order {
            let spec = specs[i];
            fleet.advance(&mut self.replicas, spec.arrival, self.advance_workers);
            let target = self.route(&spec);
            self.replicas[target].submit(spec);
            self.assigned[target] += 1;
            fleet.notify(target, &self.replicas);
        }
        fleet.drain(&mut self.replicas, self.advance_workers);
    }

    /// The disaggregated serving loop: arrivals land on prefill-capable
    /// replicas, completed prefills ship their KV chains through the
    /// migration model, and decode replicas resume the requests when the
    /// chains arrive — all on the shared virtual clock.
    fn run_disaggregated(&mut self, specs: &[RequestSpec], order: &[usize], event_driven: bool) {
        let bytes_per_token = self.replicas[0]
            .config()
            .model
            .attention
            .kv_bytes_per_token() as f64;
        let mut deliveries: Vec<Delivery> = Vec::new();
        let mut seq = 0usize;

        // The two sides of the fleet advance independently between
        // migration barriers, so each gets its own event queue: prompt-side
        // (prefill-only plus any colocated replicas) and decode-side.
        let prompt_members: Vec<usize> = (0..self.replicas.len())
            .filter(|&i| self.roles[i].accepts_prompts())
            .collect();
        let mut prompt_side = Advancer::new(prompt_members, event_driven, &self.replicas);
        let mut decode_side = Advancer::new(self.decode_indices(), event_driven, &self.replicas);

        for &i in order {
            let spec = specs[i];
            self.pump_migrations(
                spec.arrival,
                bytes_per_token,
                &mut deliveries,
                &mut seq,
                &mut prompt_side,
                &mut decode_side,
            );
            let target = self.route(&spec);
            self.replicas[target].submit(spec);
            self.assigned[target] += 1;
            prompt_side.notify(target, &self.replicas);
        }

        // Drain. Prefill-capable replicas receive no further work — and
        // deliveries create decode-side work only — so one pass drains the
        // prefill side and surfaces every remaining export. The deliveries
        // then drive the decode side in (time, seq) order, each landing
        // with decode state advanced to its delivery instant.
        prompt_side.drain(&mut self.replicas, self.advance_workers);
        self.collect_exports(bytes_per_token, &mut deliveries, &mut seq);
        deliveries.sort_by(|a, b| {
            a.at.partial_cmp(&b.at)
                .expect("delivery times are never NaN")
                .then(a.seq.cmp(&b.seq))
        });
        for d in std::mem::take(&mut deliveries) {
            decode_side.advance(&mut self.replicas, d.at, self.advance_workers);
            self.deliver(d, &mut decode_side);
        }
        decode_side.drain(&mut self.replicas, self.advance_workers);
    }

    /// Advance the fleet to simulated time `t`, moving any KV chains whose
    /// prefill completed along the way: prefill-capable replicas advance
    /// first (producing exports), then every delivery due by `t` lands on a
    /// decode replica at its delivery instant, then the decode side catches
    /// up to `t`.
    fn pump_migrations(
        &mut self,
        t: f64,
        bytes_per_token: f64,
        deliveries: &mut Vec<Delivery>,
        seq: &mut usize,
        prompt_side: &mut Advancer,
        decode_side: &mut Advancer,
    ) {
        prompt_side.advance(&mut self.replicas, t, self.advance_workers);
        self.collect_exports(bytes_per_token, deliveries, seq);
        while let Some(d) = pop_due(deliveries, t) {
            decode_side.advance(&mut self.replicas, d.at, self.advance_workers);
            self.deliver(d, decode_side);
        }
        decode_side.advance(&mut self.replicas, t, self.advance_workers);
    }

    /// Pull completed prefills off every prefill-only replica and schedule
    /// their deliveries: a handoff of `T` tokens arrives `stall` seconds
    /// after its export, per the [`KvMigration`] model.
    fn collect_exports(
        &mut self,
        bytes_per_token: f64,
        deliveries: &mut Vec<Delivery>,
        seq: &mut usize,
    ) {
        for i in 0..self.replicas.len() {
            if self.roles[i] != ReplicaRole::PrefillOnly {
                continue;
            }
            for handoff in self.replicas[i].take_ready_handoffs() {
                let kv_bytes = handoff.chain.tokens as f64 * bytes_per_token;
                let stall = self.migration.stall_secs(kv_bytes, handoff.prefill_window);
                deliveries.push(Delivery {
                    at: handoff.export_time + stall,
                    seq: *seq,
                    handoff,
                });
                *seq += 1;
            }
        }
    }

    /// Land one delivery on the least-loaded decode replica.
    fn deliver(&mut self, d: Delivery, decode_side: &mut Advancer) {
        let targets = self.decode_indices();
        let target = *targets
            .iter()
            .min_by_key(|&&j| (self.replicas[j].outstanding_tokens(), j))
            .expect("validated fleets have a decode replica for every prefill replica");
        self.replicas[target].import_handoff(d.handoff, d.at);
        decode_side.notify(target, &self.replicas);
    }

    /// The autoscaled serving loop: arrivals and scaling checks interleave
    /// on the shared virtual clock.
    fn run_autoscaled(
        &mut self,
        specs: &[RequestSpec],
        order: &[usize],
        scaler: AutoscalerConfig,
        event_driven: bool,
    ) {
        // One advancer over the whole (growing) fleet. Retired replicas are
        // drained, so advancing them is a no-op and they simply never
        // surface in the event queue.
        let members: Vec<usize> = (0..self.replicas.len()).collect();
        let mut fleet = Advancer::new(members, event_driven, &self.replicas);
        let mut next_check = scaler.interval;
        for &i in order {
            let spec = specs[i];
            while next_check <= spec.arrival {
                fleet.advance(&mut self.replicas, next_check, self.advance_workers);
                self.autoscale_check(next_check, &scaler, true, &mut fleet);
                next_check += scaler.interval;
            }
            fleet.advance(&mut self.replicas, spec.arrival, self.advance_workers);
            let target = self.route(&spec);
            self.replicas[target].submit(spec);
            self.assigned[target] += 1;
            fleet.notify(target, &self.replicas);
        }
        // Drain: keep checking so slack scale-ins retire replicas (the
        // replica-seconds cost metric depends on *when* they retire). Every
        // pass advances the clock by one interval, so this terminates once
        // the backlog is served. Scale-out is suppressed here: the closed
        // world knows no further arrivals exist, and a replica spawned now
        // could never receive work (routing happens at arrival or drain
        // reclaim) — it would only idle and inflate replica_seconds.
        loop {
            let unfinished = (0..self.replicas.len()).any(|i| {
                self.lifecycle[i].state != ReplicaState::Retired && !self.replicas[i].is_drained()
            });
            if !unfinished {
                break;
            }
            fleet.advance(&mut self.replicas, next_check, self.advance_workers);
            self.autoscale_check(next_check, &scaler, false, &mut fleet);
            next_check += scaler.interval;
        }
    }

    /// One autoscaling decision at time `now`: retire drained replicas,
    /// update the pressure streaks, and scale out/in if a streak sustained.
    /// `allow_scale_out` is false during the post-arrival drain, where a new
    /// replica could never be routed any work.
    fn autoscale_check(
        &mut self,
        now: f64,
        scaler: &AutoscalerConfig,
        allow_scale_out: bool,
        fleet: &mut Advancer,
    ) {
        // Draining replicas whose in-flight work finished retire now.
        for i in 0..self.replicas.len() {
            if self.lifecycle[i].state == ReplicaState::Draining && self.replicas[i].is_drained() {
                self.lifecycle[i].state = ReplicaState::Retired;
                // Its engine clock is when work actually stopped; a replica
                // never costs less than zero seconds.
                self.lifecycle[i].retired_at =
                    Some(self.replicas[i].clock().max(self.lifecycle[i].spawned_at));
            }
        }

        let active = self.active_indices();
        let backlog: usize = active
            .iter()
            .map(|&i| self.replicas[i].outstanding_tokens())
            .sum();
        let per_replica = backlog / active.len().max(1);
        if per_replica > scaler.scale_out_backlog {
            self.out_streak += 1;
            self.in_streak = 0;
        } else if per_replica < scaler.scale_in_backlog {
            self.in_streak += 1;
            self.out_streak = 0;
        } else {
            self.out_streak = 0;
            self.in_streak = 0;
        }

        if allow_scale_out
            && self.out_streak >= scaler.sustain
            && active.len() < scaler.max_replicas
        {
            let base = self.replicas[0].config().clone();
            self.replicas.push(ServingEngine::new(base));
            self.roles.push(ReplicaRole::Colocated);
            self.lifecycle.push(ReplicaLife::new(now));
            self.assigned.push(0);
            self.scale_out_events += 1;
            if let Some(rec) = self.tracer.as_mut() {
                rec.record(
                    now,
                    TraceEventKind::ScaleOut {
                        replicas: self.replicas.len(),
                    },
                );
            }
            self.peak_active = self.peak_active.max(active.len() + 1);
            self.out_streak = 0;
            self.in_streak = 0;
            fleet.add_member(self.replicas.len() - 1, &self.replicas);
        } else if self.in_streak >= scaler.sustain && active.len() > scaler.min_replicas {
            // Drain the least-loaded active replica; ties prefer the newest
            // (highest index), keeping the original fleet core stable.
            let victim = *active
                .iter()
                .min_by_key(|&&i| (self.replicas[i].outstanding_tokens(), std::cmp::Reverse(i)))
                .expect("active set is non-empty");
            self.lifecycle[victim].state = ReplicaState::Draining;
            self.scale_in_events += 1;
            if let Some(rec) = self.tracer.as_mut() {
                rec.record(now, TraceEventKind::ScaleIn { replica: victim });
            }
            self.in_streak = 0;
            self.out_streak = 0;
            // Its not-yet-started requests re-route through the normal
            // router over the surviving active replicas; in-flight prefills
            // and decodes finish where they are.
            let reclaimed = self.replicas[victim].reclaim_unstarted();
            fleet.notify(victim, &self.replicas);
            let survivors = self.active_indices();
            for spec in reclaimed {
                let target = self.route_among(&survivors, &spec);
                self.replicas[target].submit(spec);
                self.assigned[target] += 1;
                fleet.notify(target, &self.replicas);
            }
        }
    }

    /// Aggregate the given replicas' work into one [`ServingReport`]:
    /// latency statistics over every request they served, counter fields
    /// summed, makespan = the last of them to finish.
    ///
    /// With streaming metrics enabled ([`ServingConfig::streaming_metrics`])
    /// the fleet statistics come from merging the replicas' quantile-sketch
    /// accumulators in replica-index order — constant memory, and
    /// bit-identical for every advancement interleaving or worker count
    /// because sketch merge is bucket-count addition. Otherwise every
    /// request record is gathered and the exact percentiles are computed,
    /// as before.
    fn aggregate_over(&self, idxs: &[usize], per_replica: &[ServingReport]) -> ServingReport {
        let subset: Vec<&ServingReport> = idxs.iter().map(|&i| &per_replica[i]).collect();
        let makespan = subset.iter().map(|r| r.makespan).fold(0.0, f64::max);
        let label = self.replicas[0].config().system_label();
        let iterations = subset.iter().map(|r| r.iterations).sum();
        let hybrid_iterations = subset.iter().map(|r| r.hybrid_iterations).sum();
        let mut aggregate = if self.replicas[0].config().streaming_metrics {
            let mut acc = ReportAccumulator::new();
            for &i in idxs {
                acc.merge(
                    self.replicas[i]
                        .accumulator()
                        .expect("streaming replicas carry accumulators"),
                );
            }
            acc.finalize(&label, makespan, iterations, hybrid_iterations)
        } else {
            let requests: Vec<Request> = idxs
                .iter()
                .flat_map(|&i| self.replicas[i].requests().iter().cloned())
                .collect();
            ServingReport::from_requests(&label, &requests, makespan, iterations, hybrid_iterations)
        };
        aggregate.price_cache_hits = subset.iter().map(|r| r.price_cache_hits).sum();
        aggregate.price_cache_misses = subset.iter().map(|r| r.price_cache_misses).sum();
        aggregate.busy_time = subset.iter().map(|r| r.busy_time).sum();
        aggregate.prefill_tokens_scheduled =
            subset.iter().map(|r| r.prefill_tokens_scheduled).sum();
        aggregate.cached_prefix_tokens = subset.iter().map(|r| r.cached_prefix_tokens).sum();
        aggregate.blocks_reused = subset.iter().map(|r| r.blocks_reused).sum();
        aggregate.cow_copies = subset.iter().map(|r| r.cow_copies).sum();
        aggregate.decode_kv_tokens_deduped =
            subset.iter().map(|r| r.decode_kv_tokens_deduped).sum();
        aggregate.spec_rounds = subset.iter().map(|r| r.spec_rounds).sum();
        aggregate.draft_tokens_accepted = subset.iter().map(|r| r.draft_tokens_accepted).sum();
        aggregate.draft_tokens_rejected = subset.iter().map(|r| r.draft_tokens_rejected).sum();
        aggregate.preemptions = subset.iter().map(|r| r.preemptions).sum();
        aggregate.blocks_evicted = subset.iter().map(|r| r.blocks_evicted).sum();
        aggregate.migrated_out_requests = subset.iter().map(|r| r.migrated_out_requests).sum();
        aggregate.migrated_in_requests = subset.iter().map(|r| r.migrated_in_requests).sum();
        aggregate.migrated_tokens = subset.iter().map(|r| r.migrated_tokens).sum();
        aggregate.migration_stall_time = subset.iter().map(|r| r.migration_stall_time).sum();
        aggregate
    }

    /// Aggregate what the fleet has served so far into a [`ClusterReport`].
    pub fn report(&self) -> ClusterReport {
        let per_replica: Vec<ServingReport> = self.replicas.iter().map(|r| r.report()).collect();
        let all: Vec<usize> = (0..self.replicas.len()).collect();
        let aggregate = self.aggregate_over(&all, &per_replica);

        // Per-role breakdown, in role-declaration order of first appearance
        // (deterministic for a fixed fleet). One entry per role present.
        let mut per_role: Vec<RoleReport> = Vec::new();
        for role in [
            ReplicaRole::Colocated,
            ReplicaRole::PrefillOnly,
            ReplicaRole::DecodeOnly,
        ] {
            let idxs: Vec<usize> = (0..self.replicas.len())
                .filter(|&i| self.roles[i] == role)
                .collect();
            if idxs.is_empty() {
                continue;
            }
            per_role.push(RoleReport {
                role: role.label().to_string(),
                replicas: idxs.len(),
                report: self.aggregate_over(&idxs, &per_replica),
            });
        }

        let max_busy = per_replica.iter().map(|r| r.busy_time).fold(0.0, f64::max);
        let mean_busy = aggregate.busy_time / per_replica.len() as f64;
        let busy_imbalance = if mean_busy > 0.0 {
            max_busy / mean_busy
        } else {
            1.0
        };

        // Replica-seconds: the fleet's capacity cost. A replica is paid for
        // from its spawn until it retires (autoscaled drain) or until the
        // fleet finishes (still-active replicas).
        let fleet_end = aggregate.makespan;
        let replica_seconds = self
            .lifecycle
            .iter()
            .map(|l| {
                let end = l.retired_at.unwrap_or(fleet_end).max(l.spawned_at);
                end - l.spawned_at
            })
            .sum();

        ClusterReport {
            router: self.router.label(),
            busy_imbalance,
            assigned_per_replica: self.assigned.clone(),
            roles: self.roles.iter().map(|r| r.label().to_string()).collect(),
            migration: self.migration.label(),
            per_role,
            per_replica,
            aggregate,
            scale_out_events: self.scale_out_events,
            scale_in_events: self.scale_in_events,
            peak_replicas: self.peak_active,
            replica_seconds,
        }
    }
}

/// Index (among `candidates`) of the replica minimizing `key` (first wins
/// ties, so routing is deterministic).
fn argmin_by_key<K: Ord>(
    replicas: &[ServingEngine],
    candidates: &[usize],
    key: impl Fn(&ServingEngine) -> K,
) -> usize {
    candidates
        .iter()
        .copied()
        .min_by_key(|&i| key(&replicas[i]))
        .expect("cluster has at least one active replica")
}

/// One role's share of a fleet's work (colocated / prefill / decode).
#[derive(Debug, Clone, PartialEq)]
pub struct RoleReport {
    /// Role label ([`ReplicaRole::label`]).
    pub role: String,
    /// Replicas holding this role.
    pub replicas: usize,
    /// Aggregate over those replicas: for prefill-only replicas the latency
    /// stats are empty (their requests migrate out before finishing) but
    /// busy time, iterations and `migrated_tokens` show the prefill side's
    /// work; decode-only replicas carry the end-to-end latency stats of
    /// every migrated request.
    pub report: ServingReport,
}

impl RoleReport {
    /// Serialize as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("role", JsonValue::str(&self.role)),
            ("replicas", JsonValue::Num(self.replicas as f64)),
            ("report", self.report.to_json()),
        ])
    }
}

/// Fleet-level results of one cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Router policy label.
    pub router: String,
    /// Fleet-wide metrics: latency percentiles over every request served by
    /// any replica, makespan = the last replica to finish, iteration and
    /// busy-time totals summed across replicas.
    pub aggregate: ServingReport,
    /// Each replica's own report, in replica order.
    pub per_replica: Vec<ServingReport>,
    /// Requests assigned to each replica, in replica order.
    pub assigned_per_replica: Vec<usize>,
    /// Each replica's role label, in replica order.
    pub roles: Vec<String>,
    /// Migration cost-model label ([`KvMigration::label`]; `"free"` for
    /// colocated fleets, which never migrate).
    pub migration: String,
    /// Per-role aggregation (one entry per role present in the fleet; a
    /// single `"colocated"` entry for classic fleets).
    pub per_role: Vec<RoleReport>,
    /// Max-over-mean replica busy time: 1.0 is a perfectly balanced fleet,
    /// N means one replica did all the work of N.
    pub busy_imbalance: f64,
    /// Autoscaler scale-out actions taken during the run (0 without an
    /// autoscaler).
    pub scale_out_events: usize,
    /// Autoscaler scale-in (drain) actions taken during the run.
    pub scale_in_events: usize,
    /// Largest number of simultaneously active replicas.
    pub peak_replicas: usize,
    /// Total replica-seconds paid for: each replica from spawn to retirement
    /// (or fleet completion). The capacity-cost denominator for
    /// goodput-per-replica-second comparisons; `replicas × makespan` for a
    /// fixed fleet.
    pub replica_seconds: f64,
}

impl ClusterReport {
    /// Number of replicas in the fleet.
    pub fn num_replicas(&self) -> usize {
        self.per_replica.len()
    }

    /// Fleet throughput in completed requests per minute of makespan.
    pub fn requests_per_minute(&self) -> f64 {
        self.aggregate.requests_per_minute()
    }

    /// Serialize the full cluster report (aggregate + per-replica) as JSON,
    /// in the same format family as [`ServingReport::to_json`].
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("router", JsonValue::str(&self.router)),
            ("replicas", JsonValue::Num(self.num_replicas() as f64)),
            ("busy_imbalance", JsonValue::Num(self.busy_imbalance)),
            (
                "roles",
                JsonValue::Arr(self.roles.iter().map(|r| JsonValue::str(r)).collect()),
            ),
            ("migration", JsonValue::str(&self.migration)),
            (
                "per_role",
                JsonValue::Arr(self.per_role.iter().map(|r| r.to_json()).collect()),
            ),
            (
                "autoscaler",
                JsonValue::obj(vec![
                    (
                        "scale_out_events",
                        JsonValue::Num(self.scale_out_events as f64),
                    ),
                    (
                        "scale_in_events",
                        JsonValue::Num(self.scale_in_events as f64),
                    ),
                    ("peak_replicas", JsonValue::Num(self.peak_replicas as f64)),
                    ("replica_seconds", JsonValue::Num(self.replica_seconds)),
                ]),
            ),
            (
                "assigned_per_replica",
                JsonValue::Arr(
                    self.assigned_per_replica
                        .iter()
                        .map(|&n| JsonValue::Num(n as f64))
                        .collect(),
                ),
            ),
            ("aggregate", self.aggregate.to_json()),
            (
                "per_replica",
                JsonValue::Arr(self.per_replica.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{RateSchedule, Workload};
    use crate::{ModelConfig, ServingConfig};
    use gpu_sim::GpuConfig;

    fn base() -> ServingConfig {
        ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 1024)
    }

    #[test]
    fn single_replica_cluster_matches_the_plain_engine_exactly() {
        let specs = Workload::internal().generate(24, 1.2, 31);
        for router in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastOutstandingTokens,
            RouterPolicy::decode_aware(),
        ] {
            let plain = ServingEngine::new(base()).run(specs.clone());
            let report = Cluster::new(ClusterConfig::new(base(), 1, router)).run(specs.clone());
            assert_eq!(
                report.per_replica[0],
                plain,
                "router {} must not change single-replica results",
                router.label()
            );
            assert_eq!(report.aggregate.makespan, plain.makespan);
            assert_eq!(report.aggregate.completed, plain.completed);
        }
    }

    #[test]
    fn round_robin_spreads_requests_evenly() {
        let specs = Workload::internal().generate(24, 1.0, 5);
        let report =
            Cluster::new(ClusterConfig::new(base(), 4, RouterPolicy::RoundRobin)).run(specs);
        assert_eq!(report.assigned_per_replica, vec![6, 6, 6, 6]);
        assert_eq!(report.aggregate.completed, 24);
    }

    #[test]
    fn least_outstanding_prefers_the_idle_replica() {
        let mut cluster = Cluster::new(ClusterConfig::new(
            base(),
            2,
            RouterPolicy::LeastOutstandingTokens,
        ));
        // Load replica 0 by hand, then route: the idle replica must win.
        cluster.replicas[0].submit(RequestSpec::new(0.0, 16 * 1024, 256));
        let spec = RequestSpec::new(0.0, 2048, 64);
        assert_eq!(cluster.route(&spec), 1);
    }

    #[test]
    fn decode_aware_routes_long_prefills_away_from_decode_heavy_replicas() {
        let mut cluster = Cluster::new(ClusterConfig::new(base(), 3, RouterPolicy::decode_aware()));
        // Replica 0: deep into decode — small prompts, long generations,
        // advanced past their prefills. No prefill backlog, many decodes.
        cluster.replicas[0].submit(RequestSpec::new(0.0, 512, 2048));
        cluster.replicas[0].submit(RequestSpec::new(0.0, 512, 2048));
        cluster.replicas[0].advance_to(5.0);
        assert!(cluster.replicas[0].running_decodes() > 0);
        assert_eq!(cluster.replicas[0].queued_prefill_tokens(), 0);
        // Replica 1: a heavy prompt queued (not yet stepped) — large prefill
        // backlog, no decodes.
        cluster.replicas[1].submit(RequestSpec::new(0.0, 16 * 1024, 64));
        assert_eq!(cluster.replicas[1].queued_prefill_tokens(), 16 * 1024);
        // Replica 2: idle.
        // A long prefill avoids both the backlogged replica 1 and the
        // decode-heavy replica 0.
        assert_eq!(cluster.route(&RequestSpec::new(5.0, 12 * 1024, 64)), 2);
        // With the idle replica removed from contention (say it just took
        // that prompt), a long prefill prefers the clear-queue decode-heavy
        // replica over queueing behind 16K tokens of prompt.
        cluster.replicas[2].submit(RequestSpec::new(5.0, 12 * 1024, 64));
        assert_eq!(cluster.route(&RequestSpec::new(5.0, 10 * 1024, 64)), 0);
    }

    #[test]
    fn decode_aware_spreads_simultaneous_long_prefills() {
        // A flash crowd of identical long prefills arriving at the same
        // instant must fan out across the fleet, not dogpile one replica:
        // routing sees each prior assignment as backlog even though no
        // engine step has run in between.
        let specs = vec![RequestSpec::new(0.0, 16 * 1024, 64); 4];
        let report =
            Cluster::new(ClusterConfig::new(base(), 4, RouterPolicy::decode_aware())).run(specs);
        assert_eq!(report.assigned_per_replica, vec![1, 1, 1, 1]);
        assert_eq!(report.aggregate.completed, 4);
    }

    #[test]
    fn repeated_runs_on_one_cluster_are_independent() {
        let specs = Workload::internal().generate(12, 1.0, 19);
        let mut cluster = Cluster::new(ClusterConfig::new(base(), 2, RouterPolicy::RoundRobin));
        let first = cluster.run(specs.clone());
        let second = cluster.run(specs);
        assert_eq!(first, second, "run() must reset fleet state between calls");
        assert_eq!(second.aggregate.completed, 12);
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let schedule = RateSchedule::bursty(0.5, 6.0, 40.0, 10.0);
        let specs = Workload::internal().generate_trace(48, &schedule, 77);
        let a = Cluster::new(ClusterConfig::new(base(), 3, RouterPolicy::decode_aware()))
            .run(specs.clone());
        let b =
            Cluster::new(ClusterConfig::new(base(), 3, RouterPolicy::decode_aware())).run(specs);
        assert_eq!(a, b);
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
    }

    #[test]
    fn more_replicas_cut_latency_under_load() {
        let specs = Workload::internal().generate(40, 2.5, 11);
        let one = Cluster::new(ClusterConfig::new(
            base(),
            1,
            RouterPolicy::LeastOutstandingTokens,
        ))
        .run(specs.clone());
        let four = Cluster::new(ClusterConfig::new(
            base(),
            4,
            RouterPolicy::LeastOutstandingTokens,
        ))
        .run(specs);
        assert_eq!(one.aggregate.completed, 40);
        assert_eq!(four.aggregate.completed, 40);
        assert!(
            four.aggregate.request_latency.p50 < one.aggregate.request_latency.p50,
            "4 replicas {} vs 1 replica {}",
            four.aggregate.request_latency.p50,
            one.aggregate.request_latency.p50
        );
        assert!(four.aggregate.makespan <= one.aggregate.makespan);
    }

    #[test]
    fn report_aggregates_and_serializes() {
        let specs = Workload::arxiv().generate(16, 1.5, 3);
        let report =
            Cluster::new(ClusterConfig::new(base(), 2, RouterPolicy::RoundRobin)).run(specs);
        assert_eq!(report.num_replicas(), 2);
        assert_eq!(
            report.aggregate.iterations,
            report
                .per_replica
                .iter()
                .map(|r| r.iterations)
                .sum::<usize>()
        );
        assert!(report.busy_imbalance >= 1.0);
        assert!(report.requests_per_minute() > 0.0);
        let parsed = JsonValue::parse(&report.to_json().to_string_pretty()).expect("JSON parses");
        assert_eq!(
            parsed.get_path("replicas").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(
            parsed
                .get_path("aggregate.completed")
                .and_then(JsonValue::as_f64),
            Some(16.0)
        );
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = Cluster::new(ClusterConfig::new(base(), 0, RouterPolicy::RoundRobin));
    }

    /// A saturating trace for the autoscaler tests: a burst far beyond what
    /// the starting fleet can absorb, then silence.
    fn pressure_trace(count: usize, seed: u64) -> Vec<RequestSpec> {
        let schedule = RateSchedule::bursty(8.0, 0.2, 30.0, 90.0);
        crate::workload::SloMix::interactive_batch().apply(
            Workload::internal().generate_trace(count, &schedule, seed),
            seed,
        )
    }

    #[test]
    fn pinned_autoscaler_is_bit_for_bit_inert() {
        // min == max: no scaling action is possible, and the autoscaled
        // serving loop (interleaved checks and all) must reproduce the
        // plain fixed-fleet loop exactly — same reports, same JSON.
        let specs = pressure_trace(48, 21);
        for router in [RouterPolicy::RoundRobin, RouterPolicy::decode_aware()] {
            let plain = Cluster::new(ClusterConfig::new(base(), 3, router)).run(specs.clone());
            let pinned = Cluster::new(
                ClusterConfig::new(base(), 3, router).with_autoscaler(AutoscalerConfig::new(3, 3)),
            )
            .run(specs.clone());
            assert_eq!(
                plain.aggregate,
                pinned.aggregate,
                "{}: pinned autoscaler must not change results",
                router.label()
            );
            assert_eq!(plain.per_replica, pinned.per_replica);
            assert_eq!(plain.assigned_per_replica, pinned.assigned_per_replica);
            assert_eq!(
                plain.to_json().to_string_pretty(),
                pinned.to_json().to_string_pretty()
            );
            assert_eq!(pinned.scale_out_events, 0);
            assert_eq!(pinned.scale_in_events, 0);
        }
    }

    #[test]
    fn sustained_pressure_scales_out_and_slack_drains_back() {
        let specs = pressure_trace(100, 33);
        let fixed = Cluster::new(ClusterConfig::new(
            base(),
            1,
            RouterPolicy::LeastOutstandingTokens,
        ))
        .run(specs.clone());
        let mut scaled_cluster = Cluster::new(
            ClusterConfig::new(base(), 1, RouterPolicy::LeastOutstandingTokens)
                .with_autoscaler(AutoscalerConfig::new(1, 6)),
        );
        let scaled = scaled_cluster.run(specs.clone());
        assert!(scaled.scale_out_events > 0, "the burst must trigger growth");
        assert!(scaled.peak_replicas > 1);
        assert!(
            scaled.scale_in_events > 0,
            "the calm tail must drain replicas"
        );
        assert_eq!(
            scaled.aggregate.completed + scaled.aggregate.shed_requests,
            100
        );
        // Scaling out must actually help the SLO under this burst.
        assert!(
            scaled.aggregate.slo_attainment() > fixed.aggregate.slo_attainment(),
            "scaled attainment {} vs fixed {}",
            scaled.aggregate.slo_attainment(),
            fixed.aggregate.slo_attainment()
        );
        // And cost less than pinning the fleet at max the whole time.
        let max_fixed = Cluster::new(ClusterConfig::new(
            base(),
            6,
            RouterPolicy::LeastOutstandingTokens,
        ))
        .run(specs);
        assert!(
            scaled.replica_seconds < max_fixed.replica_seconds,
            "autoscaled {} replica-seconds vs max-pinned {}",
            scaled.replica_seconds,
            max_fixed.replica_seconds
        );
        // Deterministic.
        let again = scaled_cluster.run(pressure_trace(100, 33));
        assert_eq!(scaled, again);
    }

    #[test]
    fn draining_reroutes_queued_requests_and_finishes_inflight_work() {
        // Aggressive scale-in: a tiny slack threshold would never trigger,
        // so use a huge one with min 1 and start at 3 — the fleet must
        // shrink, yet every request completes exactly once.
        let specs = Workload::internal().generate(40, 1.0, 13);
        let scaler = AutoscalerConfig {
            min_replicas: 1,
            max_replicas: 3,
            interval: 4.0,
            scale_out_backlog: usize::MAX / 2,
            scale_in_backlog: 50_000,
            sustain: 1,
        };
        let report = Cluster::new(
            ClusterConfig::new(base(), 3, RouterPolicy::RoundRobin).with_autoscaler(scaler),
        )
        .run(specs);
        assert!(report.scale_in_events > 0, "slack must drain replicas");
        assert_eq!(report.scale_out_events, 0);
        assert_eq!(
            report.aggregate.completed, 40,
            "every request finishes exactly once despite re-routing"
        );
        assert!(report.replica_seconds < 3.0 * report.aggregate.makespan);
    }

    #[test]
    fn autoscaler_respects_bounds() {
        let specs = pressure_trace(60, 5);
        let report = Cluster::new(
            ClusterConfig::new(base(), 2, RouterPolicy::LeastOutstandingTokens).with_autoscaler(
                AutoscalerConfig {
                    max_replicas: 3,
                    ..AutoscalerConfig::new(2, 3)
                },
            ),
        )
        .run(specs);
        assert!(report.peak_replicas <= 3, "never more than max active");
        assert_eq!(report.aggregate.completed, 60);
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_autoscaler_bounds_rejected() {
        let _ = AutoscalerConfig::new(4, 2);
    }

    // ----- disaggregated prefill/decode serving -----

    #[test]
    fn decode_only_replicas_never_receive_fresh_prompts() {
        let config = ClusterConfig::disaggregated(
            base(),
            2,
            2,
            RouterPolicy::LeastOutstandingTokens,
            KvMigration::free(),
        );
        let mut cluster = Cluster::new(config);
        for _ in 0..8 {
            let target = cluster.route(&RequestSpec::new(0.0, 4096, 64));
            assert!(target < 2, "prompt routed to decode-only replica {target}");
            cluster.replicas[target].submit(RequestSpec::new(0.0, 4096, 64));
        }
    }

    #[test]
    fn disaggregated_fleet_serves_every_request_exactly_once() {
        let specs = Workload::internal().generate(24, 1.5, 41);
        let report = Cluster::new(ClusterConfig::disaggregated(
            base(),
            2,
            2,
            RouterPolicy::decode_aware(),
            KvMigration::infiniband(),
        ))
        .run(specs.clone());
        assert_eq!(report.aggregate.completed, 24);
        // Every multi-token request migrated exactly once; single-token
        // outputs finish at prefill and never migrate.
        let expect_migrations = specs.iter().filter(|s| s.output_tokens > 1).count();
        assert_eq!(report.aggregate.migrated_out_requests, expect_migrations);
        assert_eq!(report.aggregate.migrated_in_requests, expect_migrations);
        assert!(report.aggregate.migrated_tokens > 0);
        assert!(report.aggregate.migration_stall_time > 0.0);
        // Per-role breakdown: prefill side completed nothing locally, decode
        // side carries the completions.
        assert_eq!(report.per_role.len(), 2);
        let prefill = &report.per_role[0];
        let decode = &report.per_role[1];
        assert_eq!(prefill.role, "prefill");
        assert_eq!(decode.role, "decode");
        assert_eq!(
            prefill.report.completed,
            specs.len() - expect_migrations,
            "prefill side completes only single-token outputs"
        );
        assert_eq!(decode.report.completed, expect_migrations);
        assert!(prefill.report.busy_time > 0.0);
        assert!(decode.report.busy_time > 0.0);
    }

    #[test]
    fn disaggregated_runs_are_deterministic_and_resettable() {
        let specs = Workload::internal().generate(20, 2.0, 9);
        let mut cluster = Cluster::new(ClusterConfig::disaggregated(
            base(),
            1,
            1,
            RouterPolicy::RoundRobin,
            KvMigration::commodity(),
        ));
        let a = cluster.run(specs.clone());
        let b = cluster.run(specs);
        assert_eq!(a, b, "repeated disaggregated runs must be independent");
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
    }

    #[test]
    fn colocated_roles_are_bit_for_bit_inert() {
        // An explicit all-colocated role list (with a non-free migration
        // model that can never be exercised) must reproduce the classic
        // cluster exactly.
        let specs = Workload::internal().generate(16, 1.2, 23);
        let plain = Cluster::new(ClusterConfig::new(base(), 2, RouterPolicy::RoundRobin))
            .run(specs.clone());
        let roled = Cluster::new(
            ClusterConfig::new(base(), 2, RouterPolicy::RoundRobin)
                .with_roles(vec![ReplicaRole::Colocated; 2], KvMigration::infiniband()),
        )
        .run(specs);
        assert_eq!(plain.aggregate, roled.aggregate);
        assert_eq!(plain.per_replica, roled.per_replica);
        assert_eq!(plain.assigned_per_replica, roled.assigned_per_replica);
        assert_eq!(roled.aggregate.migrated_out_requests, 0);
    }

    #[test]
    fn slower_migration_links_stall_decodes_longer() {
        let specs = Workload::internal().generate(16, 1.5, 37);
        let run_with = |migration: KvMigration| {
            Cluster::new(ClusterConfig::disaggregated(
                base(),
                1,
                1,
                RouterPolicy::RoundRobin,
                migration,
            ))
            .run(specs.clone())
        };
        let free = run_with(KvMigration::free());
        let fast = run_with(KvMigration::infiniband());
        let slow = run_with(KvMigration::commodity());
        // Even a free link accrues some stall: the decode replica may be
        // mid-iteration when a chain lands, and that residency queueing is
        // migration-induced too. But a real link must stall strictly more.
        assert!(
            free.aggregate.migration_stall_time < fast.aggregate.migration_stall_time,
            "a 25 GB/s link must stall more than a free one ({} vs {})",
            fast.aggregate.migration_stall_time,
            free.aggregate.migration_stall_time
        );
        assert!(
            slow.aggregate.migration_stall_time > fast.aggregate.migration_stall_time,
            "2 GB/s must stall more than 25 GB/s ({} vs {})",
            slow.aggregate.migration_stall_time,
            fast.aggregate.migration_stall_time
        );
        // The stall lands in the decode gap after the first token.
        assert!(slow.aggregate.tbt.max >= fast.aggregate.tbt.max);
    }

    #[test]
    fn overlap_hides_part_of_the_transfer() {
        let specs = Workload::internal().generate(16, 1.5, 37);
        let run_with = |migration: KvMigration| {
            Cluster::new(ClusterConfig::disaggregated(
                base(),
                1,
                1,
                RouterPolicy::RoundRobin,
                migration,
            ))
            .run(specs.clone())
        };
        let serial = run_with(KvMigration::commodity());
        let overlapped = run_with(KvMigration::commodity().with_overlap());
        assert!(
            overlapped.aggregate.migration_stall_time < serial.aggregate.migration_stall_time,
            "ISO-style overlap must hide transfer time behind the prefill \
             ({} vs {})",
            overlapped.aggregate.migration_stall_time,
            serial.aggregate.migration_stall_time
        );
    }

    #[test]
    fn migration_cost_model_arithmetic() {
        let m = KvMigration::new(10.0, 0.5);
        // 20 GB at 10 GB/s = 2 s wire + 0.5 s latency.
        assert!((m.transfer_secs(20e9) - 2.5).abs() < 1e-9);
        assert_eq!(m.stall_secs(20e9, 100.0), m.transfer_secs(20e9));
        let o = m.with_overlap();
        // A 1.5 s prefill window hides 1.5 s of the 2 s wire time.
        assert!((o.stall_secs(20e9, 1.5) - 1.0).abs() < 1e-9);
        // A window longer than the wire time leaves only the latency.
        assert!((o.stall_secs(20e9, 10.0) - 0.5).abs() < 1e-9);
        assert_eq!(KvMigration::free().transfer_secs(1e12), 0.0);
        assert_eq!(KvMigration::free().label(), "free");
    }

    #[test]
    #[should_panic(expected = "both sides")]
    fn prefill_only_without_decode_only_rejected() {
        let _ = Cluster::new(
            ClusterConfig::new(base(), 2, RouterPolicy::RoundRobin).with_roles(
                vec![ReplicaRole::PrefillOnly, ReplicaRole::Colocated],
                KvMigration::free(),
            ),
        );
    }

    #[test]
    #[should_panic(expected = "accepts prompts")]
    fn all_decode_fleet_rejected() {
        let _ = Cluster::new(
            ClusterConfig::new(base(), 1, RouterPolicy::RoundRobin)
                .with_roles(vec![ReplicaRole::DecodeOnly], KvMigration::free()),
        );
    }

    // ----- event-driven core -----

    #[test]
    fn event_driven_run_matches_lockstep_oracle_in_every_mode() {
        let schedule = RateSchedule::bursty(0.5, 6.0, 40.0, 10.0);
        let specs = Workload::internal().generate_trace(48, &schedule, 77);

        // Colocated.
        let mut colocated =
            Cluster::new(ClusterConfig::new(base(), 3, RouterPolicy::decode_aware()));
        let event = colocated.run(specs.clone());
        let lock = colocated.run_lockstep(specs.clone());
        assert_eq!(event, lock, "colocated event-driven != lockstep");
        assert_eq!(
            event.to_json().to_string_pretty(),
            lock.to_json().to_string_pretty()
        );

        // Disaggregated, with a link slow enough that deliveries interleave
        // with arrivals.
        let mut disagg = Cluster::new(ClusterConfig::disaggregated(
            base(),
            2,
            2,
            RouterPolicy::decode_aware(),
            KvMigration::commodity(),
        ));
        let event = disagg.run(specs.clone());
        let lock = disagg.run_lockstep(specs);
        assert_eq!(event, lock, "disaggregated event-driven != lockstep");

        // Autoscaled: scale-out, queue reclaim and retirement all notify
        // the event queue.
        let burst = pressure_trace(80, 33);
        let mut scaled = Cluster::new(
            ClusterConfig::new(base(), 1, RouterPolicy::LeastOutstandingTokens)
                .with_autoscaler(AutoscalerConfig::new(1, 5)),
        );
        let event = scaled.run(burst.clone());
        let lock = scaled.run_lockstep(burst);
        assert_eq!(event, lock, "autoscaled event-driven != lockstep");
        assert!(
            event.scale_out_events > 0,
            "the burst must exercise scaling"
        );
    }

    #[test]
    fn advance_worker_count_never_changes_results() {
        let schedule = RateSchedule::bursty(0.6, 5.0, 35.0, 10.0);
        let specs = Workload::internal().generate_trace(40, &schedule, 91);
        let mut cluster = Cluster::new(ClusterConfig::new(
            base(),
            4,
            RouterPolicy::LeastOutstandingTokens,
        ));
        cluster.set_advance_workers(1);
        let serial = cluster.run(specs.clone());
        for workers in [2, 3, 8] {
            cluster.set_advance_workers(workers);
            let parallel = cluster.run(specs.clone());
            assert_eq!(parallel, serial, "{workers} workers changed the report");
            assert_eq!(
                parallel.to_json().to_string_pretty(),
                serial.to_json().to_string_pretty()
            );
        }

        // Streaming metrics must be thread-count independent too: sketch
        // merge order is fixed by replica index, not completion order.
        let mut streaming = Cluster::new(ClusterConfig::new(
            base().with_streaming_metrics(true),
            4,
            RouterPolicy::LeastOutstandingTokens,
        ));
        streaming.set_advance_workers(1);
        let serial = streaming.run(specs.clone());
        streaming.set_advance_workers(7);
        let parallel = streaming.run(specs);
        assert_eq!(parallel, serial);
        assert_eq!(
            parallel.to_json().to_string_pretty(),
            serial.to_json().to_string_pretty()
        );
    }

    #[test]
    fn streaming_cluster_matches_exact_counters_within_sketch_bound() {
        let schedule = RateSchedule::bursty(0.8, 5.0, 30.0, 12.0);
        let specs = crate::workload::SloMix::interactive_batch()
            .apply(Workload::internal().generate_trace(64, &schedule, 51), 51);

        let mut exact_cluster =
            Cluster::new(ClusterConfig::new(base(), 3, RouterPolicy::decode_aware()));
        let exact = exact_cluster.run(specs.clone());
        let mut streaming_cluster = Cluster::new(ClusterConfig::new(
            base().with_streaming_metrics(true),
            3,
            RouterPolicy::decode_aware(),
        ));
        let streaming = streaming_cluster.run(specs);

        // The simulation itself is untouched: identical routing, identical
        // virtual-time outcomes, identical exact counters.
        assert_eq!(streaming.assigned_per_replica, exact.assigned_per_replica);
        assert_eq!(streaming.aggregate.completed, exact.aggregate.completed);
        assert_eq!(
            streaming.aggregate.shed_requests,
            exact.aggregate.shed_requests
        );
        assert_eq!(streaming.aggregate.iterations, exact.aggregate.iterations);
        assert_eq!(
            streaming.aggregate.makespan.to_bits(),
            exact.aggregate.makespan.to_bits()
        );
        assert_eq!(
            streaming.aggregate.busy_time.to_bits(),
            exact.aggregate.busy_time.to_bits()
        );
        assert_eq!(streaming.aggregate.slo_classes, exact.aggregate.slo_classes);

        // Sketch percentiles stay within the documented relative-error
        // bound of the adjacent-rank order statistic they summarize.
        let mut latencies: Vec<f64> = exact_cluster
            .replicas()
            .iter()
            .flat_map(|r| r.requests().iter())
            .filter_map(|r| r.latency())
            .collect();
        latencies.sort_by(f64::total_cmp);
        for (q, got) in [
            (0.50, streaming.aggregate.request_latency.p50),
            (0.99, streaming.aggregate.request_latency.p99),
        ] {
            let rank = (q * (latencies.len() - 1) as f64).round() as usize;
            let want = latencies[rank];
            assert!(
                (got - want).abs() <= 0.0101 * want.abs() + 1e-9,
                "latency q{q}: sketch {got} too far from rank statistic {want}"
            );
        }
        assert!(
            (streaming.aggregate.request_latency.mean - exact.aggregate.request_latency.mean).abs()
                <= 1e-9 * exact.aggregate.request_latency.mean.abs(),
            "streaming mean drifted"
        );

        // Constant-memory reporting: finished requests drop their sample
        // buffers, so the streaming fleet's resident sample high-water mark
        // is strictly below the exact fleet's keep-everything total.
        let peak =
            |c: &Cluster| -> usize { c.replicas().iter().map(|r| r.peak_token_samples()).sum() };
        assert!(
            peak(&streaming_cluster) < peak(&exact_cluster),
            "streaming peak {} must undercut exact peak {}",
            peak(&streaming_cluster),
            peak(&exact_cluster)
        );
    }

    #[test]
    #[should_panic(expected = "colocated fleets only")]
    fn autoscaled_disaggregation_rejected() {
        let mut config = ClusterConfig::disaggregated(
            base(),
            1,
            1,
            RouterPolicy::RoundRobin,
            KvMigration::free(),
        );
        config.autoscaler = Some(AutoscalerConfig::new(1, 2));
        config.validate_roles();
    }
}
