//! Multi-replica serving: N step-able engines on a shared virtual clock
//! behind a pluggable router.
//!
//! The paper evaluates POD-Attention on a single GPU, but its wins (and
//! failure modes) at fleet scale depend on how load is spread: a router that
//! lands a long prefill on a replica deep in decode work recreates exactly
//! the prefill-decode interference the fused kernel is built to hide. This
//! module models that regime: requests arrive on one global timeline, a
//! [`RouterPolicy`] assigns each to a replica at arrival time using live
//! replica state, and every replica runs its own scheduler, KV-cache
//! admission and queueing via [`ServingEngine::step`]. Results aggregate
//! into a [`ClusterReport`] with fleet-level latency percentiles and a
//! replica-imbalance measure.

use crate::engine::ServingEngine;
use crate::json::JsonValue;
use crate::metrics::ServingReport;
use crate::request::{Request, RequestSpec};
use crate::ServingConfig;

/// Prompt length (tokens) above which the decode-aware router treats a
/// request as a "long prefill" and steers it away from decode-heavy
/// replicas.
pub const LONG_PREFILL_TOKENS: usize = 8 * 1024;

/// How arriving requests are assigned to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Cycle through replicas in order, ignoring load. The baseline every
    /// load-aware policy must beat.
    RoundRobin,
    /// Send each request to the replica with the fewest outstanding work
    /// tokens (remaining prompt + remaining output across its unfinished
    /// requests).
    LeastOutstandingTokens,
    /// Prefill/decode-aware: long prefills (prompt ≥ `long_prefill_tokens`)
    /// go to the replica whose prefill backlog is smallest — that backlog is
    /// what a chunked-prefill scheduler drains one chunk per iteration, so it
    /// is the head-of-line delay a new prompt actually queues behind — with
    /// running decodes as the tiebreak, steering heavy prompts away from
    /// replicas where they would interleave with (and slow) the most
    /// generation streams. Short requests follow least-outstanding load with
    /// the prefill backlog as tiebreak, keeping decode-bound work off
    /// prefill-clogged replicas.
    DecodeAware {
        /// Prompt length threshold in tokens for the long-prefill rule.
        long_prefill_tokens: usize,
    },
    /// Prefix-affinity: send each request to the replica whose prefix index
    /// holds the longest cached prefix of its prompt (probed side-effect-free
    /// via [`ServingEngine::cached_prefix_tokens_for`]), so agent fleets and
    /// shared-system-prompt chat reuse warm KV instead of re-prefilling it on
    /// a cold replica. Ties — including the all-cold case — fall back to
    /// least outstanding work tokens. Only meaningful when replicas run the
    /// paged KV policy with prefix caching; otherwise every probe returns
    /// zero and this degrades to least-outstanding.
    PrefixAffinity,
}

impl RouterPolicy {
    /// The decode-aware policy with the default [`LONG_PREFILL_TOKENS`]
    /// threshold.
    pub fn decode_aware() -> Self {
        RouterPolicy::DecodeAware {
            long_prefill_tokens: LONG_PREFILL_TOKENS,
        }
    }

    /// Human-readable name used in reports.
    pub fn label(&self) -> String {
        match self {
            RouterPolicy::RoundRobin => "round-robin".to_string(),
            RouterPolicy::LeastOutstandingTokens => "least-outstanding".to_string(),
            RouterPolicy::DecodeAware {
                long_prefill_tokens,
            } => format!("decode-aware(long>={long_prefill_tokens})"),
            RouterPolicy::PrefixAffinity => "prefix-affinity".to_string(),
        }
    }
}

/// Configuration of a replica fleet.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-replica serving configuration (every replica is identical — one
    /// tensor-parallel shard's worth of model and GPU).
    pub base: ServingConfig,
    /// Number of replicas.
    pub replicas: usize,
    /// Routing policy.
    pub router: RouterPolicy,
}

impl ClusterConfig {
    /// A fleet of `replicas` identical replicas behind `router`.
    pub fn new(base: ServingConfig, replicas: usize, router: RouterPolicy) -> Self {
        ClusterConfig {
            base,
            replicas,
            router,
        }
    }
}

/// A fleet of step-able serving engines on a shared virtual clock.
///
/// # Examples
///
/// ```
/// use gpu_sim::GpuConfig;
/// use llm_serving::{
///     Cluster, ClusterConfig, ModelConfig, RouterPolicy, ServingConfig, Workload,
/// };
///
/// let base = ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 1024);
/// let mut cluster = Cluster::new(ClusterConfig::new(base, 2, RouterPolicy::decode_aware()));
/// let report = cluster.run(Workload::internal().generate(16, 1.5, 7));
/// assert_eq!(report.aggregate.completed, 16);
/// assert_eq!(report.assigned_per_replica.iter().sum::<usize>(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    replicas: Vec<ServingEngine>,
    router: RouterPolicy,
    rr_next: usize,
    assigned: Vec<usize>,
}

impl Cluster {
    /// Build a fleet from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.replicas > 0, "a cluster needs at least one replica");
        let replicas = (0..config.replicas)
            .map(|_| ServingEngine::new(config.base.clone()))
            .collect();
        Cluster {
            replicas,
            router: config.router,
            rr_next: 0,
            assigned: vec![0; config.replicas],
        }
    }

    /// The replica engines (inspectable mid-run or after).
    pub fn replicas(&self) -> &[ServingEngine] {
        &self.replicas
    }

    /// Pick the replica for `spec` given current replica state, without
    /// submitting it. This **advances router state** (the round-robin
    /// cursor): call it once per request, exactly as [`Cluster::run`] does,
    /// not as a side-effect-free preview.
    pub fn route(&mut self, spec: &RequestSpec) -> usize {
        match self.router {
            RouterPolicy::RoundRobin => {
                let idx = self.rr_next % self.replicas.len();
                self.rr_next = (self.rr_next + 1) % self.replicas.len();
                idx
            }
            RouterPolicy::LeastOutstandingTokens => {
                argmin_by_key(&self.replicas, |r| (r.outstanding_tokens(), 0usize))
            }
            RouterPolicy::DecodeAware {
                long_prefill_tokens,
            } => {
                if spec.prompt_tokens >= long_prefill_tokens {
                    // A heavy prompt queues behind the existing prefill
                    // backlog; among equally clear queues it lands where it
                    // disturbs the fewest generation streams.
                    argmin_by_key(&self.replicas, |r| {
                        (r.queued_prefill_tokens(), r.running_decodes())
                    })
                } else {
                    argmin_by_key(&self.replicas, |r| {
                        (r.outstanding_tokens(), r.queued_prefill_tokens())
                    })
                }
            }
            RouterPolicy::PrefixAffinity => {
                // Longest cached prefix wins; ties (notably the all-cold
                // case) fall back to least outstanding work.
                argmin_by_key(&self.replicas, |r| {
                    (
                        std::cmp::Reverse(r.cached_prefix_tokens_for(spec)),
                        r.outstanding_tokens(),
                    )
                })
            }
        }
    }

    /// Serve `specs` to completion: route every request at its arrival time
    /// (advancing all replicas to that instant first, so routing sees live
    /// state), then drain the fleet.
    ///
    /// Each call starts from a fresh fleet — replica engines, router cursor
    /// and assignment counts are reset first — so repeated `run`s on one
    /// `Cluster` are independent, mirroring [`ServingEngine::run`].
    ///
    /// # Panics
    ///
    /// Panics if a single request can never fit in a replica's KV cache.
    pub fn run(&mut self, specs: Vec<RequestSpec>) -> ClusterReport {
        for replica in &mut self.replicas {
            *replica = ServingEngine::new(replica.config().clone());
        }
        self.rr_next = 0;
        self.assigned = vec![0; self.replicas.len()];

        let mut order: Vec<usize> = (0..specs.len()).collect();
        order.sort_by(|&a, &b| {
            specs[a]
                .arrival
                .partial_cmp(&specs[b].arrival)
                .expect("arrival times must not be NaN")
        });
        for &i in &order {
            let spec = specs[i];
            for replica in &mut self.replicas {
                replica.advance_to(spec.arrival);
            }
            let target = self.route(&spec);
            self.replicas[target].submit(spec);
            self.assigned[target] += 1;
        }
        for replica in &mut self.replicas {
            replica.run_until_drained();
        }
        self.report()
    }

    /// Aggregate what the fleet has served so far into a [`ClusterReport`].
    pub fn report(&self) -> ClusterReport {
        let per_replica: Vec<ServingReport> = self.replicas.iter().map(|r| r.report()).collect();
        let all_requests: Vec<Request> = self
            .replicas
            .iter()
            .flat_map(|r| r.requests().iter().cloned())
            .collect();
        let makespan = per_replica.iter().map(|r| r.makespan).fold(0.0, f64::max);
        let mut aggregate = ServingReport::from_requests(
            &self.replicas[0].config().system_label(),
            &all_requests,
            makespan,
            per_replica.iter().map(|r| r.iterations).sum(),
            per_replica.iter().map(|r| r.hybrid_iterations).sum(),
        );
        aggregate.price_cache_hits = per_replica.iter().map(|r| r.price_cache_hits).sum();
        aggregate.price_cache_misses = per_replica.iter().map(|r| r.price_cache_misses).sum();
        aggregate.busy_time = per_replica.iter().map(|r| r.busy_time).sum();
        aggregate.prefill_tokens_scheduled =
            per_replica.iter().map(|r| r.prefill_tokens_scheduled).sum();
        aggregate.cached_prefix_tokens = per_replica.iter().map(|r| r.cached_prefix_tokens).sum();
        aggregate.blocks_reused = per_replica.iter().map(|r| r.blocks_reused).sum();
        aggregate.cow_copies = per_replica.iter().map(|r| r.cow_copies).sum();
        aggregate.preemptions = per_replica.iter().map(|r| r.preemptions).sum();
        aggregate.blocks_evicted = per_replica.iter().map(|r| r.blocks_evicted).sum();

        let max_busy = per_replica.iter().map(|r| r.busy_time).fold(0.0, f64::max);
        let mean_busy = aggregate.busy_time / per_replica.len() as f64;
        let busy_imbalance = if mean_busy > 0.0 {
            max_busy / mean_busy
        } else {
            1.0
        };

        ClusterReport {
            router: self.router.label(),
            busy_imbalance,
            assigned_per_replica: self.assigned.clone(),
            per_replica,
            aggregate,
        }
    }
}

/// Index of the replica minimizing `key` (first wins ties, so routing is
/// deterministic).
fn argmin_by_key<K: Ord>(replicas: &[ServingEngine], key: impl Fn(&ServingEngine) -> K) -> usize {
    replicas
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| key(r))
        .map(|(i, _)| i)
        .expect("cluster has at least one replica")
}

/// Fleet-level results of one cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Router policy label.
    pub router: String,
    /// Fleet-wide metrics: latency percentiles over every request served by
    /// any replica, makespan = the last replica to finish, iteration and
    /// busy-time totals summed across replicas.
    pub aggregate: ServingReport,
    /// Each replica's own report, in replica order.
    pub per_replica: Vec<ServingReport>,
    /// Requests assigned to each replica, in replica order.
    pub assigned_per_replica: Vec<usize>,
    /// Max-over-mean replica busy time: 1.0 is a perfectly balanced fleet,
    /// N means one replica did all the work of N.
    pub busy_imbalance: f64,
}

impl ClusterReport {
    /// Number of replicas in the fleet.
    pub fn num_replicas(&self) -> usize {
        self.per_replica.len()
    }

    /// Fleet throughput in completed requests per minute of makespan.
    pub fn requests_per_minute(&self) -> f64 {
        self.aggregate.requests_per_minute()
    }

    /// Serialize the full cluster report (aggregate + per-replica) as JSON,
    /// in the same format family as [`ServingReport::to_json`].
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("router", JsonValue::str(&self.router)),
            ("replicas", JsonValue::Num(self.num_replicas() as f64)),
            ("busy_imbalance", JsonValue::Num(self.busy_imbalance)),
            (
                "assigned_per_replica",
                JsonValue::Arr(
                    self.assigned_per_replica
                        .iter()
                        .map(|&n| JsonValue::Num(n as f64))
                        .collect(),
                ),
            ),
            ("aggregate", self.aggregate.to_json()),
            (
                "per_replica",
                JsonValue::Arr(self.per_replica.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{RateSchedule, Workload};
    use crate::{ModelConfig, ServingConfig};
    use gpu_sim::GpuConfig;

    fn base() -> ServingConfig {
        ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 1024)
    }

    #[test]
    fn single_replica_cluster_matches_the_plain_engine_exactly() {
        let specs = Workload::internal().generate(24, 1.2, 31);
        for router in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastOutstandingTokens,
            RouterPolicy::decode_aware(),
        ] {
            let plain = ServingEngine::new(base()).run(specs.clone());
            let report = Cluster::new(ClusterConfig::new(base(), 1, router)).run(specs.clone());
            assert_eq!(
                report.per_replica[0],
                plain,
                "router {} must not change single-replica results",
                router.label()
            );
            assert_eq!(report.aggregate.makespan, plain.makespan);
            assert_eq!(report.aggregate.completed, plain.completed);
        }
    }

    #[test]
    fn round_robin_spreads_requests_evenly() {
        let specs = Workload::internal().generate(24, 1.0, 5);
        let report =
            Cluster::new(ClusterConfig::new(base(), 4, RouterPolicy::RoundRobin)).run(specs);
        assert_eq!(report.assigned_per_replica, vec![6, 6, 6, 6]);
        assert_eq!(report.aggregate.completed, 24);
    }

    #[test]
    fn least_outstanding_prefers_the_idle_replica() {
        let mut cluster = Cluster::new(ClusterConfig::new(
            base(),
            2,
            RouterPolicy::LeastOutstandingTokens,
        ));
        // Load replica 0 by hand, then route: the idle replica must win.
        cluster.replicas[0].submit(RequestSpec::new(0.0, 16 * 1024, 256));
        let spec = RequestSpec::new(0.0, 2048, 64);
        assert_eq!(cluster.route(&spec), 1);
    }

    #[test]
    fn decode_aware_routes_long_prefills_away_from_decode_heavy_replicas() {
        let mut cluster = Cluster::new(ClusterConfig::new(base(), 3, RouterPolicy::decode_aware()));
        // Replica 0: deep into decode — small prompts, long generations,
        // advanced past their prefills. No prefill backlog, many decodes.
        cluster.replicas[0].submit(RequestSpec::new(0.0, 512, 2048));
        cluster.replicas[0].submit(RequestSpec::new(0.0, 512, 2048));
        cluster.replicas[0].advance_to(5.0);
        assert!(cluster.replicas[0].running_decodes() > 0);
        assert_eq!(cluster.replicas[0].queued_prefill_tokens(), 0);
        // Replica 1: a heavy prompt queued (not yet stepped) — large prefill
        // backlog, no decodes.
        cluster.replicas[1].submit(RequestSpec::new(0.0, 16 * 1024, 64));
        assert_eq!(cluster.replicas[1].queued_prefill_tokens(), 16 * 1024);
        // Replica 2: idle.
        // A long prefill avoids both the backlogged replica 1 and the
        // decode-heavy replica 0.
        assert_eq!(cluster.route(&RequestSpec::new(5.0, 12 * 1024, 64)), 2);
        // With the idle replica removed from contention (say it just took
        // that prompt), a long prefill prefers the clear-queue decode-heavy
        // replica over queueing behind 16K tokens of prompt.
        cluster.replicas[2].submit(RequestSpec::new(5.0, 12 * 1024, 64));
        assert_eq!(cluster.route(&RequestSpec::new(5.0, 10 * 1024, 64)), 0);
    }

    #[test]
    fn decode_aware_spreads_simultaneous_long_prefills() {
        // A flash crowd of identical long prefills arriving at the same
        // instant must fan out across the fleet, not dogpile one replica:
        // routing sees each prior assignment as backlog even though no
        // engine step has run in between.
        let specs = vec![RequestSpec::new(0.0, 16 * 1024, 64); 4];
        let report =
            Cluster::new(ClusterConfig::new(base(), 4, RouterPolicy::decode_aware())).run(specs);
        assert_eq!(report.assigned_per_replica, vec![1, 1, 1, 1]);
        assert_eq!(report.aggregate.completed, 4);
    }

    #[test]
    fn repeated_runs_on_one_cluster_are_independent() {
        let specs = Workload::internal().generate(12, 1.0, 19);
        let mut cluster = Cluster::new(ClusterConfig::new(base(), 2, RouterPolicy::RoundRobin));
        let first = cluster.run(specs.clone());
        let second = cluster.run(specs);
        assert_eq!(first, second, "run() must reset fleet state between calls");
        assert_eq!(second.aggregate.completed, 12);
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let schedule = RateSchedule::bursty(0.5, 6.0, 40.0, 10.0);
        let specs = Workload::internal().generate_trace(48, &schedule, 77);
        let a = Cluster::new(ClusterConfig::new(base(), 3, RouterPolicy::decode_aware()))
            .run(specs.clone());
        let b =
            Cluster::new(ClusterConfig::new(base(), 3, RouterPolicy::decode_aware())).run(specs);
        assert_eq!(a, b);
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
    }

    #[test]
    fn more_replicas_cut_latency_under_load() {
        let specs = Workload::internal().generate(40, 2.5, 11);
        let one = Cluster::new(ClusterConfig::new(
            base(),
            1,
            RouterPolicy::LeastOutstandingTokens,
        ))
        .run(specs.clone());
        let four = Cluster::new(ClusterConfig::new(
            base(),
            4,
            RouterPolicy::LeastOutstandingTokens,
        ))
        .run(specs);
        assert_eq!(one.aggregate.completed, 40);
        assert_eq!(four.aggregate.completed, 40);
        assert!(
            four.aggregate.request_latency.p50 < one.aggregate.request_latency.p50,
            "4 replicas {} vs 1 replica {}",
            four.aggregate.request_latency.p50,
            one.aggregate.request_latency.p50
        );
        assert!(four.aggregate.makespan <= one.aggregate.makespan);
    }

    #[test]
    fn report_aggregates_and_serializes() {
        let specs = Workload::arxiv().generate(16, 1.5, 3);
        let report =
            Cluster::new(ClusterConfig::new(base(), 2, RouterPolicy::RoundRobin)).run(specs);
        assert_eq!(report.num_replicas(), 2);
        assert_eq!(
            report.aggregate.iterations,
            report
                .per_replica
                .iter()
                .map(|r| r.iterations)
                .sum::<usize>()
        );
        assert!(report.busy_imbalance >= 1.0);
        assert!(report.requests_per_minute() > 0.0);
        let parsed = JsonValue::parse(&report.to_json().to_string_pretty()).expect("JSON parses");
        assert_eq!(
            parsed.get_path("replicas").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(
            parsed
                .get_path("aggregate.completed")
                .and_then(JsonValue::as_f64),
            Some(16.0)
        );
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = Cluster::new(ClusterConfig::new(base(), 0, RouterPolicy::RoundRobin));
    }
}
