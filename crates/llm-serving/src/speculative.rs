//! Speculative draft-then-verify decoding as a serving mode.
//!
//! In speculative decoding (OverFill-style; see PAPERS.md), a cheap *draft*
//! model proposes `k` tokens per decode round and the target model *verifies*
//! them in one shot: a k-query-token, prefill-shaped attention op over the
//! request's full context. Verification accepts a prefix of the drafts —
//! the first rejected position is replaced by the target model's own token
//! (the "correction" token), so even a round with zero accepted drafts still
//! mints one token, exactly like plain autoregressive decode.
//!
//! The mode is a natural companion to POD-Attention: each verify step
//! manufactures exactly the prefill-shaped work that hybrid batches fuse
//! with decodes, so speculation converts idle decode-side SM cycles into
//! useful verification compute.
//!
//! This module holds the configuration surface:
//!
//! * [`DecodeMode`] — `Autoregressive` (the default; bit-for-bit identical
//!   to the pre-speculation engine) or `Speculative { k, draft, acceptance }`.
//! * [`DraftModelConfig`] — the draft model as a scale factor on the target
//!   [`ModelConfig`], priced through the same memoized iteration cost model.
//! * [`AcceptanceModel`] — a seeded per-request/per-round acceptance law.
//!   Draws are pure functions of `(seed, request id, round)`, so runs are
//!   deterministic and replayable regardless of thread count or iteration
//!   order.
//!
//! The execution semantics (block allocation for draft tokens, rollback of
//! rejected suffixes through the paged-KV free/CoW paths, verify-token
//! budgeting in the scheduler and pricing in `attn-kernels`) live in the
//! engine, scheduler and kernel crates; see ARCHITECTURE.md § "Speculative
//! decoding".

use crate::model::ModelConfig;
use crate::rng::mix64;

/// How decode rounds mint tokens.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum DecodeMode {
    /// Plain one-token-per-round autoregressive decode (the default).
    #[default]
    Autoregressive,
    /// Draft-then-verify speculative decode.
    Speculative {
        /// Draft tokens proposed per round (the speculation depth). A round
        /// never drafts past the request's remaining output budget, so the
        /// effective depth is `min(k, output_tokens - generated)`.
        k: usize,
        /// The draft model, as a scaled-down copy of the target model.
        draft: DraftModelConfig,
        /// Seeded acceptance law deciding how many drafts each round keeps.
        acceptance: AcceptanceModel,
    },
}

impl DecodeMode {
    /// The speculation depth, or 0 in autoregressive mode.
    pub fn spec_k(&self) -> usize {
        match self {
            DecodeMode::Autoregressive => 0,
            DecodeMode::Speculative { k, .. } => *k,
        }
    }

    /// True when this is a speculative mode.
    pub fn is_speculative(&self) -> bool {
        matches!(self, DecodeMode::Speculative { .. })
    }
}

/// The draft model as a scale factor on the target model.
///
/// Real deployments pair a large target with a small same-family drafter
/// (e.g. 68M drafting for 7B). The simulator models that as a uniform scale
/// on the target's layer count and widths, producing a genuine
/// [`ModelConfig`] that is priced through the ordinary iteration cost model
/// — so draft cost responds to batch composition, GQA shape and tensor
/// parallelism the same way the target does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DraftModelConfig {
    /// Linear scale applied to the target's depth and widths, in `[0, 1]`.
    /// `0.0` means a free (zero-cost) drafter — useful for oracles/tests.
    pub scale: f64,
}

impl DraftModelConfig {
    /// A drafter costing roughly `scale` of the target per token.
    pub fn scaled(scale: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&scale),
            "draft scale {scale} outside [0, 1]"
        );
        DraftModelConfig { scale }
    }

    /// A zero-cost drafter (drafting is free; only verify work is priced).
    pub fn free() -> Self {
        DraftModelConfig { scale: 0.0 }
    }

    /// Materialize the draft as a [`ModelConfig`] scaled down from `target`,
    /// or `None` for a free drafter. Head counts, head dim and tensor
    /// parallelism are inherited (the drafter shares the target's attention
    /// shape); depth and widths shrink by `scale`, floored at one layer and
    /// the attention head width so the result stays a valid model.
    pub fn resolve(&self, target: &ModelConfig) -> Option<ModelConfig> {
        if self.scale == 0.0 {
            return None;
        }
        let scaled = |x: usize, floor: usize| -> usize {
            ((x as f64 * self.scale).round() as usize).max(floor)
        };
        let mut attention = target.attention;
        attention.num_layers = scaled(attention.num_layers, 1);
        let head_width = attention.head_dim * attention.tensor_parallel;
        Some(ModelConfig {
            name: format!("{}-draft{:.2}", target.name, self.scale),
            attention,
            hidden_size: scaled(target.hidden_size, head_width),
            intermediate_size: scaled(target.intermediate_size, head_width),
            vocab_size: target.vocab_size,
        })
    }
}

/// Seeded acceptance law for speculative verification.
///
/// Each round draws the accepted-draft count as sequential Bernoulli trials
/// at `rate`, stopping at the first rejection — matching the
/// "accept a prefix" semantics of real speculative sampling. The draw for
/// `(request, round)` is a pure function of the seed, so it is identical
/// across thread counts, replica assignment and replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptanceModel {
    /// Per-position probability that a draft token is accepted, in `[0, 1]`.
    pub rate: f64,
    /// Base seed; per-request substreams are derived from it.
    pub seed: u64,
}

impl AcceptanceModel {
    /// An acceptance model with the given per-token rate and seed.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "acceptance rate {rate} outside [0, 1]"
        );
        AcceptanceModel { rate, seed }
    }

    /// How many of `k` drafts round `round` of request `request_id` accepts
    /// (a prefix length in `0..=k`). Deterministic in its arguments.
    pub fn accepted(&self, request_id: usize, round: usize, k: usize) -> usize {
        // Shortcuts keep the extremes exact (no float-compare edge cases).
        if self.rate >= 1.0 {
            return k;
        }
        if self.rate <= 0.0 {
            return 0;
        }
        // Derive the (request, round) substream without any shared state:
        // two mix64 passes decorrelate the id/round lattice from the seed.
        let stream = mix64(
            self.seed
                ^ mix64(request_id as u64 ^ 0xA076_1D64_78BD_642F)
                ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut rng = crate::rng::SplitMix64::seed_from_u64(stream);
        let mut accepted = 0;
        while accepted < k && rng.next_f64() < self.rate {
            accepted += 1;
        }
        accepted
    }

    /// Tokens a round mints when `k_eff` drafts were proposed and `accepted`
    /// survived verification: the accepted prefix, plus the target model's
    /// correction token whenever a draft was rejected. Every round mints at
    /// least one token; a fully accepted round mints exactly `k_eff`.
    pub fn minted(accepted: usize, k_eff: usize) -> usize {
        if accepted >= k_eff {
            k_eff.max(1)
        } else {
            accepted + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_extremes_are_exact() {
        let all = AcceptanceModel::new(1.0, 7);
        let none = AcceptanceModel::new(0.0, 7);
        for rid in 0..10 {
            for round in 0..10 {
                assert_eq!(all.accepted(rid, round, 4), 4);
                assert_eq!(none.accepted(rid, round, 4), 0);
            }
        }
    }

    #[test]
    fn acceptance_draws_are_deterministic_and_per_stream() {
        let a = AcceptanceModel::new(0.6, 42);
        let b = AcceptanceModel::new(0.6, 42);
        let c = AcceptanceModel::new(0.6, 43);
        let draw = |m: &AcceptanceModel| -> Vec<usize> {
            (0..64).map(|i| m.accepted(i % 8, i / 8, 6)).collect()
        };
        assert_eq!(draw(&a), draw(&b));
        assert_ne!(draw(&a), draw(&c), "different seeds must differ");
        // Distinct requests at the same round get distinct substreams.
        let per_request: Vec<usize> = (0..32).map(|rid| a.accepted(rid, 0, 6)).collect();
        assert!(per_request.iter().any(|&x| x != per_request[0]));
    }

    #[test]
    fn acceptance_rate_orders_mean_accepted() {
        let lo = AcceptanceModel::new(0.2, 9);
        let hi = AcceptanceModel::new(0.8, 9);
        let mean = |m: &AcceptanceModel| -> f64 {
            let total: usize = (0..2000).map(|i| m.accepted(i, 0, 8)).sum();
            total as f64 / 2000.0
        };
        assert!(mean(&hi) > mean(&lo) + 1.0);
    }

    #[test]
    fn minted_tokens_follow_prefix_plus_correction() {
        assert_eq!(AcceptanceModel::minted(0, 4), 1);
        assert_eq!(AcceptanceModel::minted(2, 4), 3);
        assert_eq!(AcceptanceModel::minted(4, 4), 4);
        assert_eq!(AcceptanceModel::minted(0, 1), 1);
        assert_eq!(AcceptanceModel::minted(1, 1), 1);
        // Degenerate zero-depth round still mints the correction token.
        assert_eq!(AcceptanceModel::minted(0, 0), 1);
    }

    #[test]
    fn draft_resolution_scales_and_free_is_none() {
        let target = ModelConfig::llama3_8b();
        assert!(DraftModelConfig::free().resolve(&target).is_none());
        let draft = DraftModelConfig::scaled(0.25).resolve(&target).unwrap();
        assert_eq!(draft.num_layers(), 8);
        assert!(draft.hidden_size < target.hidden_size);
        assert_eq!(draft.vocab_size, target.vocab_size);
        assert_eq!(draft.tensor_parallel(), target.tensor_parallel());
        assert!(draft.weight_bytes_per_gpu() < target.weight_bytes_per_gpu() / 4);
        // A tiny scale still yields a valid one-layer model.
        let tiny = DraftModelConfig::scaled(0.001).resolve(&target).unwrap();
        assert_eq!(tiny.num_layers(), 1);
        assert!(tiny.hidden_size >= tiny.attention.head_dim);
    }

    #[test]
    fn decode_mode_default_is_autoregressive() {
        assert_eq!(DecodeMode::default(), DecodeMode::Autoregressive);
        assert_eq!(DecodeMode::Autoregressive.spec_k(), 0);
        let spec = DecodeMode::Speculative {
            k: 4,
            draft: DraftModelConfig::scaled(0.2),
            acceptance: AcceptanceModel::new(0.7, 1),
        };
        assert!(spec.is_speculative());
        assert_eq!(spec.spec_k(), 4);
    }
}
